"""Browser-extension deployment demo (Section VI of the paper).

Run with::

    python examples/browser_extension_demo.py

The script stands up the whole deployment stack against the simulated
streaming platform: the chat crawler fills the back-end store, the LIGHTOR
web service serves red dots when the extension opens a recorded-video page,
the extension forwards viewer interactions back to the service, and the
service runs refinement passes that tighten the stored highlight boundaries.
"""

from __future__ import annotations

from repro.core.config import LightorConfig
from repro.core.initializer import HighlightInitializer
from repro.datasets import DatasetSpec, build_dataset
from repro.datasets.loaders import training_pairs
from repro.platform import (
    BrowserExtension,
    ChatCrawler,
    InMemoryStore,
    LightorWebService,
    SimulatedStreamingAPI,
)
from repro.simulation import CrowdSimulator
from repro.utils.rng import SeedSequenceFactory


def main() -> None:
    config = LightorConfig()

    # Train the Initializer offline on one labelled synthetic video.
    labelled = build_dataset(DatasetSpec.dota2(size=1))
    initializer = HighlightInitializer(config=config)
    initializer.fit(training_pairs(labelled))

    # Back end: platform API + store + crawler + web service.
    api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(2021), videos_per_channel=3)
    store = InMemoryStore()
    crawler = ChatCrawler(api=api, store=store)
    crawler.watch_top_channels("dota2", count=2)
    report = crawler.offline_pass()
    print(
        f"offline crawl: {report.videos_crawled} videos crawled, "
        f"{report.messages_stored} chat messages stored"
    )

    service = LightorWebService(store=store, crawler=crawler, initializer=initializer)
    extension = BrowserExtension(service=service, k=5)

    # Front end: a viewer opens a recorded video page.
    video = api.recent_videos("dota2_channel_0", 1)[0]
    view = extension.open_page(f"https://streaming.example/videos/{video.video_id}")
    if view is None or view.n_dots == 0:
        print("the extension served no red dots for this video (chat too quiet)")
        return
    print(f"\nprogress bar of {video.video_id} with {view.n_dots} red dots:")
    print(view.render())

    # Simulated viewers click the dots; their interactions are logged.
    crowd = CrowdSimulator(seeds=SeedSequenceFactory(5), responses_per_round=12)
    for round_index in range(3):
        for dot in service.store.get_red_dots(video.video_id):
            extension.forward_interactions(crowd.collect_round(video, dot, round_index))
        updated = service.refine_video(video.video_id)
        print(f"refinement round {round_index + 1}: {updated} red dots refined")

    print("\nstored highlight boundaries after refinement:")
    for highlight in store.latest_highlights(video.video_id):
        print(f"  {highlight.start:8.1f}s - {highlight.end:8.1f}s")
    print("\nground truth highlights:")
    for highlight in video.highlights:
        print(f"  {highlight.start:8.1f}s - {highlight.end:8.1f}s")
    print(f"\nback-end store stats: {store.stats()}")


if __name__ == "__main__":
    main()
