"""Chat feature analysis demo (the analysis behind Fig. 2 of the paper).

Run with::

    python examples/feature_analysis.py

Builds one synthetic video, slices its chat into sliding windows, and prints
how the three general features (message number, message length, message
similarity) separate highlight-discussion windows from ordinary chatter —
plus the measured delay between each highlight's start and its chat peak.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LightorConfig
from repro.core.initializer.features import FEATURE_NAMES, WindowFeatureExtractor
from repro.core.initializer.windows import build_sliding_windows
from repro.datasets import DatasetSpec, build_dataset
from repro.utils.histograms import Histogram
from repro.utils.smoothing import gaussian_smooth


def main() -> None:
    config = LightorConfig()
    labelled = build_dataset(DatasetSpec.dota2(size=2))[1]
    chat_log = labelled.chat_log
    video = labelled.video
    print(
        f"video {video.video_id}: {video.duration:.0f}s, {len(chat_log)} chat messages, "
        f"{video.n_highlights} ground-truth highlights"
    )

    # Delay between each highlight start and its chat peak (Fig. 2a).
    histogram = Histogram(duration=video.duration, bin_size=1.0)
    for message in chat_log.messages:
        histogram.add_point(min(message.timestamp, video.duration - 1e-6))
    smoothed = gaussian_smooth(histogram.to_array(), sigma=5.0)
    print("\nhighlight -> chat-peak delay:")
    for highlight in video.highlights:
        start_bin = int(highlight.start)
        end_bin = min(smoothed.size, int(highlight.end) + 60)
        peak = start_bin + int(np.argmax(smoothed[start_bin:end_bin]))
        print(
            f"  highlight [{highlight.start:7.1f}, {highlight.end:7.1f}]  "
            f"chat peak at {peak:7d}s  (delay {peak - highlight.start:5.1f}s)"
        )

    # Feature separation over sliding windows (Fig. 2b).
    windows = build_sliding_windows(chat_log, window_size=config.window_size)
    extractor = WindowFeatureExtractor()
    raw = extractor.feature_matrix(windows, normalise=False)
    labels = extractor.label_windows(windows, labelled.highlights)
    print(
        f"\n{len(windows)} sliding windows "
        f"({int(labels.sum())} highlight, {int((1 - labels).sum())} non-highlight)"
    )
    print(f"{'feature':22s} {'highlight mean':>15s} {'non-highlight mean':>20s}")
    for column, name in enumerate(FEATURE_NAMES):
        positive = raw[labels == 1, column]
        negative = raw[labels == 0, column]
        print(f"{name:22s} {np.mean(positive):15.3f} {np.mean(negative):20.3f}")


if __name__ == "__main__":
    main()
