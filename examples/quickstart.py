"""Quickstart: train LIGHTOR on one labelled video and extract highlights.

Run with::

    python examples/quickstart.py

The script builds a tiny synthetic Dota2 suite, trains the pipeline on the
first video's chat + labels (the paper's headline claim is that one labelled
video is enough), runs the full workflow — chat → red dots → crowd-refined
boundaries — on a second video, and compares the result against the ground
truth.
"""

from __future__ import annotations

from repro import LightorConfig, LightorPipeline
from repro.datasets import DatasetSpec, build_dataset
from repro.eval import video_precision_end_at_k, video_precision_start_at_k
from repro.platform.extension import ProgressBarView
from repro.simulation import CrowdSimulator
from repro.utils.rng import SeedSequenceFactory


def main() -> None:
    # 1. Data: a small synthetic Dota2 suite (deterministic).
    dataset = build_dataset(DatasetSpec.dota2(size=4))
    train, target = dataset[0], dataset[1]

    # 2. Train the Highlight Initializer on a single labelled video.
    pipeline = LightorPipeline(LightorConfig())
    pipeline.fit([train.training_pair])
    print(
        f"trained on {train.video.video_id} in {pipeline.training_seconds_:.2f}s "
        f"(learned chat reaction delay c = {pipeline.initializer.model.adjustment_constant:.1f}s)"
    )

    # 3. Run end to end on another video, with simulated crowd interactions.
    crowd = CrowdSimulator(seeds=SeedSequenceFactory(7))
    result = pipeline.run(target.chat_log, crowd.interaction_source(target.video), k=5)

    # 4. Show the red dots on the progress bar and the extracted boundaries.
    bar = ProgressBarView(
        video_id=target.video.video_id,
        duration=target.video.duration,
        dot_positions=tuple(dot.position for dot in result.red_dots),
    )
    print(f"\nvideo {target.video.video_id} ({target.video.duration:.0f}s)")
    print(bar.render())
    print("\nextracted highlights vs ground truth:")
    for highlight in result.highlights:
        print(f"  extracted  {highlight.start:8.1f}s - {highlight.end:8.1f}s")
    for highlight in target.highlights:
        print(f"  truth      {highlight.start:8.1f}s - {highlight.end:8.1f}s")

    # 5. Score the run with the paper's metrics.
    start_precision = video_precision_start_at_k(result.start_positions, target.highlights, k=5)
    end_precision = video_precision_end_at_k(result.end_positions, target.highlights, k=5)
    print(f"\nVideo Precision@5 (start) = {start_precision:.2f}")
    print(f"Video Precision@5 (end)   = {end_precision:.2f}")


if __name__ == "__main__":
    main()
