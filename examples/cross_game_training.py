"""Cross-game generalization demo (the property behind Fig. 11 and Table I).

Run with::

    python examples/cross_game_training.py

Trains the Highlight Initializer on a single LoL tournament video and applies
it to Dota2 personal-stream videos, then does the same with the Chat-LSTM
baseline, printing the Video Precision@5 (start) of both.  LIGHTOR's three
general chat features carry over between games; the character-level deep
baseline does not.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ChatLSTMBaseline
from repro.core.config import LightorConfig
from repro.core.initializer import HighlightInitializer
from repro.datasets import DatasetSpec, build_dataset
from repro.datasets.loaders import training_pairs
from repro.eval import video_precision_start_at_k


def main() -> None:
    config = LightorConfig()
    lol = build_dataset(DatasetSpec.lol(size=3))
    dota = build_dataset(DatasetSpec.dota2(size=5))
    test_videos = dota[:4]

    # --- LIGHTOR: train on one LoL video, test on Dota2. -------------------
    initializer = HighlightInitializer(config=config)
    initializer.fit(training_pairs(lol[:1]))
    lightor_scores = []
    for labelled in test_videos:
        dots = initializer.propose(labelled.chat_log, k=5)
        lightor_scores.append(
            video_precision_start_at_k(
                [dot.position for dot in dots], labelled.highlights, k=5
            )
        )

    # --- Chat-LSTM: train on the same LoL videos, test on Dota2. -----------
    baseline = ChatLSTMBaseline(hidden_size=16, n_epochs=2, frames_per_video=16)
    baseline.fit(lol)
    lstm_scores = []
    for labelled in test_videos:
        dots = baseline.propose(labelled.chat_log, k=5)
        lstm_scores.append(
            video_precision_start_at_k(
                [dot.position for dot in dots], labelled.highlights, k=5
            )
        )

    print("trained on LoL, tested on Dota2 (Video Precision@5, start):")
    print(f"  LIGHTOR   (1 LoL video):  {np.mean(lightor_scores):.3f}")
    print(f"  Chat-LSTM ({len(lol)} LoL videos): {np.mean(lstm_scores):.3f}")
    print(
        f"\ntraining time — LIGHTOR: a fraction of a second, "
        f"Chat-LSTM: {baseline.training_seconds_:.1f}s on this scaled-down substitute"
    )


if __name__ == "__main__":
    main()
