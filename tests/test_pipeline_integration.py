"""Integration tests: the full LIGHTOR pipeline against the crowd simulator."""

from __future__ import annotations

import pytest

from repro.core.config import LightorConfig
from repro.core.pipeline import LightorPipeline
from repro.datasets.loaders import training_pairs
from repro.eval.metrics import video_precision_end_at_k, video_precision_start_at_k
from repro.simulation.crowd import CrowdSimulator
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def trained_pipeline(dota2_dataset):
    pipeline = LightorPipeline(LightorConfig())
    pipeline.fit(training_pairs(dota2_dataset[:1]))
    return pipeline


class TestPipeline:
    def test_unfitted_pipeline_raises(self, dota2_dataset):
        with pytest.raises(ValidationError):
            LightorPipeline(LightorConfig()).propose(dota2_dataset[0].chat_log)

    def test_training_is_fast_and_recorded(self, trained_pipeline):
        # One of the paper's headline claims: training takes on the order of
        # seconds, not days.
        assert 0.0 < trained_pipeline.training_seconds_ < 60.0

    def test_propose_respects_k(self, trained_pipeline, dota2_dataset):
        dots = trained_pipeline.propose(dota2_dataset[2].chat_log, k=3)
        assert 1 <= len(dots) <= 3

    def test_end_to_end_precision(self, trained_pipeline, dota2_dataset):
        """The headline shape: high start/end precision with implicit feedback."""
        crowd = CrowdSimulator(seeds=SeedSequenceFactory(123))
        start_scores = []
        end_scores = []
        for labelled in dota2_dataset[1:4]:
            result = trained_pipeline.run(
                labelled.chat_log, crowd.interaction_source(labelled.video), k=5
            )
            start_scores.append(
                video_precision_start_at_k(result.start_positions, labelled.highlights, k=5)
            )
            end_scores.append(
                video_precision_end_at_k(result.end_positions, labelled.highlights, k=5)
            )
        assert sum(start_scores) / len(start_scores) >= 0.6
        assert sum(end_scores) / len(end_scores) >= 0.6

    def test_result_structure(self, trained_pipeline, dota2_dataset, crowd):
        labelled = dota2_dataset[2]
        result = trained_pipeline.run(
            labelled.chat_log, crowd.interaction_source(labelled.video), k=4
        )
        assert result.video_id == labelled.video.video_id
        assert len(result.extractions) == len(result.red_dots)
        assert len(result.start_positions) == len(result.red_dots)
        for highlight in result.highlights:
            assert 0.0 <= highlight.start <= highlight.end <= labelled.video.duration

    def test_run_many(self, trained_pipeline, dota2_dataset, crowd):
        results = trained_pipeline.run_many(
            [v.chat_log for v in dota2_dataset[1:3]],
            lambda video: crowd.interaction_source(video),
            k=3,
        )
        assert len(results) == 2
        assert {r.video_id for r in results} == {v.video.video_id for v in dota2_dataset[1:3]}

    def test_extraction_refines_or_keeps_dots(self, trained_pipeline, dota2_dataset, crowd):
        labelled = dota2_dataset[3]
        result = trained_pipeline.run(
            labelled.chat_log, crowd.interaction_source(labelled.video), k=5
        )
        refined = [e for e in result.extractions if e.highlight is not None]
        # The crowd is large and mostly engaged, so most dots get refined.
        assert len(refined) >= len(result.extractions) // 2
        for extraction in refined:
            assert extraction.n_iterations >= 1
