"""Property and corruption tests for the framed binary wire codec.

The codec's contract is JSON-parity: ``decode_frame(encode_frame(x))`` must
equal ``json.loads(json.dumps(x))`` for every JSON-encodable value — the
gateway, client and SQLite blob rows all rely on a binary round trip being
*indistinguishable* from the JSON text path.  Hypothesis drives arbitrary
value trees plus the real record shapes the platform ships (chat batches,
play batches, stream events, red-dot responses, session snapshots); the
corruption suite then proves a damaged frame can never decode silently
wrong — every flipped byte, truncation and trailer lands in a typed
:class:`~repro.platform.wire.CodecError`.
"""

from __future__ import annotations

import json
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import ChatMessage, Interaction, InteractionKind, RedDot
from repro.platform import codecs, wire
from repro.utils.validation import ValidationError

# ---------------------------------------------------------------- strategies
finite_floats = st.floats(allow_nan=False, allow_infinity=False)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    finite_floats,
    st.text(max_size=32),
)
json_keys = st.one_of(st.text(max_size=16), st.integers(), st.booleans(), st.none())
json_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(json_keys, children, max_size=6),
    ),
    max_leaves=25,
)

timestamps = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
names = st.text(max_size=24)


@st.composite
def chat_message_dicts(draw):
    message = ChatMessage(timestamp=draw(timestamps), user=draw(names), text=draw(names))
    return codecs.chat_message_to_dict(message)


@st.composite
def interaction_dicts(draw):
    kind = draw(st.sampled_from(list(InteractionKind)))
    seeks = (InteractionKind.SEEK_FORWARD, InteractionKind.SEEK_BACKWARD)
    target = draw(timestamps) if kind in seeks or draw(st.booleans()) else None
    interaction = Interaction(
        timestamp=draw(timestamps), kind=kind, user=draw(names), target=target
    )
    return codecs.interaction_to_dict(interaction)


@st.composite
def red_dot_dicts(draw):
    window = None
    if draw(st.booleans()):
        left = draw(timestamps)
        window = (left, left + draw(st.floats(min_value=0.0, max_value=1e4, allow_nan=False)))
    dot = RedDot(
        position=draw(timestamps),
        score=draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
        window=window,
        video_id=draw(names),
    )
    return codecs.red_dot_to_dict(dot)


@st.composite
def stream_event_dicts(draw):
    kind = draw(st.sampled_from(["emit", "retract", "refine"]))
    return {
        "type": kind,
        "dot": draw(red_dot_dicts()),
        "at": draw(timestamps),
    }


@st.composite
def snapshot_dicts(draw):
    # The shape of a session checkpoint: nested dicts of scalars and
    # homogeneous numeric lists (ring buffers, sealed windows).
    return {
        "video_id": draw(names),
        "windows": [
            {
                "start": draw(timestamps),
                "counts": draw(st.lists(st.integers(0, 1000), max_size=8)),
                "scores": draw(st.lists(finite_floats, max_size=8)),
            }
            for _ in range(draw(st.integers(0, 3)))
        ],
        "open": draw(st.dictionaries(names, st.lists(finite_floats, max_size=4), max_size=3)),
    }


def json_parity(value):
    """What the JSON path would hand a decoder for ``value``."""
    return json.loads(json.dumps(value))


# ------------------------------------------------------------- round trips
class TestRoundTripProperties:
    @settings(max_examples=150, deadline=None)
    @given(json_values)
    def test_arbitrary_trees(self, value):
        assert wire.decode_frame(wire.encode_frame(value)) == json_parity(value)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(chat_message_dicts(), max_size=20))
    def test_chat_batches(self, batch):
        assert wire.decode_frame(wire.encode_frame(batch)) == json_parity(batch)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(interaction_dicts(), max_size=20))
    def test_play_batches(self, batch):
        assert wire.decode_frame(wire.encode_frame(batch)) == json_parity(batch)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(stream_event_dicts(), max_size=10))
    def test_stream_events(self, events):
        payload = {"events": events, "ingested": len(events)}
        assert wire.decode_frame(wire.encode_frame(payload)) == json_parity(payload)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(red_dot_dicts(), max_size=10))
    def test_red_dot_responses(self, dots):
        payload = {"red_dots": dots}
        assert wire.decode_frame(wire.encode_frame(payload)) == json_parity(payload)

    @settings(max_examples=60, deadline=None)
    @given(snapshot_dicts())
    def test_session_snapshots(self, snapshot):
        assert wire.decode_frame(wire.encode_frame(snapshot)) == json_parity(snapshot)

    def test_type_preservation(self):
        # type() not isinstance: bools, ints and floats must come back as
        # themselves even inside columnar batches (1 vs 1.0 vs True).
        rows = [
            {"a": 1, "b": 1.0, "c": True, "d": "1"},
            {"a": 0, "b": -0.5, "c": False, "d": ""},
            {"a": 2**70, "b": 3.14, "c": True, "d": "x"},
        ]
        decoded = wire.decode_frame(wire.encode_frame(rows))
        for got, want in zip(decoded, rows):
            for key in want:
                assert got[key] == want[key]
                assert type(got[key]) is type(want[key])

    def test_key_coercion_matches_json(self):
        value = {True: "t", False: "f", None: "n", 3: "i", 2.5: "fl"}
        assert wire.decode_frame(wire.encode_frame(value)) == json_parity(value)

    def test_tuples_become_lists(self):
        value = {"window": (1.0, 2.0)}
        assert wire.decode_frame(wire.encode_frame(value)) == json_parity(value)


# ------------------------------------------------------------ encode errors
class TestEncodeStrictness:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_rejected(self, bad):
        # Mirrors json.dumps(..., allow_nan=False): a ValueError, so the
        # snapshot write path's contract holds for both codecs.
        with pytest.raises(ValueError):
            wire.encode_frame({"x": bad})

    def test_unsupported_type_is_type_error(self):
        with pytest.raises(TypeError):
            wire.encode_frame({"x": object()})

    def test_unsupported_key_is_type_error(self):
        with pytest.raises(TypeError):
            wire.encode_frame({(1, 2): "x"})


# -------------------------------------------------------------- compression
class TestCompression:
    def test_large_repetitive_payload_compresses(self):
        batch = [
            {"timestamp": float(i), "user": f"user{i % 5}", "text": "PogChamp " * 3}
            for i in range(512)
        ]
        blob = wire.encode_frame(batch)
        as_json = len(json.dumps(batch).encode())
        assert len(blob) < as_json / 2
        assert wire.decode_frame(blob) == json_parity(batch)

    def test_small_payload_stays_uncompressed(self):
        blob = wire.encode_frame({"ok": True})
        flags = blob[5]
        assert not flags & 0x01

    def test_incompressible_payload_stays_uncompressed(self):
        # Compression is applied only when it actually wins.
        import random

        rng = random.Random(7)
        value = ["".join(chr(rng.randrange(0x20, 0x2FFF)) for _ in range(64)) for _ in range(64)]
        blob = wire.encode_frame(value)
        assert wire.decode_frame(blob) == json_parity(value)


# --------------------------------------------------------------- corruption
def _frames():
    """One uncompressed and one compressed frame, with their source values."""
    small = {"messages": [{"timestamp": 1.5, "user": "u", "text": "hi"}], "persist": False}
    big = [{"timestamp": float(i), "user": f"u{i % 3}", "text": "spam " * 10} for i in range(64)]
    return [(small, wire.encode_frame(small)), (big, wire.encode_frame(big))]


class TestCorruptionRejection:
    def test_every_truncation_rejected(self):
        for value, blob in _frames():
            for cut in range(len(blob)):
                with pytest.raises(wire.CodecError):
                    wire.decode_frame(blob[:cut])

    def test_every_byte_flip_detected(self):
        # A flipped byte anywhere — header, string table, payload, CRC —
        # must never decode silently to the wrong value.
        for value, blob in _frames():
            expected = json_parity(value)
            for index in range(len(blob)):
                damaged = bytearray(blob)
                damaged[index] ^= 0xFF
                try:
                    decoded = wire.decode_frame(bytes(damaged))
                except wire.CodecError:
                    continue
                pytest.fail(
                    f"byte {index} flip decoded silently"
                    + (" WRONG" if decoded != expected else " (same value?)")
                )

    def test_trailing_garbage_rejected(self):
        _, blob = _frames()[0]
        with pytest.raises(wire.CodecError):
            wire.decode_frame(blob + b"\x00")

    def test_bad_magic_rejected(self):
        _, blob = _frames()[0]
        with pytest.raises(wire.CodecError):
            wire.decode_frame(b"XXXX" + blob[4:])

    def test_unknown_version_rejected(self):
        _, blob = _frames()[0]
        damaged = bytearray(blob)
        damaged[4] = wire.VERSION + 1
        with pytest.raises(wire.CodecError):
            wire.decode_frame(bytes(damaged))

    def test_unknown_flag_bits_rejected(self):
        _, blob = _frames()[0]
        damaged = bytearray(blob)
        damaged[5] |= 0x80
        with pytest.raises(wire.CodecError):
            wire.decode_frame(bytes(damaged))

    def test_not_even_a_frame(self):
        with pytest.raises(wire.CodecError):
            wire.decode_frame(b"")
        with pytest.raises(wire.CodecError):
            wire.decode_frame(b'{"this": "is json"}')

    def test_codec_error_is_validation_error(self):
        # The gateway maps ValidationError to 400; CodecError must ride
        # that mapping.
        assert issubclass(wire.CodecError, ValidationError)
        assert issubclass(wire.CodecError, ValueError)


# ------------------------------------------------------------- entity caps
class TestEntityCap:
    def test_declared_size_over_cap_rejected_before_decompression(self):
        value = {"x": ["spam"] * 5000}
        blob = wire.encode_frame(value)
        assert blob[5] & 0x01  # compressed: the cap must act on raw_len
        with pytest.raises(wire.CodecTooLargeError):
            wire.decode_frame(blob, max_raw_bytes=100)

    def test_cap_names_sizes(self):
        blob = wire.encode_frame({"x": ["spam"] * 5000})
        with pytest.raises(wire.CodecTooLargeError) as excinfo:
            wire.decode_frame(blob, max_raw_bytes=100)
        assert excinfo.value.max_raw_bytes == 100
        assert excinfo.value.raw_len > 100

    def test_under_cap_decodes(self):
        value = {"ok": [1, 2, 3]}
        blob = wire.encode_frame(value)
        assert wire.decode_frame(blob, max_raw_bytes=1 << 20) == json_parity(value)

    def test_lying_raw_len_rejected(self):
        # A frame whose header understates its payload to sneak under the
        # cap fails the CRC / length check instead of decoding.
        value = {"x": ["spam"] * 500}
        blob = bytearray(wire.encode_frame(value, compress_threshold=1 << 30))
        import struct

        struct.pack_into("!I", blob, 6, 10)  # claim raw_len = 10
        with pytest.raises(wire.CodecError):
            wire.decode_frame(bytes(blob), max_raw_bytes=1 << 20)

    def test_zip_bomb_lying_small_never_inflates_past_declared_size(self):
        # A hand-crafted frame that declares a tiny raw_len but whose zlib
        # stream inflates enormously must be rejected by the *bounded*
        # inflate — well before materialising the full payload.
        import struct
        import zlib

        bomb = zlib.compress(b"\x00" * (64 << 20), 9)  # 64 MiB of zeros
        header = struct.pack("!4sBBI", wire.MAGIC, wire.VERSION, 0x01, 10)
        crc = zlib.crc32(bomb, zlib.crc32(header)) & 0xFFFFFFFF
        blob = header + struct.pack("!I", crc) + bomb
        with pytest.raises(wire.CodecError, match="declared"):
            wire.decode_frame(blob, max_raw_bytes=16 << 20)


# ------------------------------------------------------------ frame anatomy
class TestFrameAnatomy:
    def test_header_layout(self):
        blob = wire.encode_frame(None)
        assert blob[:4] == wire.MAGIC
        assert blob[4] == wire.VERSION
        assert len(blob) >= wire.HEADER_SIZE

    def test_crc_matches_zlib_crc32(self):
        blob = wire.encode_frame({"a": 1})
        import struct

        crc = struct.unpack_from("!I", blob, 10)[0]
        assert crc == zlib.crc32(blob[:10] + blob[14:]) & 0xFFFFFFFF

    def test_string_table_dedupes_repeated_ids(self):
        # 200 rows sharing one video id must not store the id 200 times.
        rows = [{"video_id": "channel-with-a-long-name", "seq": i} for i in range(200)]
        blob = wire.encode_frame(rows, compress_threshold=1 << 30)
        assert blob.count(b"channel-with-a-long-name") == 1
