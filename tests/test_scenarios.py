"""Tests for the adversarial scenario library (``loadgen/scenarios.py``).

Every scenario must be (a) deterministic — two builds from the same spec
are byte-identical, like every other workload in the repo — and (b) judged
by its declared oracle: the sequential spot-check for all of them, plus
fingerprint equality with the unperturbed base run for the
arrival-reshaping ``reconnect-storm``.
"""

from __future__ import annotations

import pytest

from repro.loadgen import (
    DEFAULT_KNOBS,
    SCENARIOS,
    LoadWorkload,
    ScenarioKnobs,
    WorkloadSpec,
    build_scenario_workload,
    run_scenario,
)
from repro.utils.validation import ValidationError

TINY = WorkloadSpec(channels=2, viewers=10, duration=300.0, batch_size=16, seed=7)


def _batch_keys(workload):
    return [
        (b.kind, b.video_id, b.arrival, b.sequence, b.events)
        for b in workload.batches()
    ]


class TestScenarioBuilders:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_build_is_deterministic(self, name):
        first = build_scenario_workload(name, TINY)
        second = build_scenario_workload(name, TINY)
        assert _batch_keys(first) == _batch_keys(second)
        assert first.total_events == second.total_events
        assert first.total_events > 0

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_batches_stay_globally_ordered_by_arrival(self, name):
        arrivals = [b.arrival for b in build_scenario_workload(name, TINY).batches()]
        assert arrivals == sorted(arrivals)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            build_scenario_workload("meteor-strike", TINY)

    def test_flash_crowd_multiplies_head_viewership(self):
        base = LoadWorkload.from_spec(TINY)
        surged = build_scenario_workload("flash-crowd", TINY)
        head_base, head_surged = base.plans[0], surged.plans[0]
        assert head_surged.viewers == head_base.viewers * 20
        assert len(head_surged.plays) > len(head_base.plays)
        # The surge stays inside the channel's stream and only the head
        # channel is perturbed.
        assert all(e.timestamp < head_surged.duration for e in head_surged.plays)
        assert surged.plans[1:] == base.plans[1:]

    def test_chat_flood_spams_the_head_channel(self):
        base = LoadWorkload.from_spec(TINY)
        flooded = build_scenario_workload("chat-flood", TINY)
        organic = len(base.plans[0].chat)
        spam = [m for m in flooded.plans[0].chat if m.user.startswith("flood-bot-")]
        assert len(spam) == max(64, 4 * organic)
        assert len(flooded.plans[0].chat) == organic + len(spam)
        # Organic messages survive untouched among the spam.
        organic_survivors = [
            m for m in flooded.plans[0].chat if not m.user.startswith("flood-bot-")
        ]
        assert sorted(organic_survivors, key=lambda m: m.timestamp) == sorted(
            base.plans[0].chat, key=lambda m: m.timestamp
        )
        assert flooded.plans[1:] == base.plans[1:]

    def test_reconnect_storm_moves_arrivals_not_contents(self):
        base = LoadWorkload.from_spec(TINY)
        storm = build_scenario_workload("reconnect-storm", TINY)
        base_batches, storm_batches = base.batches(), storm.batches()
        assert len(storm_batches) == len(base_batches)
        # Contents are a permutation: same multiset of (kind, channel, events).
        key = lambda b: (b.kind, b.video_id, b.events)
        assert sorted(map(key, storm_batches)) == sorted(map(key, base_batches))
        # Per-channel per-kind order is preserved — the invariant the
        # baseline oracle rests on.
        for plan in base.plans:
            vid = plan.video.video_id
            for kind in ("chat", "plays"):
                original = [
                    b.events for b in base_batches
                    if b.video_id == vid and b.kind == kind
                ]
                reordered = [
                    b.events for b in storm_batches
                    if b.video_id == vid and b.kind == kind
                ]
                assert reordered == original
        # The outage window is actually empty: nothing arrives inside it.
        horizon = max(b.arrival for b in base_batches)
        outage_start, outage_end = horizon * 0.35, horizon * (0.35 + 0.25)
        assert any(
            outage_start <= b.arrival < outage_end for b in base_batches
        ), "spec too small to exercise the storm"
        assert not any(
            outage_start <= b.arrival < outage_end for b in storm_batches
        )

    def test_fairness_builds_an_extreme_skew_fleet(self):
        spec = WorkloadSpec(
            channels=4, viewers=80, duration=300.0, batch_size=16, seed=7
        )
        fleet = build_scenario_workload("fairness", spec)
        viewers = [plan.viewers for plan in fleet.plans]
        # One whale, a starving tail: the head dwarfs the rest combined.
        assert viewers[0] > sum(viewers[1:])
        # The caller's spec is not mutated — the skew lives in the build.
        assert spec.zipf_exponent != 3.0


class TestScenarioOracles:
    @pytest.mark.parametrize("name", ["flash-crowd", "chat-flood", "fairness"])
    def test_sequential_oracle_holds(self, name, fitted_initializer):
        result = run_scenario(name, TINY, fitted_initializer, shards=2, workers=2)
        assert result.ok
        assert result.oracle == "sequential"
        assert result.report.divergences == []
        assert result.baseline_divergences == []
        assert f"scenario {name}" in result.describe()

    def test_reconnect_storm_matches_unperturbed_baseline(self, fitted_initializer):
        """The storm's whole promise: only *when* changes, never *what* —
        so its end state equals the unperturbed run, byte for byte."""
        result = run_scenario(
            "reconnect-storm", TINY, fitted_initializer, shards=2, workers=2
        )
        assert result.ok
        assert result.oracle == "baseline"
        assert result.baseline_divergences == []
        assert "byte-identical to the unperturbed run" in result.describe()

    def test_fairness_under_per_channel_budget_over_http(self, fitted_initializer):
        """The budget refuses *concurrent* excess per channel; the harness
        keeps one worker per channel, so a budget of 1 must never refuse
        the drive itself — the run completes clean under the tightest cap."""
        result = run_scenario(
            "fairness", TINY, fitted_initializer, shards=2, workers=2,
            transport="http", per_channel_pending=1,
        )
        assert result.ok
        assert result.report.divergences == []

    def test_unknown_scenario_rejected(self, fitted_initializer):
        with pytest.raises(ValidationError, match="unknown scenario"):
            run_scenario("meteor-strike", TINY, fitted_initializer)


class TestScenarioKnobs:
    """The CLI-exposed severity knobs actually steer the builders."""

    def test_defaults_reproduce_the_fixed_constants(self):
        assert (
            DEFAULT_KNOBS.surge_factor,
            DEFAULT_KNOBS.flood_factor,
            DEFAULT_KNOBS.outage_start_frac,
            DEFAULT_KNOBS.outage_length_frac,
        ) == (20, 4, 0.35, 0.25)
        # knobs=None, explicit defaults and DEFAULT_KNOBS are all the same
        # build — the benchmarks' recorded shapes stay byte-identical.
        for name in sorted(SCENARIOS):
            plain = build_scenario_workload(name, TINY)
            explicit = build_scenario_workload(name, TINY, ScenarioKnobs())
            assert _batch_keys(plain) == _batch_keys(explicit)

    def test_surge_factor_scales_head_viewership(self):
        base = LoadWorkload.from_spec(TINY)
        surged = build_scenario_workload(
            "flash-crowd", TINY, ScenarioKnobs(surge_factor=5)
        )
        assert surged.plans[0].viewers == base.plans[0].viewers * 5
        assert len(surged.plans[0].plays) > len(base.plans[0].plays)
        # Milder surge, fewer extra sessions than the default shape.
        default = build_scenario_workload("flash-crowd", TINY)
        assert len(surged.plans[0].plays) < len(default.plans[0].plays)

    def test_flood_factor_scales_spam(self):
        base = LoadWorkload.from_spec(TINY)
        organic = len(base.plans[0].chat)
        flooded = build_scenario_workload(
            "chat-flood", TINY, ScenarioKnobs(flood_factor=9)
        )
        spam = [
            m for m in flooded.plans[0].chat if m.user.startswith("flood-bot-")
        ]
        assert len(spam) == max(64, 9 * organic)

    def test_outage_window_follows_the_knobs(self):
        knobs = ScenarioKnobs(outage_start_frac=0.1, outage_length_frac=0.5)
        storm = build_scenario_workload("reconnect-storm", TINY, knobs)
        base_batches = LoadWorkload.from_spec(TINY).batches()
        horizon = max(b.arrival for b in base_batches)
        start, end = horizon * 0.1, horizon * (0.1 + 0.5)
        assert any(
            start <= b.arrival < end for b in base_batches
        ), "spec too small to exercise the custom window"
        assert not any(start <= b.arrival < end for b in storm.batches())

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(surge_factor=0), "surge_factor"),
            (dict(surge_factor=2.5), "surge_factor"),
            (dict(flood_factor=0), "flood_factor"),
            (dict(outage_start_frac=1.0), "outage_start_frac"),
            (dict(outage_length_frac=0.0), "outage_length_frac"),
            (dict(outage_start_frac=0.6, outage_length_frac=0.6), "must end"),
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValidationError, match=match):
            ScenarioKnobs(**kwargs)

    def test_run_scenario_accepts_knobs(self, fitted_initializer):
        result = run_scenario(
            "flash-crowd", TINY, fitted_initializer, shards=2, workers=2,
            knobs=ScenarioKnobs(surge_factor=3),
        )
        assert result.ok
        head_base = LoadWorkload.from_spec(TINY).plans[0].viewers
        assert result.workload.plans[0].viewers == head_base * 3
