"""Tests for the platform substrate (storage, API, crawler, service, extension)."""

from __future__ import annotations

import pytest

from repro.core.types import ChatMessage, Highlight, Interaction, InteractionKind, RedDot, Video
from repro.platform.api import SimulatedStreamingAPI
from repro.platform.crawler import ChatCrawler
from repro.platform.extension import BrowserExtension, ProgressBarView
from repro.platform.service import LightorWebService
from repro.platform.storage import InMemoryStore
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError


def _video(video_id="v1", duration=600.0):
    return Video(video_id=video_id, duration=duration)


class TestInMemoryStore:
    def test_video_roundtrip(self):
        store = InMemoryStore()
        store.put_video(_video())
        assert store.has_video("v1")
        assert store.get_video("v1").duration == 600.0
        assert not store.has_video("nope")
        with pytest.raises(ValidationError):
            store.get_video("nope")

    def test_chat_requires_known_video(self):
        store = InMemoryStore()
        with pytest.raises(ValidationError):
            store.put_chat("ghost", [ChatMessage(1.0)])

    def test_chat_roundtrip_sorted(self):
        store = InMemoryStore()
        store.put_video(_video())
        count = store.put_chat("v1", [ChatMessage(30.0), ChatMessage(5.0)])
        assert count == 2
        assert store.has_chat("v1")
        assert [m.timestamp for m in store.get_chat("v1")] == [5.0, 30.0]
        assert len(store.get_chat_log("v1")) == 2

    def test_interaction_log_appends(self):
        store = InMemoryStore()
        store.put_video(_video())
        store.log_interactions("v1", [Interaction(1.0, InteractionKind.PLAY, "a")])
        total = store.log_interactions("v1", [Interaction(2.0, InteractionKind.STOP, "a")])
        assert total == 2
        assert len(store.get_interactions("v1")) == 2

    def test_red_dots_replace(self):
        store = InMemoryStore()
        store.put_video(_video())
        store.put_red_dots("v1", [RedDot(position=50.0)])
        store.put_red_dots("v1", [RedDot(position=70.0), RedDot(position=20.0)])
        assert [d.position for d in store.get_red_dots("v1")] == [20.0, 70.0]

    def test_highlight_versions_increase(self):
        store = InMemoryStore()
        store.put_video(_video())
        first = store.put_highlight("v1", Highlight(10.0, 20.0))
        second = store.put_highlight("v1", Highlight(11.0, 21.0))
        assert (first.version, second.version) == (1, 2)
        assert len(store.highlight_history("v1")) == 2
        # Both refer to the same area, so only the latest is reported.
        assert store.latest_highlights("v1") == [Highlight(11.0, 21.0)]

    def test_stats(self):
        store = InMemoryStore()
        store.put_video(_video())
        store.put_chat("v1", [ChatMessage(1.0)])
        stats = store.stats()
        assert stats["videos"] == 1 and stats["chat_messages"] == 1


class TestSimulatedAPI:
    def test_catalog_is_stable(self):
        api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(3), videos_per_channel=3)
        first = api.recent_videos("dota2_channel_0")
        second = api.recent_videos("dota2_channel_0")
        assert [v.video_id for v in first] == [v.video_id for v in second]

    def test_channels_do_not_share_videos(self):
        api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(3), videos_per_channel=3)
        a = {v.video_id for v in api.recent_videos("dota2_channel_0")}
        b = {v.video_id for v in api.recent_videos("dota2_channel_1")}
        assert not a & b

    def test_chat_replay_cached(self):
        api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(3), videos_per_channel=2)
        video = api.recent_videos("lol_channel_0", 1)[0]
        first = api.get_chat_replay(video.video_id)
        second = api.get_chat_replay(video.video_id)
        assert first == second
        assert api.chat_requests_served_ == 2

    def test_unknown_identifiers_rejected(self):
        api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(3))
        with pytest.raises(ValidationError):
            api.get_video("chess-0001")
        with pytest.raises(ValidationError):
            api.recent_videos("unknown_channel_x")


class TestChatCrawler:
    def _crawler(self):
        api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(4), videos_per_channel=2)
        store = InMemoryStore()
        return ChatCrawler(api=api, store=store), api, store

    def test_online_crawl_is_idempotent(self):
        crawler, api, store = self._crawler()
        video = api.recent_videos("dota2_channel_0", 1)[0]
        first = crawler.crawl_video(video.video_id)
        second = crawler.crawl_video(video.video_id)
        assert first == second
        assert store.has_chat(video.video_id)

    def test_offline_pass_crawls_watched_channels(self):
        crawler, _, store = self._crawler()
        crawler.watch_top_channels("dota2", count=2)
        report = crawler.offline_pass()
        assert report.channels_visited == 2
        assert report.videos_crawled == report.videos_seen == 4
        assert store.stats()["videos_with_chat"] == 4
        # A second pass crawls nothing new.
        assert crawler.offline_pass().videos_crawled == 0


class TestWebServiceAndExtension:
    @pytest.fixture()
    def service(self, fitted_initializer):
        api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(2020), videos_per_channel=2)
        store = InMemoryStore()
        crawler = ChatCrawler(api=api, store=store)
        return LightorWebService(store=store, crawler=crawler, initializer=fitted_initializer)

    def test_request_red_dots_crawls_and_caches(self, service):
        video_id = service.crawler.api.recent_videos("dota2_channel_0", 1)[0].video_id
        dots = service.request_red_dots(video_id, k=5)
        assert service.store.has_chat(video_id)
        assert service.store.get_red_dots(video_id) == dots
        assert service.request_red_dots(video_id, k=5) == dots

    def test_empty_red_dot_result_is_cached(self, service, monkeypatch):
        # A below-threshold video stores an empty dot set; later requests
        # must serve it from the store instead of recomputing.
        video_id = service.crawler.api.recent_videos("dota2_channel_1", 1)[0].video_id
        monkeypatch.setattr(service.initializer, "is_applicable", lambda log: False)
        assert service.request_red_dots(video_id, k=3) == []
        assert service.store.has_red_dots(video_id)

        def explode(log):
            raise AssertionError("empty cached result was recomputed")

        monkeypatch.setattr(service.initializer, "is_applicable", explode)
        assert service.request_red_dots(video_id, k=3) == []

    def test_log_interactions_requires_known_video(self, service):
        with pytest.raises(ValidationError):
            service.log_interactions("ghost", [])

    def test_refinement_updates_highlights(self, service, crowd):
        video_id = service.crawler.api.recent_videos("dota2_channel_0", 1)[0].video_id
        dots = service.request_red_dots(video_id, k=3)
        if not dots:
            pytest.skip("no red dots served for this synthetic video")
        video = service.store.get_video(video_id)
        for dot in dots:
            for round_index in range(3):
                service.log_interactions(
                    video_id, crowd.collect_round(video, dot, round_index)
                )
        updated = service.refine_video(video_id)
        assert updated >= 1
        assert service.store.latest_highlights(video_id)

    def test_extension_activation_and_rendering(self, service):
        extension = BrowserExtension(service=service, k=3)
        assert extension.open_page("https://example.tv/directory") is None
        video_id = service.crawler.api.recent_videos("dota2_channel_0", 1)[0].video_id
        view = extension.open_page(f"https://example.tv/videos/{video_id}")
        assert view is not None
        rendered = view.render()
        assert rendered.count("*") >= 1
        assert len(rendered) == view.width + 2

    def test_extension_forwards_interactions(self, service):
        extension = BrowserExtension(service=service, k=3)
        video_id = service.crawler.api.recent_videos("dota2_channel_0", 1)[0].video_id
        extension.open_page(f"https://example.tv/videos/{video_id}")
        dot = extension.click_dot(0)
        count = extension.forward_interactions(
            [
                Interaction(dot.position, InteractionKind.PLAY, "me"),
                Interaction(dot.position + 20.0, InteractionKind.STOP, "me"),
            ]
        )
        assert count == 2

    def test_extension_errors_without_active_page(self, service):
        extension = BrowserExtension(service=service)
        with pytest.raises(ValidationError):
            extension.forward_interactions([])
        with pytest.raises(ValidationError):
            extension.click_dot(0)

    def test_progress_bar_bounds(self):
        view = ProgressBarView(video_id="v", duration=100.0, dot_positions=(0.0, 99.9), width=20)
        rendered = view.render()
        assert rendered[1] == "*" and rendered[-2] == "*"
        assert view.n_dots == 2

    def test_url_parsing(self):
        assert BrowserExtension.extract_video_id("https://t.tv/videos/dota2-0001") == "dota2-0001"
        assert BrowserExtension.extract_video_id("https://t.tv/channels/foo") is None


class TestServiceShutdown:
    @pytest.fixture()
    def live_service(self, fitted_initializer, dota2_dataset):
        api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(2020), videos_per_channel=2)
        store = InMemoryStore()
        crawler = ChatCrawler(api=api, store=store)
        service = LightorWebService(
            store=store, crawler=crawler, initializer=fitted_initializer, live_k=3
        )
        targets = list(dota2_dataset[2:4])
        for target in targets:
            service.start_live(target.video)
            service.ingest_chat_batch(
                target.video.video_id, list(target.chat_log.messages[:200])
            )
        return service, [target.video.video_id for target in targets]

    def test_shutdown_finalizes_every_session_and_closes_the_store(self, live_service):
        service, video_ids = live_service
        closed = []
        original_close = service.store.close
        service.store.close = lambda: (closed.append(True), original_close())
        service.shutdown()
        assert closed == [True]
        for video_id in video_ids:
            assert service.store.has_red_dots(video_id)
        assert not service.streaming.open_video_ids()

    def test_failing_end_live_still_closes_store_and_other_sessions(self, live_service):
        """Regression: ``shutdown()`` used to abort on the first ``end_live``
        error — never reaching ``store.close()`` and skipping the remaining
        sessions' finalization."""
        service, video_ids = live_service
        doomed = video_ids[0]
        closed = []
        original_close = service.store.close
        service.store.close = lambda: (closed.append(True), original_close())
        original_end = service.end_live

        def end_live(video_id, duration=None):
            if video_id == doomed:
                raise RuntimeError(f"finalize failed for {video_id}")
            return original_end(video_id, duration)

        service.end_live = end_live
        with pytest.raises(RuntimeError, match=doomed):
            service.shutdown()
        # The store was closed anyway, and the healthy session persisted.
        assert closed == [True]
        assert service.store.has_red_dots(video_ids[1])
