"""Tests for the evaluation package (matching predicates, metrics, reports, runner)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.initializer.predictor import FeatureSet
from repro.core.initializer.windows import SlidingWindow
from repro.core.types import Highlight
from repro.datasets.loaders import train_test_split
from repro.eval.matching import (
    is_correct_end,
    is_correct_start,
    is_good_red_dot,
    matched_highlight,
    window_matches_highlight,
)
from repro.eval.metrics import (
    chat_precision_at_k,
    video_precision_end_at_k,
    video_precision_start_at_k,
)
from repro.eval.reports import format_caption, format_series, format_table
from repro.eval.runner import EvaluationRunner
from repro.utils.validation import ValidationError

HIGHLIGHTS = [Highlight(start=100.0, end=130.0), Highlight(start=300.0, end=310.0)]


class TestMatching:
    def test_correct_start_window(self):
        assert is_correct_start(95.0, HIGHLIGHTS)      # within 10s before
        assert is_correct_start(130.0, HIGHLIGHTS)     # at the end
        assert not is_correct_start(131.0, HIGHLIGHTS)
        assert not is_correct_start(89.0, HIGHLIGHTS)

    def test_correct_end_window(self):
        assert is_correct_end(305.0, HIGHLIGHTS)
        assert is_correct_end(320.0, HIGHLIGHTS)       # within 10s after
        assert not is_correct_end(321.0, HIGHLIGHTS)
        assert not is_correct_end(295.0, HIGHLIGHTS)

    def test_good_red_dot_equals_correct_start(self):
        for position in (89.0, 95.0, 130.0, 131.0):
            assert is_good_red_dot(position, HIGHLIGHTS) == is_correct_start(position, HIGHLIGHTS)

    def test_matched_highlight_prefers_closest_start(self):
        highlights = [Highlight(90.0, 200.0), Highlight(95.0, 120.0)]
        match = matched_highlight(96.0, highlights)
        assert match == Highlight(95.0, 120.0)
        assert matched_highlight(500.0, highlights) is None

    def test_window_matches_highlight_includes_reaction_delay(self):
        window = SlidingWindow(start=135.0, end=160.0)
        assert window_matches_highlight(window, HIGHLIGHTS, reaction_delay=30.0)
        assert not window_matches_highlight(window, HIGHLIGHTS, reaction_delay=0.0)

    @given(st.floats(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_good_dot_positions_form_union_of_intervals(self, position):
        expected = any(h.start - 10.0 <= position <= h.end for h in HIGHLIGHTS)
        assert is_good_red_dot(position, HIGHLIGHTS) == expected


class TestMetrics:
    def test_chat_precision(self):
        windows = [SlidingWindow(100.0, 125.0), SlidingWindow(400.0, 425.0)]
        assert chat_precision_at_k(windows, HIGHLIGHTS, k=2) == 0.5
        assert chat_precision_at_k(windows, HIGHLIGHTS, k=1) == 1.0

    def test_video_precision_start(self):
        positions = [95.0, 200.0, 305.0]
        assert video_precision_start_at_k(positions, HIGHLIGHTS, k=3) == pytest.approx(2 / 3)
        assert video_precision_start_at_k(positions, HIGHLIGHTS, k=1) == 1.0

    def test_video_precision_end(self):
        positions = [135.0, 200.0]
        assert video_precision_end_at_k(positions, HIGHLIGHTS, k=2) == 0.5

    def test_empty_positions_score_zero(self):
        assert video_precision_start_at_k([], HIGHLIGHTS, k=5) == 0.0
        assert chat_precision_at_k([], HIGHLIGHTS, k=5) == 0.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValidationError):
            video_precision_start_at_k([1.0], HIGHLIGHTS, k=0)

    @given(
        st.lists(st.floats(min_value=0, max_value=500), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_precision_bounded(self, positions, k):
        value = video_precision_start_at_k(positions, HIGHLIGHTS, k=k)
        assert 0.0 <= value <= 1.0


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["system", "p@5"], [["LIGHTOR", 0.9], ["LSTM", 0.6]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("system")
        assert "0.900" in lines[2]

    def test_format_table_caption(self):
        text = format_table(["a"], [[1]], caption="cap")
        assert text.splitlines()[0] == "cap"

    def test_format_series_union_of_x_values(self):
        text = format_series("k", {"a": {1: 0.5}, "b": {2: 0.7}})
        assert "1" in text and "2" in text and "-" in text

    def test_format_caption(self):
        assert format_caption("Table I", "desc") == "=== Table I: desc ==="


class TestEvaluationRunner:
    def test_initializer_evaluation(self, config, dota2_dataset):
        train, test = train_test_split(dota2_dataset, n_train=1, n_test=3)
        runner = EvaluationRunner(config=config, feature_set=FeatureSet.ALL)
        initializer = runner.fit_initializer(train)
        evaluation = runner.evaluate_initializer(initializer, test, k=5)
        assert 0.0 <= evaluation.chat_precision <= 1.0
        assert 0.0 <= evaluation.start_precision <= 1.0
        assert evaluation.n_test_videos == 3
        assert evaluation.adjustment_constant > 0

    def test_chat_precision_curve_keys(self, config, dota2_dataset):
        train, test = train_test_split(dota2_dataset, n_train=1, n_test=2)
        runner = EvaluationRunner(config=config)
        initializer = runner.fit_initializer(train)
        curve = runner.chat_precision_curve(initializer, test, [1, 5])
        assert set(curve) == {1, 5}

    def test_run_pipeline_outputs_expected_keys(self, config, dota2_dataset):
        train, test = train_test_split(dota2_dataset, n_train=1, n_test=2)
        runner = EvaluationRunner(config=config)
        metrics = runner.run_pipeline(train, test, k=3, crowd_seed=5)
        assert set(metrics) == {"start_precision", "end_precision", "training_seconds"}
        assert metrics["training_seconds"] > 0.0
        assert metrics["start_precision"] >= 0.5
