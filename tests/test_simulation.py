"""Tests for the simulation substrate (profiles, vocab, video, chat, viewers, crowd)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.extractor.plays import interactions_to_plays, plays_near_dot
from repro.core.types import RedDot
from repro.simulation.chat import ChatSimulator
from repro.simulation.crowd import CrowdSimulator
from repro.simulation.profiles import DOTA2_PROFILE, LOL_PROFILE, profile_for_game
from repro.simulation.video import VideoGenerator
from repro.simulation.viewers import ViewerBehaviorModel, ViewerPopulation
from repro.simulation.visual import VisualTrackSimulator
from repro.simulation.vocab import vocabulary_for_game
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError


class TestProfiles:
    def test_lookup(self):
        assert profile_for_game("dota2") is DOTA2_PROFILE
        assert profile_for_game("LoL") is LOL_PROFILE

    def test_unknown_game_rejected(self):
        with pytest.raises(ValidationError):
            profile_for_game("chess")

    def test_paper_calibration(self):
        assert DOTA2_PROFILE.min_highlight_length == 5.0
        assert DOTA2_PROFILE.max_highlight_length == 50.0
        assert LOL_PROFILE.max_highlight_length == 81.0
        assert LOL_PROFILE.mean_highlights_per_video > DOTA2_PROFILE.mean_highlights_per_video


class TestVocabulary:
    def test_lookup_and_registers(self, seeds):
        rng = seeds.rng("vocab")
        for game in ("dota2", "lol"):
            vocab = vocabulary_for_game(game)
            reaction = vocab.sample_reaction(rng)
            background = vocab.sample_background(rng)
            bot = vocab.sample_bot(rng)
            assert reaction and background and bot

    def test_games_have_distinct_reaction_vocabulary(self):
        dota = set(vocabulary_for_game("dota2").reaction_phrases)
        lol = set(vocabulary_for_game("lol").reaction_phrases)
        assert not dota & lol

    def test_bot_messages_are_long(self, seeds):
        rng = seeds.rng("bots")
        vocab = vocabulary_for_game("dota2")
        assert all(len(vocab.sample_bot(rng).split()) >= 8 for _ in range(10))

    def test_unknown_game_rejected(self):
        with pytest.raises(ValidationError):
            vocabulary_for_game("valorant")


class TestVideoGenerator:
    def test_deterministic(self, seeds):
        a = VideoGenerator(seeds=SeedSequenceFactory(1)).generate(3, game="dota2")
        b = VideoGenerator(seeds=SeedSequenceFactory(1)).generate(3, game="dota2")
        assert a == b

    def test_respects_profile_ranges(self, seeds):
        generator = VideoGenerator(seeds=seeds)
        for index in range(5):
            video = generator.generate(index, game="dota2")
            assert DOTA2_PROFILE.min_duration <= video.duration <= DOTA2_PROFILE.max_duration
            assert video.n_highlights >= 6
            for highlight in video.highlights:
                assert highlight.duration <= DOTA2_PROFILE.max_highlight_length + 1e-9
                assert highlight.end <= video.duration

    def test_highlights_are_separated(self, seeds):
        video = VideoGenerator(seeds=seeds).generate(0, game="lol")
        starts = [h.start for h in video.highlights]
        assert all(b - a >= 60.0 for a, b in zip(starts, starts[1:]))

    def test_generate_many(self, seeds):
        videos = VideoGenerator(seeds=seeds).generate_many(3, game="dota2")
        assert [v.video_id for v in videos] == ["dota2-0000", "dota2-0001", "dota2-0002"]

    def test_requires_game_or_profile(self, seeds):
        with pytest.raises(ValidationError):
            VideoGenerator(seeds=seeds).generate(0)


class TestChatSimulator:
    def test_deterministic(self):
        video = VideoGenerator(seeds=SeedSequenceFactory(5)).generate(0, game="dota2")
        a = ChatSimulator(seeds=SeedSequenceFactory(5)).simulate(video)
        b = ChatSimulator(seeds=SeedSequenceFactory(5)).simulate(video)
        assert [m.text for m in a] == [m.text for m in b]

    def test_messages_within_video(self, labelled_video):
        assert all(0 <= m.timestamp <= labelled_video.video.duration for m in labelled_video.chat_log)

    def test_chat_rate_in_paper_range(self, dota2_dataset):
        rates = [v.chat_log.messages_per_hour for v in dota2_dataset]
        assert np.median(rates) > 400.0

    def test_bursts_follow_highlights(self, labelled_video):
        """The densest minute after a highlight should out-chat a random quiet minute."""
        chat_log = labelled_video.chat_log
        highlight = labelled_video.highlights[0]
        burst_count = len(chat_log.messages_between(highlight.start, highlight.end + 60.0))
        quiet_point = None
        for candidate in np.arange(120.0, labelled_video.video.duration - 120.0, 37.0):
            if all(
                candidate + 60.0 < h.start - 60.0 or candidate > h.end + 90.0
                for h in labelled_video.highlights
            ):
                quiet_point = float(candidate)
                break
        assert quiet_point is not None
        quiet_count = len(chat_log.messages_between(quiet_point, quiet_point + 60.0))
        assert burst_count > quiet_count

    def test_reaction_peak_lags_highlight_start(self, dota2_dataset):
        """The average start→peak delay should be tens of seconds, as in Fig. 2."""
        delays = []
        for labelled in dota2_dataset[:3]:
            for highlight in labelled.highlights:
                window = labelled.chat_log.messages_between(highlight.start, highlight.end + 60.0)
                if len(window) < 5:
                    continue
                counts = np.zeros(int(highlight.duration + 60.0) + 1)
                for message in window:
                    counts[int(message.timestamp - highlight.start)] += 1
                delays.append(float(np.argmax(counts)))
        assert delays
        assert 10.0 <= float(np.mean(delays)) <= 45.0


class TestViewerBehavior:
    def test_type_ii_plays_are_concentrated(self, seeds, dota2_dataset):
        labelled = dota2_dataset[2]
        highlight = labelled.highlights[0]
        model = ViewerBehaviorModel(seeds=seeds)
        dot = RedDot(position=max(0.0, highlight.start - 5.0), video_id=labelled.video.video_id)
        interactions = model.simulate_round(labelled.video, dot, n_viewers=40)
        plays = plays_near_dot(
            interactions_to_plays(interactions, video_duration=labelled.video.duration), dot, 60.0
        )
        offsets = np.array([p.start - highlight.start for p in plays])
        assert offsets.size > 10
        assert abs(np.median(offsets)) < 15.0

    def test_type_i_plays_are_diffuse(self, seeds, dota2_dataset):
        labelled = dota2_dataset[2]
        highlight = labelled.highlights[0]
        model = ViewerBehaviorModel(seeds=seeds)
        type_i_dot = RedDot(position=highlight.end + 15.0, video_id=labelled.video.video_id)
        type_ii_dot = RedDot(position=max(0.0, highlight.start - 5.0))
        diffuse = model.simulate_round(labelled.video, type_i_dot, n_viewers=40)
        concentrated = model.simulate_round(labelled.video, type_ii_dot, n_viewers=40)

        def start_std(interactions, dot):
            plays = plays_near_dot(
                interactions_to_plays(interactions, video_duration=labelled.video.duration),
                dot,
                60.0,
            )
            return float(np.std([p.start for p in plays]))

        assert start_std(diffuse, type_i_dot) > start_std(concentrated, type_ii_dot)

    def test_population_sampling(self, seeds):
        population = ViewerPopulation(size=50)
        workers = population.sample_workers(seeds.rng("w"), 10)
        assert len(set(workers)) == 10
        assert all(w.startswith("worker_") for w in workers)

    def test_invalid_viewer_count_rejected(self, seeds, dota2_dataset):
        model = ViewerBehaviorModel(seeds=seeds)
        with pytest.raises(ValidationError):
            model.simulate_round(dota2_dataset[0].video, RedDot(position=10.0), n_viewers=0)


class TestCrowdSimulator:
    def test_rounds_are_reproducible(self, dota2_dataset):
        labelled = dota2_dataset[2]
        dot = RedDot(position=labelled.highlights[0].start)
        a = CrowdSimulator(seeds=SeedSequenceFactory(7)).collect_round(labelled.video, dot, 0)
        b = CrowdSimulator(seeds=SeedSequenceFactory(7)).collect_round(labelled.video, dot, 0)
        assert a == b

    def test_different_rounds_differ(self, dota2_dataset):
        labelled = dota2_dataset[2]
        dot = RedDot(position=labelled.highlights[0].start)
        crowd = CrowdSimulator(seeds=SeedSequenceFactory(7))
        assert crowd.collect_round(labelled.video, dot, 0) != crowd.collect_round(
            labelled.video, dot, 1
        )

    def test_interaction_source_counts_responses(self, dota2_dataset):
        labelled = dota2_dataset[2]
        crowd = CrowdSimulator(seeds=SeedSequenceFactory(7), responses_per_round=5)
        source = crowd.interaction_source(labelled.video)
        source(RedDot(position=200.0), 0)
        source(RedDot(position=200.0), 1)
        assert crowd.total_responses_ == 10


class TestVisualTrack:
    def test_track_length_matches_duration(self, seeds, dota2_dataset):
        video = dota2_dataset[0].video
        track = VisualTrackSimulator(seeds=seeds).simulate(video)
        assert track.size == int(np.ceil(video.duration))

    def test_highlights_are_elevated(self, seeds, dota2_dataset):
        video = dota2_dataset[0].video
        track = VisualTrackSimulator(seeds=seeds).simulate(video)
        highlight_values = []
        for highlight in video.highlights:
            highlight_values.extend(track[int(highlight.start) : int(highlight.end)])
        assert float(np.mean(highlight_values)) > float(np.mean(track))
