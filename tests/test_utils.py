"""Unit and property tests for :mod:`repro.utils`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.histograms import Histogram, cumulative_distribution, empirical_cdf_at
from repro.utils.rng import SeedSequenceFactory, derive_rng, stable_hash
from repro.utils.smoothing import find_local_maxima, gaussian_smooth, moving_average
from repro.utils.validation import (
    ValidationError,
    require,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_probability,
    require_range,
    require_sorted,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("dota2", 7) == stable_hash("dota2", 7)

    def test_different_inputs_differ(self):
        assert stable_hash("dota2", 7) != stable_hash("lol", 7)

    def test_separator_prevents_concatenation_collisions(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_returns_non_negative_int(self):
        value = stable_hash("x")
        assert isinstance(value, int) and value >= 0


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        a = SeedSequenceFactory(42).rng("chat", 1).random(5)
        b = SeedSequenceFactory(42).rng("chat", 1).random(5)
        assert np.allclose(a, b)

    def test_different_names_different_streams(self):
        a = SeedSequenceFactory(42).rng("chat", 1).random(5)
        b = SeedSequenceFactory(42).rng("chat", 2).random(5)
        assert not np.allclose(a, b)

    def test_spawn_is_deterministic(self):
        a = SeedSequenceFactory(42).spawn("crowd").rng("x").random(3)
        b = SeedSequenceFactory(42).spawn("crowd").rng("x").random(3)
        assert np.allclose(a, b)

    def test_derive_rng_matches_factory(self):
        factory = SeedSequenceFactory(7)
        assert np.allclose(factory.rng("a").random(3), derive_rng(7, "a").random(3))

    def test_choice_from_empty_raises(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(1).choice([], "x")

    def test_permutation_is_a_permutation(self):
        perm = SeedSequenceFactory(3).permutation(10, "p")
        assert sorted(perm.tolist()) == list(range(10))

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("not-an-int")  # type: ignore[arg-type]


class TestSmoothing:
    def test_moving_average_preserves_constant(self):
        values = np.full(20, 3.5)
        assert np.allclose(moving_average(values, 5), values)

    def test_moving_average_length_preserved(self):
        assert moving_average(np.arange(11, dtype=float), 4).size == 11

    def test_gaussian_smooth_preserves_constant(self):
        values = np.full(30, 2.0)
        assert np.allclose(gaussian_smooth(values, sigma=3.0), values)

    def test_gaussian_smooth_reduces_variance(self):
        rng = np.random.default_rng(0)
        noisy = rng.normal(size=200)
        assert np.var(gaussian_smooth(noisy, sigma=4.0)) < np.var(noisy)

    def test_empty_input_passthrough(self):
        assert moving_average(np.array([]), 3).size == 0
        assert gaussian_smooth(np.array([]), 2.0).size == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            moving_average(np.arange(5, dtype=float), 0)

    def test_find_local_maxima_simple(self):
        curve = np.array([0.0, 1.0, 0.0, 2.0, 0.0])
        assert find_local_maxima(curve) == [1, 3]

    def test_find_local_maxima_min_height(self):
        curve = np.array([0.0, 1.0, 0.0, 2.0, 0.0])
        assert find_local_maxima(curve, min_height=1.5) == [3]

    def test_find_local_maxima_constant_curve(self):
        maxima = find_local_maxima(np.ones(5))
        assert maxima[0] == 0

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_moving_average_bounded_by_extremes(self, values):
        array = np.asarray(values, dtype=float)
        smoothed = moving_average(array, 3)
        assert smoothed.min() >= array.min() - 1e-9
        assert smoothed.max() <= array.max() + 1e-9


class TestHistogram:
    def test_add_point_counts(self):
        histogram = Histogram(duration=10.0, bin_size=1.0)
        histogram.add_point(0.5)
        histogram.add_point(0.7)
        histogram.add_point(9.9)
        assert histogram.counts[0] == 2
        assert histogram.counts[9] == 1

    def test_add_point_out_of_range_rejected(self):
        histogram = Histogram(duration=10.0)
        with pytest.raises(ValidationError):
            histogram.add_point(10.0)
        with pytest.raises(ValidationError):
            histogram.add_point(-1.0)

    def test_add_range_covers_bins(self):
        histogram = Histogram(duration=10.0, bin_size=1.0)
        histogram.add_range(2.0, 5.0)
        assert histogram.counts[2] == 1 and histogram.counts[4] == 1
        assert histogram.counts[5] == 0 or histogram.counts[5] == 0.0

    def test_add_range_clips_to_duration(self):
        histogram = Histogram(duration=10.0)
        histogram.add_range(8.0, 50.0)
        assert histogram.counts[9] == 1

    def test_add_empty_range_is_noop(self):
        histogram = Histogram(duration=10.0)
        histogram.add_range(5.0, 5.0)
        assert histogram.to_array().sum() == 0

    def test_argmax_time(self):
        histogram = Histogram(duration=10.0)
        histogram.add_point(3.2)
        histogram.add_point(3.4)
        histogram.add_point(7.0)
        assert histogram.argmax_time() == pytest.approx(3.5)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValidationError):
            Histogram(duration=0.0)


class TestCumulativeDistribution:
    def test_percentages_monotone_and_bounded(self):
        values, percentages = cumulative_distribution([5.0, 1.0, 3.0])
        assert list(values) == [1.0, 3.0, 5.0]
        assert list(percentages) == pytest.approx([100 / 3, 200 / 3, 100.0])

    def test_empty_input(self):
        values, percentages = cumulative_distribution([])
        assert values.size == 0 and percentages.size == 0

    def test_empirical_cdf_at(self):
        assert empirical_cdf_at([1, 2, 3, 4], 2.5) == pytest.approx(0.5)
        assert empirical_cdf_at([], 1.0) == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_cdf_is_monotone(self, values):
        _, percentages = cumulative_distribution(values)
        assert np.all(np.diff(percentages) >= -1e-9)
        assert percentages[-1] == pytest.approx(100.0)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValidationError):
            require(False, "boom")

    def test_require_positive(self):
        require_positive(1.0, "x")
        with pytest.raises(ValidationError):
            require_positive(0.0, "x")

    def test_require_non_negative(self):
        require_non_negative(0.0, "x")
        with pytest.raises(ValidationError):
            require_non_negative(-0.1, "x")

    def test_require_probability(self):
        require_probability(0.5, "p")
        with pytest.raises(ValidationError):
            require_probability(1.5, "p")

    def test_require_range(self):
        require_range(5, 0, 10, "x")
        with pytest.raises(ValidationError):
            require_range(11, 0, 10, "x")

    def test_require_sorted(self):
        require_sorted([1, 2, 2, 3], "x")
        with pytest.raises(ValidationError):
            require_sorted([3, 1], "x")

    def test_require_non_empty(self):
        require_non_empty([1], "x")
        with pytest.raises(ValidationError):
            require_non_empty([], "x")
        with pytest.raises(ValidationError):
            require_non_empty(iter([]), "x")
