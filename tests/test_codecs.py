"""Round-trip property tests for the platform serialization codecs.

Every core type must survive ``to_dict`` → JSON → ``from_dict`` unchanged —
the durable backends store exactly these payloads, so any lossy codec would
silently corrupt the platform state.  Hypothesis drives the value space
(arbitrary finite floats round-trip exactly through Python's JSON encoder);
explicit cases cover the structural edges: empty chat logs, zero-interaction
dots, windowless dots, unlabeled videos.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import (
    ChatMessage,
    Highlight,
    Interaction,
    InteractionKind,
    PlayRecord,
    RedDot,
    Video,
    VideoChatLog,
)
from repro.platform import codecs
from repro.platform.backends import HighlightRecord
from repro.utils.validation import ValidationError

# Finite non-negative timestamps/scores; any binary64 value round-trips
# exactly through json (shortest-repr encoding).
timestamps = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
scores = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
names = st.text(max_size=24)


@st.composite
def chat_messages(draw):
    return ChatMessage(timestamp=draw(timestamps), user=draw(names), text=draw(names))


@st.composite
def highlights(draw):
    start = draw(timestamps)
    length = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    return Highlight(start=start, end=start + length, label=draw(names))


@st.composite
def red_dots(draw):
    window = None
    if draw(st.booleans()):
        left = draw(timestamps)
        window = (left, left + draw(st.floats(min_value=0.0, max_value=1e4, allow_nan=False)))
    return RedDot(
        position=draw(timestamps),
        score=draw(scores),
        window=window,
        video_id=draw(names),
    )


@st.composite
def interactions(draw):
    kind = draw(st.sampled_from(list(InteractionKind)))
    seeks = (InteractionKind.SEEK_FORWARD, InteractionKind.SEEK_BACKWARD)
    target = draw(timestamps) if kind in seeks or draw(st.booleans()) else None
    return Interaction(
        timestamp=draw(timestamps), kind=kind, user=draw(names), target=target
    )


@st.composite
def videos(draw):
    duration = draw(st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
    marks = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        start = draw(st.floats(min_value=0.0, max_value=duration / 2, allow_nan=False))
        end = draw(st.floats(min_value=start, max_value=duration, allow_nan=False))
        marks.append(Highlight(start=start, end=end, label=draw(names)))
    return Video(
        video_id=draw(names),
        duration=duration,
        game=draw(names),
        channel=draw(names),
        viewer_count=draw(st.integers(min_value=0, max_value=10**6)),
        highlights=tuple(marks),
    )


@st.composite
def chat_logs(draw):
    video = draw(videos())
    messages = [
        ChatMessage(
            timestamp=draw(st.floats(min_value=0.0, max_value=video.duration, allow_nan=False)),
            user=draw(names),
            text=draw(names),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=5)))
    ]
    return VideoChatLog(video=video, messages=messages)


@st.composite
def highlight_records(draw):
    return HighlightRecord(
        video_id=draw(names),
        highlight=draw(highlights()),
        version=draw(st.integers(min_value=1, max_value=10**6)),
        source=draw(names),
    )


def roundtrip(obj):
    """encode → JSON string → decode, through the tagged generic surface."""
    return codecs.decode(json.loads(json.dumps(codecs.encode(obj))))


class TestRoundTripProperties:
    @settings(max_examples=100, deadline=None)
    @given(chat_messages())
    def test_chat_message(self, message):
        restored = roundtrip(message)
        assert restored == message
        # ChatMessage equality compares the timestamp only; check the rest.
        assert (restored.user, restored.text) == (message.user, message.text)

    @settings(max_examples=100, deadline=None)
    @given(highlights())
    def test_highlight(self, highlight):
        assert roundtrip(highlight) == highlight

    @settings(max_examples=100, deadline=None)
    @given(red_dots())
    def test_red_dot(self, dot):
        assert roundtrip(dot) == dot

    @settings(max_examples=100, deadline=None)
    @given(interactions())
    def test_interaction(self, interaction):
        restored = roundtrip(interaction)
        assert restored == interaction
        assert (restored.kind, restored.user, restored.target) == (
            interaction.kind,
            interaction.user,
            interaction.target,
        )

    @settings(max_examples=50, deadline=None)
    @given(st.builds(PlayRecord, user=names, start=timestamps, end=st.just(1e9 + 1)))
    def test_play_record(self, play):
        assert roundtrip(play) == play

    @settings(max_examples=50, deadline=None)
    @given(videos())
    def test_video(self, video):
        assert roundtrip(video) == video

    @settings(max_examples=25, deadline=None)
    @given(chat_logs())
    def test_chat_log(self, chat_log):
        restored = roundtrip(chat_log)
        assert restored.video == chat_log.video
        assert restored.messages == chat_log.messages
        assert [(m.user, m.text) for m in restored.messages] == [
            (m.user, m.text) for m in chat_log.messages
        ]

    @settings(max_examples=50, deadline=None)
    @given(highlight_records())
    def test_highlight_record(self, record):
        assert roundtrip(record) == record


class TestEdgeValues:
    def test_empty_chat_log(self):
        log = VideoChatLog(video=Video(video_id="v", duration=60.0), messages=[])
        restored = roundtrip(log)
        assert restored.messages == [] and restored.video == log.video

    def test_zero_interaction_dot(self):
        dot = RedDot(position=0.0)
        restored = roundtrip(dot)
        assert restored == dot
        assert restored.score == 0.0 and restored.window is None
        assert restored.video_id == ""

    def test_unlabeled_video(self):
        video = Video(video_id="v", duration=1.0)
        restored = roundtrip(video)
        assert restored.highlights == ()
        assert isinstance(restored.highlights, tuple)

    def test_window_restored_as_tuple(self):
        dot = RedDot(position=5.0, window=(0.0, 30.0))
        restored = roundtrip(dot)
        assert isinstance(restored.window, tuple)
        assert restored.window == (0.0, 30.0)

    def test_interaction_kind_restored_as_enum(self):
        interaction = Interaction(1.0, InteractionKind.SEEK_FORWARD, target=9.0)
        restored = roundtrip(interaction)
        assert restored.kind is InteractionKind.SEEK_FORWARD

    def test_awkward_float_survives_json(self):
        # 0.1 + 0.2 != 0.3: the codec must keep the exact binary64 bits.
        dot = RedDot(position=0.1 + 0.2, score=1 / 3)
        restored = roundtrip(dot)
        assert restored.position.hex() == dot.position.hex()
        assert restored.score.hex() == dot.score.hex()

    def test_dumps_loads_stable(self):
        dot = RedDot(position=7.0, score=0.5, window=(0.0, 30.0), video_id="v")
        text = codecs.dumps(dot)
        assert codecs.loads(text) == dot
        assert codecs.dumps(codecs.loads(text)) == text

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            codecs.encode(object())
        with pytest.raises(ValidationError):
            codecs.decode({"type": "martian"})
