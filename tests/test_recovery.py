"""Checkpoint/recovery subsystem tests.

Four layers, matching the subsystem's own structure:

1. **Snapshot codecs** — hypothesis round-trips for every streaming class
   that gained ``snapshot()``/``restore()``: the payload must survive a
   strict JSON encode/decode bit-exactly (re-snapshot equality) *and* the
   restored object must behave identically from that point on (continuation
   equality: same events, same finalized dots).
2. **Service checkpointing** — the snapshot registry semantics (written at
   ``start_live``, replaced on cadence and kind flips, kept on eviction,
   deleted on clean close).
3. **Crash recovery** — kill a SQLite-backed service mid-stream, rebuild it
   in a fresh service, finish the run, and require byte-identical final red
   dots and highlight records to an uninterrupted run.
4. **Service-tier correctness fixes** that rode along with the hardening:
   cache-hit ``k`` handling, fold-first/persist-second store purity on both
   backends, the unregistered-video persist error, and JSON-safe zero-
   duration stage stats.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import ChatMessage, Interaction, InteractionKind, RedDot, Video
from repro.loadgen import WorkloadSpec, run_kill_recover
from repro.loadgen.metrics import LatencyRecorder, StageStats, merge_recorders
from repro.platform.api import SimulatedStreamingAPI
from repro.platform.backends import InMemoryStore, SQLiteStore
from repro.platform.crawler import ChatCrawler
from repro.platform.recovery import SNAPSHOT_VERSION
from repro.platform.service import LightorWebService
from repro.streaming import (
    IncrementalWindowState,
    StreamSession,
    StreamingExtractor,
    StreamingInitializer,
)
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError

# ``fitted_initializer``, ``labelled_video`` and ``crowd`` come from the
# session-scoped fixtures in conftest.py.


def _roundtrip(payload: dict) -> dict:
    """A snapshot as recovery will see it: through strict JSON and back."""
    return json.loads(json.dumps(payload, sort_keys=True, allow_nan=False))


def _messages(timestamps, texts=None):
    return [
        ChatMessage(
            timestamp=t,
            user=f"user_{i % 5}",
            text="" if texts is None and i % 7 == 3 else f"msg {i} gg wp kill",
        )
        for i, t in enumerate(timestamps)
    ]


_timestamps = st.lists(
    st.floats(min_value=0.0, max_value=480.0, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=60,
).map(sorted)


# ---------------------------------------------------------------------------
# 1. snapshot-codec round trips
# ---------------------------------------------------------------------------
class TestSnapshotRoundTrips:
    @settings(deadline=None, max_examples=40)
    @given(timestamps=_timestamps, split_salt=st.integers(0, 1_000))
    def test_window_state_roundtrip_and_continuation(self, timestamps, split_salt):
        messages = _messages(timestamps)
        split = split_salt % (len(messages) + 1)
        state = IncrementalWindowState(window_size=25.0, stride=10.0)
        for message in messages[:split]:
            state.add(message)

        snap = state.snapshot()
        restored = IncrementalWindowState.restore(_roundtrip(snap))
        assert restored.snapshot() == snap

        original_sealed = [s for m in messages[split:] for s in state.add(m)]
        restored_sealed = [s for m in messages[split:] for s in restored.add(m)]
        assert restored_sealed == original_sealed
        assert restored.finalize(600.0) == state.finalize(600.0)

    @settings(deadline=None, max_examples=25)
    @given(timestamps=_timestamps, split_salt=st.integers(0, 1_000))
    def test_initializer_roundtrip_and_continuation(
        self, fitted_initializer, timestamps, split_salt
    ):
        messages = _messages(timestamps)
        split = split_salt % (len(messages) + 1)
        engine = StreamingInitializer.from_initializer(
            fitted_initializer, k=4, video_id="hypo"
        )
        engine.ingest_batch(messages[:split])

        snap = engine.snapshot()
        restored = StreamingInitializer.restore(
            _roundtrip(snap),
            model=fitted_initializer.model,
            config=fitted_initializer.config,
            feature_set=fitted_initializer.feature_set,
        )
        assert restored.snapshot() == snap
        assert restored.current_dots() == engine.current_dots()

        assert restored.ingest_batch(messages[split:]) == engine.ingest_batch(
            messages[split:]
        )
        assert restored.finalize(600.0) == engine.finalize(600.0)
        # A finalized engine snapshots and restores too (final dots kept).
        closed = StreamingInitializer.restore(
            _roundtrip(engine.snapshot()), model=fitted_initializer.model
        )
        assert closed.current_dots() == engine.current_dots()

    @settings(deadline=None, max_examples=40)
    @given(
        events=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
                st.sampled_from(list(InteractionKind)),
                st.integers(0, 3),
                st.one_of(
                    st.none(),
                    st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
                ),
            ),
            max_size=50,
        ).map(lambda raw: sorted(raw, key=lambda e: e[0])),
        split_salt=st.integers(0, 1_000),
    )
    def test_extractor_roundtrip_and_continuation(self, events, split_salt):
        interactions = [
            Interaction(
                timestamp=t,
                kind=kind,
                user=f"viewer_{u}",
                # Seek interactions require a target; land on the timestamp
                # when the strategy drew none.
                target=(
                    t
                    if target is None
                    and kind
                    in (InteractionKind.SEEK_FORWARD, InteractionKind.SEEK_BACKWARD)
                    else target
                ),
            )
            for t, kind, u, target in events
        ]
        split = split_salt % (len(interactions) + 1)
        extractor = StreamingExtractor(min_plays_for_refinement=3, max_plays_per_dot=8)
        extractor.sync_dots(
            [RedDot(position=100.0, window=(75.0, 100.0)), RedDot(position=250.0)]
        )
        extractor.ingest_batch(interactions[:split])

        snap = extractor.snapshot()
        restored = StreamingExtractor.restore(_roundtrip(snap))
        assert restored.snapshot() == snap
        assert restored.tracked_dots() == extractor.tracked_dots()

        assert restored.ingest_batch(interactions[split:]) == extractor.ingest_batch(
            interactions[split:]
        )
        assert restored.flush() == extractor.flush()
        assert restored.refined_highlights() == extractor.refined_highlights()

    def test_session_roundtrip_with_live_traffic(
        self, fitted_initializer, labelled_video, crowd
    ):
        messages = list(labelled_video.chat_log.messages)
        half = len(messages) // 2
        session = StreamSession(
            video_id=labelled_video.video.video_id,
            initializer=StreamingInitializer.from_initializer(
                fitted_initializer, k=5, video_id=labelled_video.video.video_id
            ),
            extractor=StreamingExtractor(
                config=fitted_initializer.config, min_plays_for_refinement=5
            ),
        )
        session.ingest_messages(messages[:half])
        for round_index, dot in enumerate(session.current_dots()[:2]):
            session.ingest_interactions(
                crowd.collect_round(labelled_video.video, dot, round_index)
            )

        snap = session.snapshot()
        restored = StreamSession.restore(
            _roundtrip(snap),
            model=fitted_initializer.model,
            config=fitted_initializer.config,
            feature_set=fitted_initializer.feature_set,
        )
        assert restored.snapshot() == snap

        assert restored.ingest_messages(messages[half:]) == session.ingest_messages(
            messages[half:]
        )
        duration = labelled_video.video.duration
        assert restored.finalize(duration) == session.finalize(duration)
        assert restored.refined_highlights() == session.refined_highlights()


# ---------------------------------------------------------------------------
# 2 + 3. service checkpointing and crash recovery
# ---------------------------------------------------------------------------
def _service(store, initializer, checkpoint_every=None):
    api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(2020))
    return LightorWebService(
        store=store,
        crawler=ChatCrawler(api=api, store=store),
        initializer=initializer,
        checkpoint_every=checkpoint_every,
        live_k=5,
    )


class TestServiceCheckpointing:
    def test_snapshots_are_the_open_session_registry(
        self, fitted_initializer, labelled_video
    ):
        service = _service(InMemoryStore(), fitted_initializer, checkpoint_every=50)
        video_id = labelled_video.video.video_id
        service.start_live(labelled_video.video)
        assert set(service.store.get_session_snapshots()) == {video_id}

        service.ingest_chat_batch(
            video_id, list(labelled_video.chat_log.messages[:200]), persist=True
        )
        snapshot = service.store.get_session_snapshots()[video_id]
        assert snapshot["version"] == SNAPSHOT_VERSION
        assert snapshot["chat_persisted"] == 200
        assert snapshot["session"]["messages_ingested"] == 200

        service.end_live(video_id, labelled_video.video.duration)
        assert service.store.get_session_snapshots() == {}

    def test_kind_flip_checkpoints_before_the_flipping_batch(
        self, fitted_initializer, labelled_video
    ):
        # Cadence far above the traffic: only start_live and the flip rule
        # may write snapshots, so the flip is observable in isolation.
        service = _service(InMemoryStore(), fitted_initializer, checkpoint_every=10_000)
        video_id = labelled_video.video.video_id
        service.start_live(labelled_video.video)
        service.ingest_chat_batch(
            video_id, list(labelled_video.chat_log.messages[:120]), persist=True
        )
        # Still the start_live snapshot: nothing was persisted before it.
        assert service.store.get_session_snapshots()[video_id]["chat_persisted"] == 0

        service.ingest_plays_batch(
            video_id, [Interaction(50.0, InteractionKind.PLAY, "viewer_0")]
        )
        flipped = service.store.get_session_snapshots()[video_id]
        # The flip checkpoint covers all persisted chat but none of the plays
        # (it is written before the flipping batch touches the store), so the
        # suffix past it stays homogeneous.
        assert flipped["chat_persisted"] == 120
        assert flipped["interactions_persisted"] == 0
        assert flipped["session"]["interactions_ingested"] == 0

    def test_shutdown_is_a_clean_close(self, fitted_initializer, labelled_video):
        service = _service(InMemoryStore(), fitted_initializer, checkpoint_every=50)
        service.start_live(labelled_video.video)
        service.shutdown()
        assert service.store.get_session_snapshots() == {}

    def test_eviction_checkpoints_the_still_open_state(
        self, fitted_initializer, dota2_dataset
    ):
        service = _service(InMemoryStore(), fitted_initializer, checkpoint_every=50)
        service.max_live_sessions = 1
        first, second = dota2_dataset[1], dota2_dataset[2]
        service.start_live(first.video)
        service.ingest_chat_batch(
            first.video.video_id, list(first.chat_log.messages[:150]), persist=True
        )
        service.start_live(second.video)  # LRU-evicts the first channel

        assert not service.streaming.has_session(first.video.video_id)
        snapshot = service.store.get_session_snapshots()[first.video.video_id]
        assert snapshot["session"]["closed"] is False
        assert snapshot["session"]["messages_ingested"] == 150
        # The evicted channel's provisional results were persisted as before …
        assert service.store.has_red_dots(first.video.video_id)
        # … and once the budget frees up, recovery resurrects the live session.
        service.end_live(second.video.video_id, second.video.duration)
        recovered = service.recover_live_sessions()
        assert [r.video_id for r in recovered] == [first.video.video_id]
        assert service.streaming.has_session(first.video.video_id)

    def test_start_live_resumes_an_evicted_channel_from_its_checkpoint(
        self, fitted_initializer, dota2_dataset
    ):
        service = _service(InMemoryStore(), fitted_initializer, checkpoint_every=50)
        service.max_live_sessions = 1
        first, second = dota2_dataset[1], dota2_dataset[2]
        service.start_live(first.video)
        service.ingest_chat_batch(
            first.video.video_id, list(first.chat_log.messages[:150]), persist=True
        )
        service.start_live(second.video)  # evicts the first channel
        service.end_live(second.video.video_id, second.video.duration)

        # Going live again must continue from the eviction checkpoint, not
        # open an empty session that would overwrite it.
        service.start_live(first.video)
        session = service.streaming.session(first.video.video_id)
        assert session.messages_ingested == 150
        snapshot = service.store.get_session_snapshots()[first.video.video_id]
        assert snapshot["session"]["messages_ingested"] == 150

    def test_out_of_band_interaction_log_is_counted_by_the_next_checkpoint(
        self, fitted_initializer, labelled_video
    ):
        service = _service(InMemoryStore(), fitted_initializer, checkpoint_every=10_000)
        video_id = labelled_video.video.video_id
        service.start_live(labelled_video.video)
        service.ingest_plays_batch(
            video_id, [Interaction(10.0, InteractionKind.PLAY, "viewer_0")]
        )
        # A front-end VOD callback logs rows the live session never folds.
        service.log_interactions(
            video_id, [Interaction(20.0, InteractionKind.STOP, "vod_user")]
        )
        service.checkpoint_live_session(video_id)
        snapshot = service.store.get_session_snapshots()[video_id]
        # The snapshot counts the out-of-band row as covered, so recovery
        # will not replay it into a session that never ingested it.
        assert snapshot["interactions_persisted"] == 2
        assert snapshot["session"]["interactions_ingested"] == 1

    def test_out_of_band_interaction_log_survives_an_immediate_crash(
        self, fitted_initializer, labelled_video, tmp_path
    ):
        # The durable snapshot itself must cover the out-of-band rows: a
        # crash right after log_interactions (no cadence checkpoint in
        # between) must not replay them into the recovered session.
        video = labelled_video.video
        path = tmp_path / "oob.db"
        service = _service(SQLiteStore(path), fitted_initializer, checkpoint_every=10_000)
        service.start_live(video)
        service.ingest_chat_batch(
            video.video_id, list(labelled_video.chat_log.messages[:100]), persist=True
        )
        service.log_interactions(
            video.video_id, [Interaction(20.0, InteractionKind.STOP, "vod_user")]
        )
        service.store.close()  # crash

        survivor = _service(SQLiteStore(path), fitted_initializer, checkpoint_every=10_000)
        recovered = survivor.recover_live_sessions()
        assert recovered[0].plays_replayed == 0
        session = survivor.streaming.session(video.video_id)
        assert session.interactions_ingested == 0
        assert session.extractor.interactions_seen == 0
        survivor.shutdown()

    def test_recover_skips_sessions_that_are_already_live(
        self, fitted_initializer, labelled_video
    ):
        service = _service(InMemoryStore(), fitted_initializer, checkpoint_every=50)
        service.start_live(labelled_video.video)
        assert service.recover_live_sessions() == []

    def test_unknown_snapshot_version_is_an_error(
        self, fitted_initializer, labelled_video
    ):
        store = InMemoryStore()
        service = _service(store, fitted_initializer, checkpoint_every=50)
        store.put_video(labelled_video.video)
        store.put_session_snapshot(
            labelled_video.video.video_id, {"version": 99, "session": {}}
        )
        with pytest.raises(ValidationError):
            service.recover_live_sessions()


class TestCrashRecovery:
    def _drive(self, service, video, messages, start, upto):
        """Chat in persisted batches of 40, a play burst every 200 messages."""
        index = start
        while index < upto:
            batch = messages[index : index + 40]
            service.ingest_chat_batch(video.video_id, batch, persist=True)
            index += len(batch)
            if index % 200 == 0 and batch:
                t = batch[-1].timestamp
                user = f"viewer_{index % 5}"
                service.ingest_plays_batch(
                    video.video_id,
                    [
                        Interaction(max(0.0, t - 40.0), InteractionKind.PLAY, user),
                        Interaction(t, InteractionKind.PAUSE, user),
                    ],
                )

    def _end_state(self, service, video):
        dots = service.end_live(video.video_id, video.duration)
        store = service.store
        return (
            dots,
            store.get_red_dots(video.video_id),
            [
                (r.highlight, r.version, r.source)
                for r in store.highlight_history(video.video_id)
            ],
            store.get_interactions(video.video_id),
        )

    def test_kill_and_recover_matches_uninterrupted_run(
        self, fitted_initializer, labelled_video, tmp_path
    ):
        video = labelled_video.video
        messages = list(labelled_video.chat_log.messages)
        path = tmp_path / "crash.db"

        service = _service(SQLiteStore(path), fitted_initializer, checkpoint_every=150)
        service.start_live(video)
        self._drive(service, video, messages, 0, len(messages) // 2)
        killed_at = service.streaming.session(video.video_id).messages_ingested
        service.store.close()  # the crash: no shutdown, no finalize

        survivor = _service(SQLiteStore(path), fitted_initializer, checkpoint_every=150)
        recovered = survivor.recover_live_sessions()
        assert [r.video_id for r in recovered] == [video.video_id]
        assert recovered[0].messages_ingested == killed_at
        self._drive(survivor, video, messages, killed_at, len(messages))
        recovered_state = self._end_state(survivor, video)
        assert survivor.store.get_session_snapshots() == {}
        survivor.shutdown()

        reference = _service(InMemoryStore(), fitted_initializer)
        reference.start_live(video)
        self._drive(reference, video, messages, 0, len(messages))
        assert self._end_state(reference, video) == recovered_state

    @pytest.mark.parametrize("kill_after", [0, 9])
    def test_loadgen_chaos_oracle(self, fitted_initializer, tmp_path, kill_after):
        spec = WorkloadSpec(
            channels=2, viewers=30, duration=900.0, batch_size=48, seed=7
        )
        report = run_kill_recover(
            spec,
            fitted_initializer,
            db_path=tmp_path / "chaos.db",
            shards=2,
            kill_after=kill_after,
            checkpoint_every=64,
        )
        assert report.ok, f"divergent channels: {report.divergences}"
        assert report.killed_after == min(kill_after, report.total_batches)
        if kill_after > 0:
            # Channels that opened before the kill must all come back.
            assert report.sessions_recovered >= 1
        else:
            # Nothing was live yet; recovery has nothing to rebuild and the
            # whole workload is simply re-driven.
            assert report.sessions_recovered == 0
            assert report.events_redriven == report.total_events


# ---------------------------------------------------------------------------
# 4. service-tier correctness fixes
# ---------------------------------------------------------------------------
@pytest.fixture(params=["memory", "sqlite"])
def fix_store(request):
    store = InMemoryStore() if request.param == "memory" else SQLiteStore()
    yield store
    store.close()


class TestServiceCorrectnessFixes:
    def test_cache_hit_honours_smaller_k(self, fitted_initializer):
        service = _service(InMemoryStore(), fitted_initializer)
        video_id = service.crawler.api.recent_videos("dota2_channel_0", 1)[0].video_id
        full = service.request_red_dots(video_id, k=5)
        assert len(full) == 5
        truncated = service.request_red_dots(video_id, k=3)
        # Exactly a fresh k=3 request, without recomputation …
        assert truncated == fitted_initializer.propose(
            service.store.get_chat_log(video_id), k=3
        )
        # … and the stored superset is untouched for future requests.
        assert service.store.get_red_dots(video_id) == full
        assert service.request_red_dots(video_id, k=5) == full

    def test_cache_hit_recomputes_for_larger_k(self, fitted_initializer):
        service = _service(InMemoryStore(), fitted_initializer)
        video_id = service.crawler.api.recent_videos("dota2_channel_0", 1)[0].video_id
        small = service.request_red_dots(video_id, k=2)
        assert len(small) == 2
        grown = service.request_red_dots(video_id, k=6)
        assert grown == fitted_initializer.propose(
            service.store.get_chat_log(video_id), k=6
        )
        assert len(grown) == 6
        assert service.store.get_red_dots(video_id) == grown

    def test_larger_k_below_threshold_chat_keeps_the_cached_set(
        self, fitted_initializer, labelled_video, monkeypatch
    ):
        # Dots persisted by the live path (which never gates on chat rate)
        # must survive a larger-k request whose recompute fails the
        # applicability check — replacing them with [] would destroy them.
        service = _service(InMemoryStore(), fitted_initializer)
        video_id = labelled_video.video.video_id
        service.start_live(labelled_video.video)
        service.ingest_chat_batch(
            video_id, list(labelled_video.chat_log.messages), persist=True
        )
        dots = service.end_live(video_id, labelled_video.video.duration)
        assert dots
        monkeypatch.setattr(service.initializer, "is_applicable", lambda log: False)
        assert service.request_red_dots(video_id, k=len(dots) + 3) == dots
        assert service.store.get_red_dots(video_id) == dots

    def test_unattainable_larger_k_keeps_the_cached_set(self, fitted_initializer):
        service = _service(InMemoryStore(), fitted_initializer)
        video_id = service.crawler.api.recent_videos("dota2_channel_0", 1)[0].video_id
        # The full attainable selection for this video.
        everything = service.request_red_dots(video_id, k=1_000)
        attainable = len(everything)
        # Refinement-style adjustment: move a stored dot and re-store.
        moved = [everything[0].moved_to(everything[0].position + 1.0)] + everything[1:]
        service.store.put_red_dots(video_id, moved)
        # Asking beyond the attainable count must not clobber the adjusted
        # positions with a fresh recompute of the identical selection.
        again = service.request_red_dots(video_id, k=attainable + 5)
        assert again == service.store.get_red_dots(video_id)
        assert [d.position for d in service.store.get_red_dots(video_id)] == sorted(
            d.position for d in moved
        )

    def test_rejected_chat_batch_leaves_no_rows(
        self, fitted_initializer, labelled_video, fix_store
    ):
        service = _service(fix_store, fitted_initializer)
        video_id = labelled_video.video.video_id
        service.start_live(labelled_video.video)
        unsorted = [ChatMessage(50.0, "a", "late"), ChatMessage(10.0, "b", "early")]
        with pytest.raises(ValidationError):
            service.ingest_chat_batch(video_id, unsorted, persist=True)
        assert service.store.get_chat(video_id) == []
        assert service.streaming.session(video_id).messages_ingested == 0

    def test_rejected_plays_batch_leaves_no_rows(
        self, fitted_initializer, labelled_video, fix_store, monkeypatch
    ):
        service = _service(fix_store, fitted_initializer)
        video_id = labelled_video.video.video_id
        service.start_live(labelled_video.video)
        session = service.streaming.session(video_id)

        def reject(interactions):
            raise ValidationError("batch rejected by the session")

        monkeypatch.setattr(session, "ingest_interactions", reject)
        with pytest.raises(ValidationError):
            service.ingest_plays_batch(
                video_id, [Interaction(1.0, InteractionKind.PLAY, "a")]
            )
        # Fold-first, persist-second: the store never saw the rejected batch.
        assert service.store.get_interactions(video_id) == []

    def test_persist_for_unregistered_video_raises(self, fitted_initializer):
        service = _service(InMemoryStore(), fitted_initializer)
        # A session opened below the service (no start_live → no metadata).
        service.streaming.open_session("orphan")
        messages = [ChatMessage(1.0, "a", "hello")]
        with pytest.raises(ValidationError):
            service.ingest_chat_batch("orphan", messages, persist=True)
        # The non-persisting path still works for the same channel.
        service.streaming.open_session("orphan2")
        assert service.ingest_chat_batch("orphan2", messages) == []

    def test_zero_duration_stage_stats_are_json_safe(self):
        recorder = LatencyRecorder()
        recorder.record("chat", 0.0, events=5)
        stats = merge_recorders([recorder])["chat"]
        assert stats.seconds == 0.0
        assert stats.events_per_sec == 0.0
        text = json.dumps(stats.to_dict(), allow_nan=False)
        assert json.loads(text)["events_per_sec"] == 0.0

    def test_stage_stats_rate_unchanged_for_real_durations(self):
        stats = StageStats(
            calls=2, events=100, seconds=0.5, p50_ms=1.0, p95_ms=2.0, p99_ms=3.0, max_ms=4.0
        )
        assert stats.events_per_sec == 200.0
