"""Batch-vs-sequential ingest equivalence.

The service contract introduced with batched ingest: however a channel's
event stream is chunked into ``ingest_chat_batch`` / ``ingest_plays_batch``
calls — including the degenerate per-event chunking of ``ingest_live_chat``
/ ``ingest_live_interactions`` — the *persisted* outcome is byte-identical:
same interaction log, same final red dots, same refined-highlight records,
on every backend.  Hypothesis drives arbitrary event streams and arbitrary
call partitions at both the window-builder level (exact fold) and the full
service level (store fingerprints).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.initializer.windows import StreamingWindowBuilder
from repro.core.types import ChatMessage, Interaction, InteractionKind, Video
from repro.platform import codecs
from repro.platform.sharding import ShardedLightorService
from repro.streaming.initializer import EmitPolicy

# --------------------------------------------------------------- strategies

_TEXTS = ("gg", "PogChamp", "what a play", "lol", "KILL!!", "nice one", "???")
_USERS = ("ana", "bo", "cyx", "dee")


@st.composite
def chat_streams(draw, max_messages=80):
    """A timestamp-ordered chat stream with bursty gaps."""
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
            min_size=4,
            max_size=max_messages,
        )
    )
    timestamp = 0.0
    messages = []
    for index, gap in enumerate(gaps):
        timestamp += gap
        messages.append(
            ChatMessage(
                timestamp=timestamp,
                user=_USERS[index % len(_USERS)],
                text=_TEXTS[draw(st.integers(0, len(_TEXTS) - 1))],
            )
        )
    return messages


@st.composite
def partitions(draw, count):
    """Split ``count`` items into contiguous chunks of arbitrary sizes."""
    sizes = []
    remaining = count
    while remaining > 0:
        size = draw(st.integers(min_value=1, max_value=remaining))
        sizes.append(size)
        remaining -= size
    return sizes


@st.composite
def interaction_streams(draw, horizon, max_events=30):
    """Viewer interactions (play/stop/seek) over the chat horizon."""
    n_events = draw(st.integers(min_value=0, max_value=max_events))
    events = []
    for _ in range(n_events):
        timestamp = draw(st.floats(min_value=0.0, max_value=max(horizon, 1.0), allow_nan=False))
        kind = draw(st.sampled_from(list(InteractionKind)))
        target = None
        if kind in (InteractionKind.SEEK_BACKWARD, InteractionKind.SEEK_FORWARD):
            target = draw(st.floats(min_value=0.0, max_value=max(horizon, 1.0), allow_nan=False))
        events.append(
            Interaction(
                timestamp=timestamp,
                kind=kind,
                user=_USERS[draw(st.integers(0, len(_USERS) - 1))],
                target=target,
            )
        )
    return events


# ------------------------------------------------------------ window builder


class TestBuilderBatchFold:
    @given(stream=chat_streams(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_add_batch_equals_per_message_add(self, stream, data):
        """The NumPy fold seals the identical windows with identical members."""
        chunk_sizes = data.draw(partitions(len(stream)))
        for window_size, stride in ((25.0, 12.5), (25.0, 25.0), (30.0, 7.5)):
            single = StreamingWindowBuilder(window_size=window_size, stride=stride)
            batched = StreamingWindowBuilder(window_size=window_size, stride=stride)

            sealed_single = []
            for message in stream:
                sealed_single.extend(single.add(message))
            sealed_batched = []
            cursor = 0
            for size in chunk_sizes:
                sealed_batched.extend(batched.add_batch(stream[cursor : cursor + size]))
                cursor += size

            duration = stream[-1].timestamp + 1.0 if stream else 1.0
            sealed_single.extend(single.flush(duration))
            sealed_batched.extend(batched.add_batch([]))  # no-op
            sealed_batched.extend(batched.flush(duration))

            assert [(w.start, w.end, w.messages) for w in sealed_single] == [
                (w.start, w.end, w.messages) for w in sealed_batched
            ]
            assert single.messages_seen == batched.messages_seen
            assert single.windows_sealed == batched.windows_sealed

    def test_add_batch_rejects_unsorted_batches(self):
        builder = StreamingWindowBuilder(window_size=10.0, stride=10.0)
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError):
            builder.add_batch([ChatMessage(5.0), ChatMessage(3.0)])
        # State untouched: the sorted batch still folds from scratch.
        assert builder.messages_seen == 0
        assert builder.add_batch([ChatMessage(3.0), ChatMessage(5.0)]) == []

    def test_add_batch_rejects_regression_against_history(self):
        builder = StreamingWindowBuilder(window_size=10.0, stride=10.0)
        builder.add(ChatMessage(50.0))
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError):
            builder.add_batch([ChatMessage(10.0), ChatMessage(60.0)])


# --------------------------------------------------------------- full service
# (``fitted_initializer`` is the session-scoped fixture from tests/conftest.py)


def _service(initializer, backend):
    return ShardedLightorService.create(
        1,
        initializer,
        backend=backend,
        live_k=4,
        # A tight policy makes the per-event arm evaluate often, which is
        # exactly the cadence difference the equivalence must be robust to.
        live_policy=EmitPolicy(eval_every_messages=10, eval_every_seconds=15.0),
        min_interactions_for_refinement=4,
    )


def _store_fingerprint(service, video_id):
    store = service.store_for(video_id)
    return json.dumps(
        {
            "chat": [codecs.chat_message_to_dict(m) for m in store.get_chat(video_id)],
            "interactions": [
                codecs.interaction_to_dict(i) for i in store.get_interactions(video_id)
            ],
            "dots": [codecs.red_dot_to_dict(d) for d in store.get_red_dots(video_id)],
            "highlights": [
                codecs.highlight_record_to_dict(r)
                for r in store.highlight_history(video_id)
            ],
        },
        sort_keys=True,
    )


def _drive(service, video, chat, plays, chat_chunks, play_chunks, batched):
    """Feed the interleaved stream; chunked batch calls or per-event calls."""
    service.start_live(video)
    vid = video.video_id
    chat_cursor = play_cursor = 0
    chat_sizes = list(chat_chunks)
    play_sizes = list(play_chunks)
    # Interleave: one chat chunk, then one play chunk, until both drain.
    # The per-event arm receives the identical global event order.
    while chat_cursor < len(chat) or play_cursor < len(plays):
        if chat_cursor < len(chat):
            size = chat_sizes.pop(0)
            chunk = chat[chat_cursor : chat_cursor + size]
            chat_cursor += size
            if batched:
                service.ingest_chat_batch(vid, chunk)
            else:
                for message in chunk:
                    service.ingest_live_chat(vid, [message])
        if play_cursor < len(plays):
            size = play_sizes.pop(0)
            chunk = plays[play_cursor : play_cursor + size]
            play_cursor += size
            if batched:
                service.ingest_plays_batch(vid, chunk)
            else:
                for event in chunk:
                    service.ingest_live_interactions(vid, [event])
    dots = service.end_live(vid, chat[-1].timestamp + 5.0 if chat else None)
    service.refine_video(vid)
    return dots


class TestServiceBatchEquivalence:
    def test_rejected_persisting_batch_leaves_no_store_rows(self, fitted_initializer):
        """persist=True must not commit chat the stream never folded in."""
        from repro.utils.validation import ValidationError

        service = _service(fitted_initializer, "memory")
        try:
            video = Video(video_id="eq-persist", duration=600.0)
            service.start_live(video)
            unsorted = [ChatMessage(50.0, "a", "later"), ChatMessage(10.0, "b", "earlier")]
            with pytest.raises(ValidationError):
                service.ingest_chat_batch("eq-persist", unsorted, persist=True)
            assert service.store_for("eq-persist").get_chat("eq-persist") == []
            # The sorted batch still works and persists exactly once.
            service.ingest_chat_batch(
                "eq-persist", sorted(unsorted, key=lambda m: m.timestamp), persist=True
            )
            assert len(service.store_for("eq-persist").get_chat("eq-persist")) == 2
        finally:
            service.close()

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    @given(stream=chat_streams(max_messages=60), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_any_partition_yields_identical_store_state(
        self, backend, fitted_initializer, stream, data
    ):
        plays = data.draw(interaction_streams(stream[-1].timestamp if stream else 0.0))
        chat_chunks = data.draw(partitions(len(stream)))
        play_chunks = data.draw(partitions(len(plays))) if plays else []
        video = Video(video_id="eq-1", duration=(stream[-1].timestamp + 10.0) if stream else 60.0)

        batched_service = _service(fitted_initializer, backend)
        sequential_service = _service(fitted_initializer, backend)
        try:
            batched_dots = _drive(
                batched_service, video, stream, plays, chat_chunks, play_chunks, batched=True
            )
            sequential_dots = _drive(
                sequential_service, video, stream, plays, chat_chunks, play_chunks, batched=False
            )
            assert [codecs.red_dot_to_dict(d) for d in batched_dots] == [
                codecs.red_dot_to_dict(d) for d in sequential_dots
            ]
            assert _store_fingerprint(batched_service, "eq-1") == _store_fingerprint(
                sequential_service, "eq-1"
            )
        finally:
            batched_service.close()
            sequential_service.close()
