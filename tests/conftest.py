"""Shared fixtures for the test suite.

The expensive objects (synthetic datasets, fitted models) are built once per
session; individual tests treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.config import LightorConfig
from repro.core.initializer.initializer import HighlightInitializer
from repro.datasets.generate import DatasetSpec, build_dataset
from repro.datasets.loaders import training_pairs
from repro.simulation.crowd import CrowdSimulator
from repro.utils.rng import SeedSequenceFactory


@pytest.fixture(scope="session")
def config() -> LightorConfig:
    """The paper-default configuration."""
    return LightorConfig.paper_defaults()


@pytest.fixture(scope="session")
def dota2_dataset():
    """A small Dota2 suite (deterministic, seed 2020)."""
    return build_dataset(DatasetSpec.dota2(size=6))


@pytest.fixture(scope="session")
def lol_dataset():
    """A small LoL suite (deterministic, seed 2020)."""
    return build_dataset(DatasetSpec.lol(size=4))


@pytest.fixture(scope="session")
def labelled_video(dota2_dataset):
    """One labelled video used by many unit tests."""
    return dota2_dataset[1]


@pytest.fixture(scope="session")
def fitted_initializer(config, dota2_dataset) -> HighlightInitializer:
    """An Initializer trained on the first video of the Dota2 suite."""
    initializer = HighlightInitializer(config=config)
    initializer.fit(training_pairs(dota2_dataset[:1]))
    return initializer


@pytest.fixture(scope="session")
def crowd() -> CrowdSimulator:
    """A crowd simulator with a fixed seed."""
    return CrowdSimulator(seeds=SeedSequenceFactory(99))


@pytest.fixture()
def seeds() -> SeedSequenceFactory:
    """A fresh seed factory for tests that need private randomness."""
    return SeedSequenceFactory(12345)
