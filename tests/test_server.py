"""Tests for the asyncio HTTP gateway and its client.

Four properties matter:

* **wire parity** — a workload driven through the gateway persists (and
  returns) byte-identical state to the same workload driven in-process;
  the JSON wire format must be round-trip exact end to end;
* **validation** — malformed requests and service-level
  ``ValidationError``\\ s map to ``400`` with the service's message intact
  (the client re-raises the same exception type callers already handle);
* **backpressure** — past the ``max_pending`` admission budget the gateway
  answers ``503`` immediately while ``/healthz`` stays reachable;
* **recoverability** — a killed server's durable state alone must carry
  ``repro recover`` to the byte-identical end state of an uninterrupted
  run.
"""

from __future__ import annotations

import http.client
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.platform import codecs, wire
from repro.platform.backends import SQLiteStore
from repro.platform.client import (
    GatewayError,
    GatewayOverloadedError,
    GatewayTimeoutError,
    LightorClient,
)
from repro.platform.server import GatewayThread, LightorGateway
from repro.platform.sharding import ShardedLightorService, shard_db_path
from repro.utils.validation import ValidationError

K = 4
CHUNK = 64


@pytest.fixture()
def tier(fitted_initializer):
    """A 2-shard in-memory service tier (closed by the ``served`` fixture)."""
    return ShardedLightorService.create(
        2, fitted_initializer, live_k=K, max_live_sessions=8
    )


@pytest.fixture()
def served(tier):
    """The tier behind a loopback gateway, with a connected client."""
    gateway = GatewayThread(tier)
    host, port = gateway.start()
    client = LightorClient(host, port)
    yield client, tier
    client.close()
    gateway.stop()
    tier.close()


def _chunks(items, size=CHUNK):
    return [items[i : i + size] for i in range(0, len(items), size)]


class TestWireParity:
    def test_live_run_matches_inproc_byte_for_byte(
        self, served, fitted_initializer, dota2_dataset, crowd
    ):
        client, tier = served
        oracle = ShardedLightorService.create(1, fitted_initializer, live_k=K)
        try:
            for target in dota2_dataset[2:4]:
                video_id = target.video.video_id
                client.start_live(target.video)
                oracle.start_live(target.video)
                wire_events, oracle_events = [], []
                for chunk in _chunks(list(target.chat_log.messages[:400])):
                    wire_events.extend(client.ingest_chat_batch(video_id, chunk))
                    oracle_events.extend(oracle.ingest_chat_batch(video_id, chunk))
                plays = crowd.collect_round(
                    target.video, codecs.red_dot_from_dict(
                        {"position": target.video.duration / 2}
                    ), 0,
                )
                wire_events.extend(client.ingest_plays_batch(video_id, plays))
                oracle_events.extend(oracle.ingest_plays_batch(video_id, plays))
                # The decoded wire events are the orchestrator's own value
                # objects, float-for-float.
                assert wire_events == oracle_events
                assert client.live_red_dots(video_id) == oracle.live_red_dots(video_id)
                wire_dots = client.end_live(video_id, target.video.duration)
                oracle_dots = oracle.end_live(video_id, target.video.duration)
                assert [codecs.red_dot_to_dict(d) for d in wire_dots] == [
                    codecs.red_dot_to_dict(d) for d in oracle_dots
                ]
                assert tier.get_red_dots(video_id) == oracle.get_red_dots(video_id)
        finally:
            oracle.close()

    def test_batch_surface_round_trips(self, served, dota2_dataset, crowd):
        client, tier = served
        target = dota2_dataset[4]
        video_id = target.video.video_id
        client.register_video(target.video)
        # The crawler serves this id only for live channels; store the chat
        # directly so request_red_dots finds it, as a pre-crawled video would.
        tier.store_for(video_id).put_chat(video_id, list(target.chat_log.messages))
        dots = client.request_red_dots(video_id, k=3)
        assert dots == tier.request_red_dots(video_id, k=3)
        if dots:
            plays = []
            for round_index in range(3):
                plays.extend(crowd.collect_round(target.video, dots[0], round_index))
            total = client.log_interactions(video_id, plays)
            assert total == len(plays)
            assert tier.store_for(video_id).get_interactions(video_id) == plays
            updated = client.refine_video(video_id)
            assert updated == 0 or tier.latest_highlights(video_id)

    def test_healthz_and_metrics(self, served):
        client, tier = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["shards"] == tier.n_shards
        text = client.metrics()
        assert "lightor_gateway_uptime_seconds" in text
        assert 'lightor_gateway_requests_total{route="healthz"}' in text


class TestValidation:
    def test_unknown_live_session_is_a_400(self, served, dota2_dataset):
        client, _ = served
        messages = list(dota2_dataset[2].chat_log.messages[:3])
        with pytest.raises(ValidationError, match="no live session"):
            client.ingest_chat_batch("ghost", messages)

    def test_interactions_for_unknown_video_is_a_400(self, served):
        client, _ = served
        with pytest.raises(ValidationError, match="unknown video"):
            client.log_interactions("ghost", [])

    def test_body_path_video_mismatch_is_a_400(self, served, dota2_dataset):
        client, _ = served
        video = dota2_dataset[2].video
        with pytest.raises(ValidationError, match="path names channel"):
            client._request(
                "POST", "/live/other/start", codecs.video_to_dict(video)
            )

    def test_non_list_messages_is_a_400(self, served, dota2_dataset):
        client, _ = served
        target = dota2_dataset[2]
        client.start_live(target.video)
        with pytest.raises(ValidationError, match="'messages' as a JSON list"):
            client._request(
                "POST", f"/live/{target.video.video_id}/chat", {"messages": "hello"}
            )
        client.end_live(target.video.video_id, target.video.duration)

    def test_non_integer_k_is_a_400(self, served):
        client, _ = served
        with pytest.raises(ValidationError, match="not an integer"):
            client._request("GET", "/videos/v/red-dots?k=abc")

    def test_malformed_json_body_is_a_400(self, served):
        client, _ = served
        connection = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            connection.request("POST", "/videos", body=b"{not json")
            response = connection.getresponse()
            assert response.status == 400
            assert b"not valid JSON" in response.read()
        finally:
            connection.close()

    def test_unknown_route_is_a_404(self, served):
        client, _ = served
        with pytest.raises(GatewayError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_a_405(self, served):
        client, _ = served
        with pytest.raises(GatewayError) as excinfo:
            client._request("GET", "/videos/v/refine")
        assert excinfo.value.status == 405


class _BlockingService:
    """A stub front door whose one endpoint blocks until released."""

    n_shards = 1

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Event()

    def live_red_dots(self, video_id):
        self.entered.set()
        assert self.release.wait(timeout=30)
        return []


class TestOverload:
    def test_admission_budget_returns_503(self):
        service = _BlockingService()
        gateway = GatewayThread(service, max_pending=1, worker_threads=2)
        host, port = gateway.start()
        blocked = LightorClient(host, port)
        probe = LightorClient(host, port)
        try:
            worker = threading.Thread(
                target=blocked.live_red_dots, args=("v",), daemon=True
            )
            worker.start()
            assert service.entered.wait(timeout=30)
            # The budget is exhausted: admission is refused immediately …
            with pytest.raises(GatewayOverloadedError) as excinfo:
                probe.live_red_dots("v")
            assert excinfo.value.status == 503
            # … while health stays reachable and reports the saturation.
            assert probe.healthz()["in_flight"] == 1
            service.release.set()
            worker.join(timeout=30)
            assert not worker.is_alive()
            # With the slot free again the same request is served.
            assert probe.live_red_dots("v") == []
        finally:
            service.release.set()
            blocked.close()
            probe.close()
            gateway.stop()

    def test_invalid_gateway_knobs_rejected(self):
        with pytest.raises(ValidationError):
            LightorGateway(_BlockingService(), max_pending=0)
        with pytest.raises(ValidationError):
            LightorGateway(_BlockingService(), worker_threads=0)
        with pytest.raises(ValidationError):
            LightorGateway(_BlockingService(), max_pending_per_channel=0)


class _ChannelBlockingService:
    """A stub front door that blocks only the ``hot`` channel's requests."""

    n_shards = 1

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Event()

    def live_red_dots(self, video_id):
        if video_id == "hot":
            self.entered.set()
            assert self.release.wait(timeout=30)
        return []


class TestPerChannelAdmission:
    def test_hot_channel_refused_while_tail_is_served(self):
        """The fairness property: one saturated channel exhausts only its
        *own* budget — the global budget stays available for the tail."""
        service = _ChannelBlockingService()
        gateway = GatewayThread(
            service, max_pending=8, max_pending_per_channel=1, worker_threads=4
        )
        host, port = gateway.start()
        blocked = LightorClient(host, port)
        probe = LightorClient(host, port)
        try:
            worker = threading.Thread(
                target=blocked.live_red_dots, args=("hot",), daemon=True
            )
            worker.start()
            assert service.entered.wait(timeout=30)
            # The hot channel's budget is spent: its next request is refused …
            with pytest.raises(GatewayOverloadedError) as excinfo:
                probe.live_red_dots("hot")
            assert excinfo.value.status == 503
            # … while a tail channel sails through on the same gateway —
            # the whale consumed none of the global budget the tail needs.
            assert probe.live_red_dots("cold") == []
            health = probe.healthz()
            assert health["max_pending_per_channel"] == 1
            assert health["channels_in_flight"] == 1
            assert 'lightor_gateway_channel_rejected_total{channel="hot"} 1' in (
                probe.metrics()
            )
            service.release.set()
            worker.join(timeout=30)
            assert not worker.is_alive()
            # The slot frees once the in-flight request drains.
            assert probe.live_red_dots("hot") == []
            assert probe.healthz()["channels_in_flight"] == 0
        finally:
            service.release.set()
            blocked.close()
            probe.close()
            gateway.stop()

    def test_channel_extraction_covers_both_route_families(self):
        assert LightorGateway._channel_of("/live/abc/chat") == "abc"
        assert LightorGateway._channel_of("/videos/v-1/red-dots") == "v-1"
        assert LightorGateway._channel_of("/healthz") is None
        assert LightorGateway._channel_of("/videos") is None
        assert LightorGateway._channel_of("/live/abc/chat/extra") is None

    def test_budget_disabled_by_default(self):
        """Without the knob the gateway must not track channels at all."""
        service = _ChannelBlockingService()
        gateway = GatewayThread(service, worker_threads=2)
        host, port = gateway.start()
        client = LightorClient(host, port)
        try:
            assert client.live_red_dots("cold") == []
            health = client.healthz()
            assert health["max_pending_per_channel"] is None
            assert health["channels_in_flight"] == 0
        finally:
            client.close()
            gateway.stop()


class TestConcurrentIngest:
    def test_multi_channel_wire_smoke(self, served, dota2_dataset):
        """Several clients hammer different channels concurrently; the final
        state must match a sequential wire-driven run of the same batches."""
        client, tier = served
        targets = list(dota2_dataset[2:5])
        for target in targets:
            client.start_live(target.video)

        def drive(target):
            own = LightorClient(client.host, client.port)
            try:
                for chunk in _chunks(list(target.chat_log.messages[:300])):
                    own.ingest_chat_batch(target.video.video_id, chunk)
            finally:
                own.close()

        threads = [
            threading.Thread(target=drive, args=(target,), daemon=True)
            for target in targets
        ]
        errors: list[BaseException] = []
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        finals = {
            t.video.video_id: client.end_live(t.video.video_id, t.video.duration)
            for t in targets
        }
        # Sequential oracle over the same per-channel batch sequences.
        oracle = ShardedLightorService.create(
            1, tier.shards[0].initializer, live_k=K
        )
        try:
            for target in targets:
                oracle.start_live(target.video)
                for chunk in _chunks(list(target.chat_log.messages[:300])):
                    oracle.ingest_chat_batch(target.video.video_id, chunk)
            for target in targets:
                expected = oracle.end_live(target.video.video_id, target.video.duration)
                assert finals[target.video.video_id] == expected
        finally:
            oracle.close()


class TestKillRecover:
    def test_killed_server_recovers_byte_exactly(
        self, fitted_initializer, dota2_dataset, tmp_path
    ):
        """Hard-kill the gateway mid-stream; ``repro recover --end`` must land
        on the byte-identical dots of an uninterrupted run."""
        db = tmp_path / "gateway.db"
        target = dota2_dataset[2]
        video_id = target.video.video_id
        messages = list(target.chat_log.messages)
        prefix = messages[: (len(messages) // 2)]

        service = ShardedLightorService.create(
            1, fitted_initializer, backend="sqlite", db_path=db,
            live_k=K, checkpoint_every=100,
        )
        gateway = GatewayThread(service)
        host, port = gateway.start()
        client = LightorClient(host, port)
        client.start_live(target.video)
        for chunk in _chunks(prefix):
            client.ingest_chat_batch(video_id, chunk, persist=True)
        client.close()
        gateway.stop(drain=False)  # the kill: no drain, no checkpoint sweep
        for shard in service.shards:
            shard.store.close()  # release the file handles, finalize nothing

        # `repro recover` rebuilds and `--end` finalizes at the stored
        # duration (the CLI retrains the same seed-2020 model).
        assert main(["recover", "--db-path", str(db)]) == 0
        assert main(["recover", "--db-path", str(db), "--end"]) == 0

        # The uninterrupted oracle: same prefix, ended at the same duration.
        oracle = ShardedLightorService.create(1, fitted_initializer, live_k=K)
        oracle.start_live(target.video)
        for chunk in _chunks(prefix):
            oracle.ingest_chat_batch(video_id, chunk)
        expected = oracle.end_live(video_id, target.video.duration)
        oracle.close()

        reopened = SQLiteStore(shard_db_path(db, 0))
        try:
            recovered = reopened.get_red_dots(video_id)
            assert [codecs.red_dot_to_dict(d) for d in recovered] == [
                codecs.red_dot_to_dict(d) for d in expected
            ]
            assert reopened.get_session_snapshots() == {}
        finally:
            reopened.close()

    def test_drained_server_suspends_open_sessions(
        self, fitted_initializer, dota2_dataset, tmp_path
    ):
        """The SIGTERM path: drain + suspend leaves every open session
        checkpointed, and a fresh tier resumes it byte-exactly."""
        db = tmp_path / "drained.db"
        target = dota2_dataset[3]
        video_id = target.video.video_id
        messages = list(target.chat_log.messages)

        service = ShardedLightorService.create(
            2, fitted_initializer, backend="sqlite", db_path=db,
            live_k=K, checkpoint_every=100,
        )
        gateway = GatewayThread(service)
        host, port = gateway.start()
        with LightorClient(host, port) as client:
            client.start_live(target.video)
            for chunk in _chunks(messages[:300]):
                client.ingest_chat_batch(video_id, chunk, persist=True)
        gateway.stop()  # graceful drain …
        assert service.suspend() == 1  # … then checkpoint-and-release

        resumed = ShardedLightorService.create(
            2, fitted_initializer, backend="sqlite", db_path=db,
            live_k=K, checkpoint_every=100,
        )
        reports = resumed.recover_live_sessions()
        assert [r.video_id for r in reports] == [video_id]
        assert reports[0].messages_ingested == 300
        resumed.ingest_chat_batch(video_id, messages[300:], persist=True)
        final = resumed.end_live(video_id, target.video.duration)
        resumed.close()

        oracle = ShardedLightorService.create(1, fitted_initializer, live_k=K)
        oracle.start_live(target.video)
        oracle.ingest_chat_batch(video_id, messages)
        expected = oracle.end_live(video_id, target.video.duration)
        oracle.close()
        assert [codecs.red_dot_to_dict(d) for d in final] == [
            codecs.red_dot_to_dict(d) for d in expected
        ]


class TestStoredStateReads:
    def test_stored_state_reads_round_trip(self, served, dota2_dataset):
        """The GET read surface (stored dots, highlight history, latest
        highlights, interactions) must decode to the exact objects the
        shard's backend holds — it is what cluster parity checks read."""
        client, tier = served
        target = dota2_dataset[5]
        video_id = target.video.video_id
        client.start_live(target.video)
        for chunk in _chunks(list(target.chat_log.messages[:300])):
            client.ingest_chat_batch(video_id, chunk)
        client.end_live(video_id, target.video.duration)
        store = tier.store_for(video_id)
        assert client.get_red_dots(video_id) == store.get_red_dots(video_id)
        assert client.highlight_history(video_id) == store.highlight_history(video_id)
        assert client.latest_highlights(video_id) == store.latest_highlights(video_id)
        assert client.get_interactions(video_id) == store.get_interactions(video_id)
        assert client.get_interactions(video_id) == tier.get_interactions(video_id)


class TestClientTimeout:
    def test_unresponsive_server_raises_typed_timeout(self):
        """A server that accepts but never answers must surface as
        :class:`GatewayTimeoutError` (a 504 ``GatewayError``), not a bare
        socket timeout — and must NOT be retried: the request may have
        reached the service and be executing."""
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()
        client = LightorClient(host, port, timeout=0.3)
        try:
            started = time.monotonic()
            with pytest.raises(GatewayTimeoutError) as excinfo:
                client.healthz()
            elapsed = time.monotonic() - started
            # One timeout's worth of waiting, not a retry loop's.
            assert 0.2 <= elapsed < 2.0
            error = excinfo.value
            assert isinstance(error, GatewayError) and error.status == 504
            assert f"{host}:{port}" in str(error) and "0.3" in str(error)
            # The wedged connection was dropped: a later call redials
            # rather than reusing a socket with a half-sent request on it.
            assert client._connection is None
        finally:
            client.close()
            listener.close()


class TestGatewayThreadAddress:
    def test_host_and_port_properties_expose_bound_address(self, tier):
        gateway = GatewayThread(tier)
        try:
            host, port = gateway.start()
            assert (gateway.host, gateway.port) == (host, port)
            assert port > 0
        finally:
            gateway.stop()
            tier.close()


class TestBinaryWire:
    """The negotiated binary codec: parity, negotiation, caps, observability."""

    def test_binary_client_matches_json_client(self, served, dota2_dataset):
        client, _tier = served
        binary = LightorClient(client.host, client.port, wire_codec="binary")
        target = dota2_dataset[2]
        video_id = target.video.video_id
        messages = list(target.chat_log.messages)
        try:
            binary.start_live(target.video)
            events = []
            for start in range(0, len(messages), CHUNK):
                events.extend(
                    binary.ingest_chat_batch(video_id, messages[start : start + CHUNK])
                )
            # Both codecs read the same live state back identically.
            assert binary.live_red_dots(video_id) == client.live_red_dots(video_id)
            final_binary = binary.end_live(video_id, target.video.duration)
            # Replay through JSON: byte-identical event stream and dots.
            oracle = dota2_dataset[2]
            client.start_live(oracle.video.__class__(
                video_id=video_id + "-oracle",
                duration=oracle.video.duration,
                game=oracle.video.game,
                channel=oracle.video.channel,
                viewer_count=oracle.video.viewer_count,
                highlights=oracle.video.highlights,
            ))
            oracle_events = []
            remapped = [
                m.__class__(timestamp=m.timestamp, user=m.user, text=m.text)
                for m in messages
            ]
            for start in range(0, len(remapped), CHUNK):
                oracle_events.extend(
                    client.ingest_chat_batch(
                        video_id + "-oracle", remapped[start : start + CHUNK]
                    )
                )
            final_json = client.end_live(video_id + "-oracle", target.video.duration)
            assert [e.__class__.__name__ for e in events] == [
                e.__class__.__name__ for e in oracle_events
            ]
            assert [d.position for d in final_binary] == [d.position for d in final_json]
            assert [d.score for d in final_binary] == [d.score for d in final_json]
        finally:
            binary.close()

    def test_accept_negotiation(self, served):
        client, _ = served
        connection = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            # Binary Accept → binary response.
            connection.request("GET", "/healthz", headers={"Accept": wire.WIRE_CONTENT_TYPE})
            response = connection.getresponse()
            body = response.read()
            assert wire.WIRE_CONTENT_TYPE in response.getheader("Content-Type")
            assert wire.decode_frame(body)["status"] == "ok"
            # No Accept → the gateway default (json here): old clients work.
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            body = response.read()
            assert "json" in response.getheader("Content-Type")
            # Unrelated Accept → json, the answer anyone can parse.
            connection.request("GET", "/healthz", headers={"Accept": "text/html"})
            response = connection.getresponse()
            assert "json" in response.getheader("Content-Type")
            response.read()
        finally:
            connection.close()

    def test_binary_default_gateway_honours_json_accept(self, fitted_initializer):
        # A gateway defaulted to binary must still serve JSON to an explicit
        # Accept — a PR-6-era client (which now sends Accept: application/json)
        # and even header-less probes keep working against it.
        tier = ShardedLightorService.create(1, fitted_initializer, live_k=K)
        gateway = GatewayThread(tier, wire_codec="binary")
        try:
            host, port = gateway.start()
            connection = http.client.HTTPConnection(host, port, timeout=10)
            try:
                connection.request("GET", "/healthz", headers={"Accept": "application/json"})
                response = connection.getresponse()
                assert "json" in response.getheader("Content-Type")
                assert b'"status"' in response.read()
                # No preference → the configured default: binary.
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert wire.WIRE_CONTENT_TYPE in response.getheader("Content-Type")
                assert wire.decode_frame(response.read())["status"] == "ok"
            finally:
                connection.close()
            json_client = LightorClient(host, port)
            assert json_client.healthz()["status"] == "ok"
            json_client.close()
        finally:
            gateway.stop()
            tier.close()

    def test_corrupt_binary_body_is_a_400(self, served):
        client, _ = served
        blob = bytearray(wire.encode_frame({"video_id": "v", "duration": 10.0}))
        blob[-1] ^= 0xFF
        connection = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            connection.request(
                "POST", "/videos", body=bytes(blob),
                headers={"Content-Type": wire.WIRE_CONTENT_TYPE},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"not a valid binary frame" in response.read()
        finally:
            connection.close()

    def test_decoded_entity_cap_is_a_413_for_both_codecs(self, served):
        client, _ = served
        cap = 16 * 1024 * 1024
        # Binary: a small *compressed* frame declaring an over-cap decoded
        # entity must be refused before decompression — the zip-bomb hole
        # the JSON-text-length cap left open.
        over = wire.encode_frame({"x": "a" * (cap + 1024)})
        assert len(over) < cap  # compresses tiny; only raw_len is huge
        connection = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            connection.request(
                "POST", "/videos", body=over,
                headers={"Content-Type": wire.WIRE_CONTENT_TYPE},
            )
            response = connection.getresponse()
            assert response.status == 413
            response.read()
            # Boundary: just under the cap decodes (and fails validation,
            # not admission — proof it got through the cap).
            under = wire.encode_frame({"x": "a" * (cap - 4096)})
            connection.request(
                "POST", "/videos", body=under,
                headers={"Content-Type": wire.WIRE_CONTENT_TYPE},
            )
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()
        # JSON: the Content-Length check enforces the same cap — the refusal
        # comes straight off the headers (before the body is even sent), so
        # drive the socket by hand.
        sock = socket.create_connection((client.host, client.port), timeout=10)
        try:
            sock.sendall(
                b"POST /videos HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {cap + 2}\r\n\r\n".encode()
            )
            head = sock.recv(4096)
            assert b"413" in head.split(b"\r\n", 1)[0]
        finally:
            sock.close()

    def test_metrics_report_bytes_and_content_types(self, served, dota2_dataset):
        client, _ = served
        binary = LightorClient(client.host, client.port, wire_codec="binary")
        target = dota2_dataset[3]
        try:
            binary.start_live(target.video)
            binary.ingest_chat_batch(
                target.video.video_id, list(target.chat_log.messages[:32])
            )
            binary.end_live(target.video.video_id, target.video.duration)
            text = client.metrics()
        finally:
            binary.close()
        assert "lightor_gateway_bytes_in_total " in text
        assert "lightor_gateway_bytes_out_total " in text
        bytes_in = int(text.split("lightor_gateway_bytes_in_total ")[1].split("\n")[0])
        bytes_out = int(text.split("lightor_gateway_bytes_out_total ")[1].split("\n")[0])
        assert bytes_in > 0 and bytes_out > 0
        assert (
            'lightor_gateway_requests_by_content_type_total'
            f'{{content_type="{wire.WIRE_CONTENT_TYPE}"}}'
        ) in text
        # Body-less GETs are counted under "none".
        assert 'content_type="none"' in text

    def test_invalid_wire_codec_rejected(self, tier):
        with pytest.raises(ValidationError, match="unknown wire codec"):
            LightorGateway(tier, wire_codec="msgpack")
        with pytest.raises(ValidationError, match="unknown wire codec"):
            LightorClient("h", 1, wire_codec="msgpack")
        tier.close()
