"""Tests for the sharded service tier.

Two properties matter:

* **equivalence** — because every worker runs the same deterministic
  engines, a 4-shard service fed a workload returns byte-identical red dots
  and highlight records to a single-worker service fed the same workload
  (the acceptance bar of the refactor);
* **thread-safety** — interleaved live ingest and red-dot requests from a
  thread pool must not lose writes or corrupt per-channel state, because the
  per-shard locks serialize access to each worker.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.types import VideoChatLog
from repro.platform import codecs
from repro.platform.api import SimulatedStreamingAPI
from repro.platform.backends import InMemoryStore, SQLiteStore
from repro.platform.crawler import ChatCrawler
from repro.platform.service import LightorWebService
from repro.platform.sharding import ConsistentHashRing, ShardedLightorService, shard_db_path
from repro.simulation.chat import interleave_live
from repro.simulation.crowd import CrowdSimulator
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError

K = 5
N_CHANNELS = 4
MESSAGES_PER_CHANNEL = 600
INTERACTION_CHUNK_EVERY = 200  # ingest one interaction chunk per this many messages


class TestConsistentHashRing:
    def test_deterministic_across_instances(self):
        first = ConsistentHashRing(4)
        second = ConsistentHashRing(4)
        keys = [f"video-{i}" for i in range(100)]
        assert [first.shard_for(k) for k in keys] == [second.shard_for(k) for k in keys]

    def test_spreads_keys_over_all_shards(self):
        ring = ConsistentHashRing(4)
        owners = {ring.shard_for(f"dota2-{i:04d}") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_adding_a_shard_moves_few_keys(self):
        keys = [f"video-{i}" for i in range(400)]
        four, five = ConsistentHashRing(4), ConsistentHashRing(5)
        moved = sum(1 for k in keys if four.shard_for(k) != five.shard_for(k))
        # Consistent hashing moves ~1/5 of the keys; rehashing would move ~4/5.
        assert moved < len(keys) // 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValidationError):
            ConsistentHashRing(0)
        with pytest.raises(ValidationError):
            ShardedLightorService([])

    def test_shard_db_path(self):
        assert shard_db_path("highlights.db", 2) == "highlights.shard2.db"
        assert shard_db_path("/tmp/x/h.db", 0) == "/tmp/x/h.shard0.db"


# --------------------------------------------------------------------- workload
def _workload(dataset):
    """Per-channel chat logs (truncated for speed) from the shared dataset."""
    logs = {}
    for target in dataset[1 : 1 + N_CHANNELS]:
        logs[target.video.video_id] = VideoChatLog(
            video=target.video,
            messages=target.chat_log.messages[:MESSAGES_PER_CHANNEL],
        )
    return logs


def _interaction_chunks(fitted_initializer, logs):
    """Deterministic viewer-interaction chunks per channel.

    Built once from the batch dots of each (truncated) log, so every service
    under test receives the identical sequence.
    """
    crowd = CrowdSimulator(seeds=SeedSequenceFactory(7))
    chunks = {}
    for video_id, log in logs.items():
        dots = fitted_initializer.propose(log, k=K)
        per_dot = [
            crowd.collect_round(log.video, dot, round_index)
            for dot in dots
            for round_index in range(3)
        ]
        chunks[video_id] = per_dot
    return chunks


def _drive_channel(service, log, chunks, poll=None):
    """One channel's scripted session: chat with interaction chunks woven in.

    The per-channel operation order is fixed, so any two services driving the
    same script must land in the same state regardless of how channels
    interleave across shards/threads.
    """
    video_id = log.video.video_id
    pending = list(chunks)
    for index, message in enumerate(log.messages, start=1):
        service.ingest_live_chat(video_id, [message])
        if index % INTERACTION_CHUNK_EVERY == 0 and pending:
            service.ingest_live_interactions(video_id, pending.pop(0))
            if poll is not None:
                poll(video_id)
    for chunk in pending:
        service.ingest_live_interactions(video_id, chunk)
    return service.end_live(video_id, log.video.duration)


def _single_worker(fitted_initializer):
    store = InMemoryStore()
    api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(2020))
    return LightorWebService(
        store=store,
        crawler=ChatCrawler(api=api, store=store),
        initializer=fitted_initializer,
        live_k=K,
    )


@pytest.fixture(scope="module")
def workload(dota2_dataset, fitted_initializer):
    logs = _workload(dota2_dataset)
    return logs, _interaction_chunks(fitted_initializer, logs)


@pytest.fixture(scope="module")
def single_worker_results(fitted_initializer, workload):
    """The reference: every channel driven sequentially on one worker."""
    logs, chunks = workload
    service = _single_worker(fitted_initializer)
    for log in logs.values():
        service.start_live(log.video)
    dots = {
        video_id: _drive_channel(service, log, chunks[video_id])
        for video_id, log in logs.items()
    }
    records = {vid: service.store.highlight_history(vid) for vid in logs}
    interactions = {vid: len(service.store.get_interactions(vid)) for vid in logs}
    return dots, records, interactions


def _fingerprint(objects):
    return [codecs.dumps(obj) for obj in objects]


class TestShardedParity:
    def test_four_shards_byte_identical_to_single_worker(
        self, fitted_initializer, workload, single_worker_results
    ):
        logs, chunks = workload
        expected_dots, expected_records, _ = single_worker_results

        service = ShardedLightorService.create(4, fitted_initializer, live_k=K)
        for log in logs.values():
            service.start_live(log.video)
        for video_id, log in logs.items():
            sharded_dots = _drive_channel(service, log, chunks[video_id])
            assert _fingerprint(sharded_dots) == _fingerprint(expected_dots[video_id])
            assert _fingerprint(service.highlight_history(video_id)) == _fingerprint(
                expected_records[video_id]
            )
            assert _fingerprint(service.get_red_dots(video_id)) == _fingerprint(
                expected_dots[video_id]
            )

    def test_workload_produces_highlight_records(self, single_worker_results):
        # The parity assertion above must not be vacuous: the simulated crowd
        # has to drive at least one refinement to an exact boundary.
        _, records, _ = single_worker_results
        assert any(records.values())

    def test_sqlite_backed_shards_match_memory(
        self, fitted_initializer, workload, single_worker_results, tmp_path
    ):
        logs, chunks = workload
        expected_dots, expected_records, _ = single_worker_results

        service = ShardedLightorService.create(
            4,
            fitted_initializer,
            backend="sqlite",
            db_path=tmp_path / "shards.db",
            live_k=K,
        )
        for log in logs.values():
            service.start_live(log.video)
        for video_id, log in logs.items():
            dots = _drive_channel(service, log, chunks[video_id])
            assert _fingerprint(dots) == _fingerprint(expected_dots[video_id])
        service.close()

        # The results survive the service: reopen each shard file directly.
        for video_id in logs:
            reopened = SQLiteStore(
                shard_db_path(tmp_path / "shards.db", ConsistentHashRing(4).shard_for(video_id))
            )
            assert _fingerprint(reopened.get_red_dots(video_id)) == _fingerprint(
                expected_dots[video_id]
            )
            assert _fingerprint(reopened.highlight_history(video_id)) == _fingerprint(
                expected_records[video_id]
            )
            reopened.close()


class TestShardedShutdown:
    def test_close_finalizes_open_live_sessions(
        self, fitted_initializer, workload, tmp_path
    ):
        # Shutting down mid-stream must persist every open session's results
        # through the eviction path — nothing silently dropped.
        logs, _ = workload
        service = ShardedLightorService.create(
            4, fitted_initializer, backend="sqlite", db_path=tmp_path / "down.db", live_k=K
        )
        for log in logs.values():
            service.start_live(log.video)
            for message in log.messages:
                service.ingest_live_chat(log.video.video_id, [message])
        service.close()  # no end_live calls — shutdown finalizes the sessions

        for video_id in logs:
            reopened = SQLiteStore(
                shard_db_path(tmp_path / "down.db", ConsistentHashRing(4).shard_for(video_id))
            )
            assert reopened.has_red_dots(video_id)
            assert reopened.get_red_dots(video_id)
            reopened.close()


class TestShardedCloseBestEffort:
    def test_one_failing_shard_does_not_leak_the_rest(self, fitted_initializer, workload):
        """Regression: ``close()`` used to stop at the first shard whose
        ``shutdown()`` raised, leaking every remaining shard's store and
        skipping their session finalization."""
        logs, _ = workload
        service = ShardedLightorService.create(3, fitted_initializer, live_k=K)
        for log in logs.values():
            service.start_live(log.video)
        shut_down: list[int] = []
        boom = RuntimeError("shard 0 exploded")

        def wrap(index: int, original):
            def wrapped():
                shut_down.append(index)
                if index == 0:
                    raise boom
                return original()

            return wrapped

        for index, shard in enumerate(service.shards):
            shard.shutdown = wrap(index, shard.shutdown)

        with pytest.raises(RuntimeError, match="shard 0 exploded"):
            service.close()
        # Every shard was still asked to shut down — the healthy ones
        # finalized their sessions and persisted the results.
        assert shut_down == [0, 1, 2]
        for log in logs.values():
            video_id = log.video.video_id
            if service.shard_index(video_id) != 0:
                assert service.store_for(video_id).has_red_dots(video_id)

    def test_first_of_several_errors_wins(self, fitted_initializer):
        service = ShardedLightorService.create(3, fitted_initializer)
        for index, shard in enumerate(service.shards):
            shard.shutdown = (
                lambda index=index: (_ for _ in ()).throw(RuntimeError(f"shard {index}"))
            )
        with pytest.raises(RuntimeError, match="shard 0"):
            service.close()


class TestDbPathHandling:
    """``str`` and ``Path`` database paths must behave identically."""

    def test_shard_suffixing_identical_for_str_and_path(self):
        assert shard_db_path("x/data.db", 1) == shard_db_path(Path("x/data.db"), 1)
        assert shard_db_path("data.db", 0) == "data.shard0.db"

    def test_suffixless_path_gains_only_the_shard_part(self):
        assert shard_db_path("highlights", 0) == "highlights.shard0"
        assert shard_db_path(Path("highlights"), 2) == "highlights.shard2"

    def test_memory_path_is_never_suffixed(self):
        # Suffixing ``:memory:`` would silently create a stray *file*
        # literally named ``:memory:.shard0``.
        assert shard_db_path(":memory:", 0) == ":memory:"
        assert shard_db_path(Path(":memory:"), 3) == ":memory:"

    def test_memory_db_path_tier_leaves_no_files(
        self, fitted_initializer, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        for path in (":memory:", Path(":memory:")):
            service = ShardedLightorService.create(
                2, fitted_initializer, backend="sqlite", db_path=path
            )
            assert service.db_paths() == []
            service.close()
            assert list(tmp_path.iterdir()) == []

    def test_db_paths_filters_memory_for_str_and_path(self, fitted_initializer, tmp_path):
        service = ShardedLightorService.create(
            2, fitted_initializer, backend="sqlite", db_path=tmp_path / "real.db"
        )
        assert len(service.db_paths()) == 2
        assert all(".shard" in path for path in service.db_paths())
        service.close()


class TestShardMarker:
    def test_reusing_db_path_with_other_shard_count_rejected(
        self, fitted_initializer, tmp_path
    ):
        path = tmp_path / "ring.db"
        first = ShardedLightorService.create(
            2, fitted_initializer, backend="sqlite", db_path=path
        )
        first.close()
        with pytest.raises(ValidationError, match="2-shard"):
            ShardedLightorService.create(
                4, fitted_initializer, backend="sqlite", db_path=path
            )
        # The matching shard count reopens cleanly.
        again = ShardedLightorService.create(
            2, fitted_initializer, backend="sqlite", db_path=path
        )
        again.close()


class TestShardedConcurrency:
    def test_threaded_ingest_matches_sequential_and_loses_no_writes(
        self, fitted_initializer, workload, single_worker_results
    ):
        logs, chunks = workload
        expected_dots, expected_records, expected_interactions = single_worker_results

        service = ShardedLightorService.create(4, fitted_initializer, live_k=K)
        for log in logs.values():
            service.start_live(log.video)

        def poll(video_id):
            # Red-dot requests race the ingest of every other channel.
            service.live_red_dots(video_id)

        final_dots = {}
        with ThreadPoolExecutor(max_workers=len(logs)) as pool:
            futures = {
                video_id: pool.submit(
                    _drive_channel, service, log, chunks[video_id], poll
                )
                for video_id, log in logs.items()
            }
            for video_id, future in futures.items():
                final_dots[video_id] = future.result(timeout=120)

        for video_id in logs:
            sent = sum(len(chunk) for chunk in chunks[video_id])
            stored = len(service.store_for(video_id).get_interactions(video_id))
            assert stored == sent, f"lost interaction writes for {video_id}"
            assert stored == expected_interactions[video_id]
            assert _fingerprint(final_dots[video_id]) == _fingerprint(
                expected_dots[video_id]
            )
            assert _fingerprint(service.highlight_history(video_id)) == _fingerprint(
                expected_records[video_id]
            )

        stats = service.stats()
        assert stats["shards"] == 4
        assert stats["videos"] == len(logs)
        assert stats["interactions"] == sum(expected_interactions.values())
