"""Tests for lintor, the repo-aware static analyzer (``repro lint``).

Three layers:

* **Fixture corpus** (``tests/lintor_fixtures/``): each rule fires on its
  known-bad snippet at exact locations and stays silent on the known-good
  twin.
* **Repo enforcement**: the committed baseline matches a fresh run over
  ``src/repro`` (and is empty — the debt was paid), and the guarded-by
  annotations in the real sources are live: stripping a lock from
  ``sharding.py``/``api.py``/``backends/sqlite.py`` makes R002 fire.
* **CLI**: exit codes for clean runs, new findings, stale baselines, and
  the shrink-only ``--write-baseline`` refusal.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    analyze_paths,
    analyze_source,
    compare_to_baseline,
    load_baseline,
    write_baseline,
)
from repro.cli import main
from repro.utils.validation import ValidationError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lintor_fixtures"
BASELINE = REPO_ROOT / "tools" / "lintor_baseline.json"


def analyze_fixture(name: str, relpath: str | None = None):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return analyze_source(source, relpath or name)


def rule_lines(findings, rule: str) -> list[int]:
    return [f.line for f in findings if f.rule == rule]


class TestRuleFixtures:
    """Each rule fires on its bad fixture at exact lines, never on the good."""

    def test_r001_event_loop_blocking(self):
        findings = analyze_fixture("r001_bad.py")
        assert rule_lines(findings, "R001") == [10, 11, 12, 14, 17]
        assert analyze_fixture("r001_good.py") == []

    def test_r001_messages_carry_fixits(self):
        findings = analyze_fixture("r001_bad.py")
        assert any("asyncio.sleep" in f.fixit for f in findings)
        assert any("run_in_executor" in f.fixit for f in findings)

    def test_r002_guarded_by(self):
        findings = analyze_fixture("r002_bad.py")
        assert rule_lines(findings, "R002") == [13, 17, 20, 29]
        assert analyze_fixture("r002_good.py") == []

    def test_r002_distinguishes_lock_and_loop_guards(self):
        findings = analyze_fixture("r002_bad.py")
        by_line = {f.line: f.message for f in findings}
        assert "guarded-by _lock" in by_line[13]
        assert "guarded-by event-loop" in by_line[20]
        assert "handed to a thread/executor" in by_line[29]

    def test_r003_strict_json(self):
        # Analyzed under a wire-facing relpath so the loads clause applies.
        findings = analyze_fixture("r003_bad.py", "platform/client.py")
        assert rule_lines(findings, "R003") == [12, 16, 20, 24]
        assert analyze_fixture("r003_good.py", "platform/client.py") == []

    def test_r003_loads_clause_is_wire_scoped(self):
        # The same lax loads outside a wire-facing module only trips the
        # dumps clause — raw loads of trusted local data is not the target.
        findings = analyze_fixture("r003_bad.py", "simulation/chat.py")
        assert rule_lines(findings, "R003") == [12, 16, 20]

    def test_r004_typed_errors(self):
        findings = analyze_fixture("r004_bad.py", "platform/r004_bad.py")
        assert rule_lines(findings, "R004") == [9, 15, 22]
        assert analyze_fixture("r004_good.py", "platform/r004_good.py") == []

    def test_r004_scope_is_platform_and_loadgen(self):
        assert analyze_fixture("r004_bad.py", "loadgen/r004_bad.py") != []
        assert analyze_fixture("r004_bad.py", "core/r004_bad.py") == []

    def test_r005_resource_safety(self):
        findings = analyze_fixture("r005_bad.py")
        assert rule_lines(findings, "R005") == [8, 13, 18]
        assert analyze_fixture("r005_good.py") == []

    def test_r006_frame_versioning(self):
        findings = analyze_fixture("r006_bad.py")
        assert rule_lines(findings, "R006") == [3, 4, 14]
        assert analyze_fixture("r006_good.py") == []

    def test_syntax_error_is_an_r000_finding(self):
        findings = analyze_source("def broken(:\n", "broken.py")
        assert [f.rule for f in findings] == ["R000"]
        assert "does not parse" in findings[0].message


class TestPragmas:
    def test_disable_with_reason_suppresses(self):
        findings = analyze_fixture("r000_pragma.py")
        # Line 19's pragma carries a reason: its R003 is suppressed and no
        # R000 is emitted for it.
        assert 19 not in rule_lines(findings, "R003")
        assert 19 not in rule_lines(findings, "R000")

    def test_disable_without_reason_is_r000_and_does_not_suppress(self):
        findings = analyze_fixture("r000_pragma.py")
        assert rule_lines(findings, "R000") == [7, 11, 15]
        # The malformed pragmas suppress nothing: the R003s still fire.
        assert rule_lines(findings, "R003") == [7, 11, 15]

    def test_disable_only_covers_named_rules(self):
        source = (
            "import json\n"
            "def f(p):\n"
            "    return json.dumps(p)  # lintor: disable=R001 reason=wrong rule\n"
        )
        findings = analyze_source(source, "x.py")
        assert rule_lines(findings, "R003") == [3]


class TestRepoEnforcement:
    """The analyzer is live against the real sources, not just fixtures."""

    def test_repo_is_clean_and_baseline_fresh(self):
        findings = analyze_paths([REPO_ROOT / "src" / "repro"], REPO_ROOT)
        baseline = load_baseline(BASELINE)
        delta = compare_to_baseline(findings, baseline)
        assert delta.new == [], [f.render() for f in delta.new]
        assert delta.stale == [], [f.render() for f in delta.stale]

    def test_committed_baseline_is_empty(self):
        # Every finding the initial sweep surfaced was fixed, not baselined;
        # the ratchet starts (and should stay) at zero.
        assert load_baseline(BASELINE) == []

    @pytest.mark.parametrize(
        "relpath, lock",
        [
            ("src/repro/platform/placement.py", "_lock"),
            ("src/repro/platform/api.py", "_lock"),
            ("src/repro/platform/backends/sqlite.py", "_lock"),
        ],
    )
    def test_guarded_by_annotations_are_enforced(self, relpath, lock):
        """Stripping the lock from the real source must make R002 fire —
        proof the annotations guard actual accesses, not dead comments."""
        source = (REPO_ROOT / relpath).read_text(encoding="utf-8")
        assert analyze_source(source, relpath) == []
        broken = source.replace(f"with self.{lock}:", "if True:")
        broken = broken.replace(f"with self.{lock}, ", "with ")
        assert broken != source, f"{relpath} never takes {lock}"
        assert rule_lines(analyze_source(broken, relpath), "R002") != []

    def test_server_counters_are_loop_confined(self):
        """Un-marking a loop-confined reader must make R002 fire."""
        relpath = "src/repro/platform/server.py"
        source = (REPO_ROOT / relpath).read_text(encoding="utf-8")
        assert analyze_source(source, relpath) == []
        broken = source.replace("# runs-on: event-loop", "")
        assert broken != source
        assert rule_lines(analyze_source(broken, relpath), "R002") != []


class TestBaseline:
    def _finding_dict(self, line=3):
        return {
            "rule": "R003",
            "path": "x.py",
            "line": line,
            "col": 11,
            "message": "lax dumps",
        }

    def test_round_trip_and_compare(self, tmp_path):
        source = "import json\ndef f(p):\n    return json.dumps(p)\n"
        findings = analyze_source(source, "x.py")
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        assert compare_to_baseline(findings, load_baseline(path)).clean

    def test_new_and_stale_detection(self, tmp_path):
        source = "import json\ndef f(p):\n    return json.dumps(p)\n"
        findings = analyze_source(source, "x.py")
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        baseline = load_baseline(path)
        delta = compare_to_baseline([], baseline)
        assert delta.new == [] and len(delta.stale) == 1
        moved = analyze_source("import json\n\ndef f(p):\n    return json.dumps(p)\n", "x.py")
        delta = compare_to_baseline(moved, baseline)
        assert len(delta.new) == 1 and len(delta.stale) == 1

    def test_write_refuses_to_grow(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": []}))
        source = "import json\ndef f(p):\n    return json.dumps(p)\n"
        findings = analyze_source(source, "x.py")
        with pytest.raises(ValidationError, match="refusing to grow"):
            write_baseline(path, findings)
        # Shrinking (here: staying empty) is always allowed.
        write_baseline(path, [])
        assert load_baseline(path) == []

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]")
        with pytest.raises(ValidationError, match="version"):
            load_baseline(path)
        path.write_text(json.dumps({"version": 1, "findings": [{"rule": "R003"}]}))
        with pytest.raises(ValidationError, match="missing key"):
            load_baseline(path)


class TestLintCli:
    def test_lint_clean_repo(self, capsys):
        assert main(["lint"]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_lint_against_committed_baseline(self, capsys):
        assert main(["lint", "--baseline", str(BASELINE)]) == 0
        assert "all baselined" in capsys.readouterr().out

    def test_lint_rules_catalogue(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert code in out

    def test_lint_reports_findings_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import json\ndef f(p):\n    return json.dumps(p)\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R003" in out and "1 finding(s)" in out

    def test_lint_new_finding_fails_against_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import json\ndef f(p):\n    return json.dumps(p)\n")
        assert main(["lint", str(bad), "--baseline", str(BASELINE)]) == 1
        out = capsys.readouterr().out
        assert "NEW" in out and "lint failed" in out

    def test_lint_stale_baseline_fails(self, tmp_path, capsys):
        stale = tmp_path / "baseline.json"
        stale.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {
                            "rule": "R003",
                            "path": "gone.py",
                            "line": 1,
                            "col": 0,
                            "message": "was fixed",
                        }
                    ],
                }
            )
        )
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean), "--baseline", str(stale)]) == 1
        assert "STALE" in capsys.readouterr().out

    def test_lint_missing_path_errors(self, capsys):
        assert main(["lint", "no/such/dir"]) == 1
        assert "no such path" in capsys.readouterr().out

    def test_write_baseline_refuses_growth(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import json\ndef f(p):\n    return json.dumps(p)\n")
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 1, "findings": []}))
        assert main(["lint", str(bad), "--write-baseline", str(target)]) == 1
        assert "refusing to grow" in capsys.readouterr().out

    def test_help_mentions_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "--baseline" in out and "--write-baseline" in out
