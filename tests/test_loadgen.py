"""Tests for the load-generation subsystem (workload, driver, metrics)."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen import (
    LatencyRecorder,
    LoadGenerator,
    LoadWorkload,
    WorkloadSpec,
    merge_recorders,
    run_load,
    zipf_weights,
)
from repro.loadgen.metrics import LadderEntry
from repro.platform.sharding import ShardedLightorService
from repro.utils.validation import ValidationError

SMALL = WorkloadSpec(channels=3, viewers=45, duration=900.0, batch_size=32, seed=11)

# ``fitted_initializer`` comes from the session-scoped fixture in conftest.py.


@pytest.fixture(scope="module")
def small_workload():
    return LoadWorkload.from_spec(SMALL)


class TestZipfWeights:
    def test_normalised_and_monotone(self):
        weights = zipf_weights(8, 1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zero_exponent_is_uniform(self):
        assert np.allclose(zipf_weights(5, 0.0), 0.2)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValidationError):
            zipf_weights(3, -1.0)


class TestWorkloadSynthesis:
    def test_deterministic_per_spec(self, small_workload):
        again = LoadWorkload.from_spec(SMALL)
        assert [p.video.video_id for p in again.plans] == [
            p.video.video_id for p in small_workload.plans
        ]
        assert again.total_chat == small_workload.total_chat
        assert again.total_plays == small_workload.total_plays
        first = small_workload.batches()
        second = again.batches()
        assert [(b.kind, b.video_id, len(b.events)) for b in first] == [
            (b.kind, b.video_id, len(b.events)) for b in second
        ]

    def test_channel_ids_do_not_collide_with_datasets(self, small_workload):
        for plan in small_workload.plans:
            assert int(plan.video.video_id.split("-")[1]) >= 1000

    def test_zipf_skews_viewers_to_head_channels(self):
        workload = LoadWorkload.from_spec(
            WorkloadSpec(channels=4, viewers=400, duration=900.0, zipf_exponent=1.5, seed=3)
        )
        viewers = [plan.viewers for plan in workload.plans]
        assert viewers[0] > viewers[-1]

    def test_stretch_extends_short_videos(self):
        stretched = LoadWorkload.from_spec(
            WorkloadSpec(channels=2, viewers=20, duration=30000.0, stretch=True, seed=5)
        )
        assert all(plan.duration == 30000.0 for plan in stretched.plans)

    def test_duration_caps_chat_and_plays(self, small_workload):
        for plan in small_workload.plans:
            assert plan.duration <= SMALL.duration
            assert all(m.timestamp < plan.duration for m in plan.chat)
            assert all(e.timestamp < plan.duration for e in plan.plays)


class TestBatchChunking:
    def test_batches_respect_size_and_kind(self, small_workload):
        for batch in small_workload.batches():
            assert batch.kind in ("chat", "plays")
            assert 1 <= len(batch.events) <= SMALL.batch_size

    def test_per_kind_order_preserved_within_channel(self, small_workload):
        for plan in small_workload.plans:
            vid = plan.video.video_id
            chat = [
                event
                for batch in small_workload.batches()
                if batch.video_id == vid and batch.kind == "chat"
                for event in batch.events
            ]
            assert chat == list(plan.chat)
            plays = [
                event
                for batch in small_workload.batches()
                if batch.video_id == vid and batch.kind == "plays"
                for event in batch.events
            ]
            assert plays == list(plan.plays)

    def test_batch_size_one_is_per_event_traffic(self):
        workload = LoadWorkload.from_spec(SMALL).rebatched(1)
        assert all(len(batch.events) == 1 for batch in workload.batches())
        assert sum(len(b.events) for b in workload.batches()) == workload.total_events

    def test_rebatched_shares_plans(self, small_workload):
        rebatched = small_workload.rebatched(128)
        assert rebatched.plans is small_workload.plans
        assert rebatched.spec.batch_size == 128
        assert small_workload.spec.batch_size == SMALL.batch_size

    def test_global_order_is_by_arrival(self, small_workload):
        arrivals = [batch.arrival for batch in small_workload.batches()]
        assert arrivals == sorted(arrivals)


class TestDriver:
    def test_run_load_reports_and_oracle_passes(self, fitted_initializer, small_workload):
        report = run_load(
            SMALL, fitted_initializer, shards=2, workers=2, workload=small_workload
        )
        assert report.total_events == small_workload.total_events
        assert report.oracle_checked
        assert report.divergences == []
        assert set(report.stages) >= {"chat", "open", "close"}
        assert report.events_per_sec > 0
        payload = report.to_dict()
        assert payload["shards"] == 2 and payload["divergences"] == []
        assert "0 divergences" in report.describe()

    def test_outcomes_identical_across_worker_counts(self, fitted_initializer, small_workload):
        """Thread scheduling must never leak into the persisted results."""
        fingerprints = []
        for workers in (1, 3):
            service = ShardedLightorService.create(
                2, fitted_initializer, max_live_sessions=SMALL.channels
            )
            report = LoadGenerator(small_workload, workers=workers).drive(service)
            fingerprints.append(
                {vid: outcome.fingerprint for vid, outcome in report.outcomes.items()}
            )
        assert fingerprints[0] == fingerprints[1]

    def test_worker_failure_fails_the_run(self, fitted_initializer, small_workload):
        """A dead worker must not produce a success report over partial traffic."""
        service = ShardedLightorService.create(
            1, fitted_initializer, max_live_sessions=SMALL.channels
        )
        boom = RuntimeError("backend went away")

        def exploding(video_id, messages, persist=False):
            raise boom

        service.ingest_chat_batch = exploding
        with pytest.raises(RuntimeError, match="backend went away"):
            LoadGenerator(small_workload, workers=2).drive(service)

    def test_channels_without_traffic_still_close(self, fitted_initializer):
        """A channel whose events were all filtered out must still open/close."""
        from dataclasses import replace

        workload = LoadWorkload.from_spec(
            WorkloadSpec(channels=2, viewers=4, duration=600.0, batch_size=8, seed=9)
        )
        # Strip every event from one channel: zero batches for it.
        idle, busy = workload.plans[0], workload.plans[1]
        workload.plans[0] = replace(idle, chat=(), plays=())
        assert workload.plans[0].total_events == 0 and busy.total_events > 0
        report = run_load(
            workload.spec, fitted_initializer, shards=1, workers=2, workload=workload
        )
        assert report.divergences == []
        assert len(report.outcomes) == 2
        assert report.outcomes[idle.video.video_id].final_dots == 0

    def test_http_transport_is_byte_identical_to_inproc(
        self, fitted_initializer, small_workload
    ):
        """The tentpole acceptance bar: the same workload driven over the
        wire must persist byte-identical red dots and highlight records."""
        inproc = run_load(
            SMALL, fitted_initializer, shards=2, workers=2, workload=small_workload
        )
        wire = run_load(
            SMALL, fitted_initializer, shards=2, workers=2, workload=small_workload,
            transport="http",
        )
        assert wire.transport == "http" and inproc.transport == "inproc"
        assert wire.oracle_checked and wire.divergences == []
        assert {v: o.fingerprint for v, o in wire.outcomes.items()} == {
            v: o.fingerprint for v, o in inproc.outcomes.items()
        }
        assert "transport http" in wire.describe()
        assert wire.to_dict()["transport"] == "http"

    def test_binary_wire_codec_is_byte_identical_to_json(
        self, fitted_initializer, small_workload
    ):
        """The codec acceptance bar: switching the wire encoding must not
        change a single persisted byte — fingerprints are the oracle."""
        json_run = run_load(
            SMALL, fitted_initializer, shards=2, workers=2, workload=small_workload,
            transport="http",
        )
        binary = run_load(
            SMALL, fitted_initializer, shards=2, workers=2, workload=small_workload,
            transport="http", wire_codec="binary",
        )
        assert binary.wire_codec == "binary" and json_run.wire_codec == "json"
        assert binary.oracle_checked and binary.divergences == []
        assert {v: o.fingerprint for v, o in binary.outcomes.items()} == {
            v: o.fingerprint for v, o in json_run.outcomes.items()
        }
        assert "codec binary" in binary.describe()
        assert binary.to_dict()["wire_codec"] == "binary"

    def test_unknown_transport_rejected(self, fitted_initializer, small_workload):
        service = ShardedLightorService.create(1, fitted_initializer)
        try:
            with pytest.raises(ValidationError, match="transport"):
                LoadGenerator(small_workload, workers=1).drive(
                    service, transport="telnet"
                )
        finally:
            service.close()

    def test_wire_codec_rejected_on_inproc_transport(
        self, fitted_initializer, small_workload
    ):
        service = ShardedLightorService.create(1, fitted_initializer)
        try:
            with pytest.raises(ValidationError, match="wire"):
                LoadGenerator(small_workload, workers=1).drive(
                    service, wire_codec="binary"
                )
            with pytest.raises(ValidationError, match="wire codec"):
                LoadGenerator(small_workload, workers=1).drive(
                    service, transport="http", wire_codec="msgpack"
                )
        finally:
            service.close()

    def test_sqlite_backend_run(self, fitted_initializer, small_workload, tmp_path):
        report = run_load(
            SMALL,
            fitted_initializer,
            shards=2,
            workers=2,
            backend="sqlite",
            db_path=tmp_path / "load.db",
            workload=small_workload,
        )
        assert report.divergences == []
        assert (tmp_path / "load.shard0.db").exists()


class TestWorkloadDeterminismProperty:
    """Property-based pin on the repo's foundational loadgen invariant:
    the *event stream* a seed produces is a pure function of the spec's
    traffic knobs — batch size chunks it and workers drive it, but neither
    may change a single byte of any channel's ordered events."""

    @staticmethod
    def _streams(workload):
        return {
            (plan.video.video_id, kind): tuple(
                event
                for batch in workload.batches()
                if batch.video_id == plan.video.video_id and batch.kind == kind
                for event in batch.events
            )
            for plan in workload.plans
            for kind in ("chat", "plays")
        }

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        channels=st.integers(min_value=1, max_value=3),
        viewers=st.integers(min_value=2, max_value=12),
        batch_sizes=st.tuples(
            st.integers(min_value=1, max_value=64),
            st.integers(min_value=1, max_value=64),
        ),
    )
    def test_same_seed_same_stream_regardless_of_chunking(
        self, seed, channels, viewers, batch_sizes
    ):
        spec = WorkloadSpec(
            channels=channels,
            viewers=viewers,
            duration=300.0,
            batch_size=batch_sizes[0],
            seed=seed,
        )
        workload = LoadWorkload.from_spec(spec)
        again = LoadWorkload.from_spec(spec)
        # Same spec ⇒ byte-identical plans *and* batch stream.
        assert self._streams(again) == self._streams(workload)
        assert [
            (b.kind, b.video_id, b.arrival, b.sequence, b.events)
            for b in again.batches()
        ] == [
            (b.kind, b.video_id, b.arrival, b.sequence, b.events)
            for b in workload.batches()
        ]
        # Re-chunking moves batch boundaries, never events or their order.
        rebatched = workload.rebatched(batch_sizes[1])
        assert self._streams(rebatched) == self._streams(workload)
        # And the streams are exactly the plans, whatever the chunking.
        for plan in workload.plans:
            vid = plan.video.video_id
            assert self._streams(rebatched)[(vid, "chat")] == plan.chat
            assert self._streams(rebatched)[(vid, "plays")] == plan.plays


class TestMetrics:
    def test_merge_recorders_percentiles(self):
        first, second = LatencyRecorder(), LatencyRecorder()
        for value in (0.001, 0.002, 0.003):
            first.record("chat", value, events=10)
        second.record("chat", 0.004, events=10)
        second.record("plays", 0.005, events=2)
        stats = merge_recorders([first, second])
        assert stats["chat"].calls == 4
        assert stats["chat"].events == 40
        assert stats["chat"].seconds == pytest.approx(0.010)
        assert stats["chat"].events_per_sec == pytest.approx(4000.0)
        assert stats["plays"].p50_ms == pytest.approx(5.0)
        assert stats["chat"].max_ms == pytest.approx(4.0)

    def test_merge_of_nothing_is_empty(self):
        assert merge_recorders([]) == {}
        assert merge_recorders([LatencyRecorder(), LatencyRecorder()]) == {}

    def test_empty_stage_reports_zeros_not_nan(self):
        """A stage entry with zero recorded calls (a worker died before its
        first call) must stay JSON-safe — ``BENCH_load.json`` is written
        with ``allow_nan=False``, so a NaN percentile would reject the
        whole report."""
        recorder = LatencyRecorder()
        recorder.stages()["dead"] = LadderEntry(latencies=[], events=7)
        stats = merge_recorders([recorder])
        entry = stats["dead"]
        assert entry.calls == 0 and entry.events == 7
        assert (entry.p50_ms, entry.p95_ms, entry.p99_ms, entry.max_ms) == (
            0.0, 0.0, 0.0, 0.0,
        )
        assert entry.events_per_sec == 0.0
        json.dumps(entry.to_dict(), allow_nan=False)

    def test_single_event_stage_is_degenerate_but_sane(self):
        recorder = LatencyRecorder()
        recorder.record("open", 0.002, events=1)
        entry = merge_recorders([recorder])["open"]
        assert entry.calls == 1
        assert entry.p50_ms == entry.p95_ms == entry.p99_ms == entry.max_ms
        assert entry.p50_ms == pytest.approx(2.0)
        json.dumps(entry.to_dict(), allow_nan=False)

    def test_zero_duration_stage_reports_zero_rate_not_inf(self):
        """Calls under the clock's resolution: rate must be 0.0, not inf
        (inf is not valid JSON either)."""
        recorder = LatencyRecorder()
        recorder.record("close", 0.0, events=5)
        recorder.record("close", 0.0, events=5)
        entry = merge_recorders([recorder])["close"]
        assert entry.seconds == 0.0
        assert entry.events_per_sec == 0.0
        json.dumps(entry.to_dict(), allow_nan=False)

    @settings(max_examples=25, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_percentiles_are_monotone(self, samples):
        recorder = LatencyRecorder()
        for value in samples:
            recorder.record("chat", value)
        entry = merge_recorders([recorder])["chat"]
        assert entry.p50_ms <= entry.p95_ms <= entry.p99_ms <= entry.max_ms
        json.dumps(entry.to_dict(), allow_nan=False)
