"""Tests for the versioned trace record/replay format (``loadgen/trace.py``).

Three properties matter:

* **round-trip exactness** — writing a workload and reading it back must
  reproduce every batch, every event and every reconstructed channel plan
  byte-for-byte (the trace *is* the workload, not a summary of it);
* **loud refusal** — any trace this reader does not fully understand (bad
  magic, unknown version, truncation, corruption, unknown record kinds)
  must raise a typed :class:`TraceFormatError`, never decode partially;
* **the replay gate** — replaying a recorded trace through any transport,
  codec, shard or worker count must land fingerprints byte-identical to
  the recording, and a tampered fingerprint must be caught.
"""

from __future__ import annotations

import dataclasses
import pathlib

import pytest

from repro.loadgen import (
    LoadWorkload,
    ReplayWorkload,
    TraceFormatError,
    WorkloadSpec,
    read_trace,
    replay_trace,
    run_load,
    write_trace,
)
from repro.loadgen.trace import TRACE_MAGIC, TRACE_VERSION, _frame
from repro.utils.validation import ValidationError

TINY = WorkloadSpec(channels=2, viewers=10, duration=300.0, batch_size=16, seed=7)


def _batch_key(batch):
    return (batch.kind, batch.video_id, batch.arrival, batch.sequence, batch.events)


@pytest.fixture(scope="module")
def tiny_workload():
    return LoadWorkload.from_spec(TINY)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory, fitted_initializer, tiny_workload):
    """A trace of a real run, fingerprints armed — plus the run's report."""
    report = run_load(
        TINY, fitted_initializer, shards=2, workers=2, workload=tiny_workload
    )
    assert report.divergences == []
    path = tmp_path_factory.mktemp("traces") / "tiny.trace"
    written = write_trace(
        path,
        tiny_workload,
        fingerprints={v: o.fingerprint for v, o in report.outcomes.items()},
        transport=report.transport,
        wire_codec=report.wire_codec,
        shards=report.shards,
    )
    assert written == path.stat().st_size
    return path, report


class TestRoundTrip:
    def test_batches_and_spec_survive_byte_for_byte(self, recorded, tiny_workload):
        path, _ = recorded
        trace = read_trace(path)
        assert trace.spec == TINY
        original = tiny_workload.batches()
        assert [_batch_key(b) for b in trace.batches] == [
            _batch_key(b) for b in original
        ]
        assert trace.total_events == tiny_workload.total_events

    def test_plans_reconstructed_exactly_from_batches(self, recorded, tiny_workload):
        """The trace stores no plan event streams — they must come back
        identical from the recorded batch order alone."""
        path, _ = recorded
        trace = read_trace(path)
        assert len(trace.plans) == len(tiny_workload.plans)
        for rebuilt, original in zip(trace.plans, tiny_workload.plans):
            assert rebuilt.video == original.video
            assert rebuilt.start_offset == original.start_offset
            assert rebuilt.duration == original.duration
            assert rebuilt.viewers == original.viewers
            assert rebuilt.chat == original.chat
            assert rebuilt.plays == original.plays

    def test_fingerprint_trailer_survives(self, recorded):
        path, report = recorded
        trace = read_trace(path)
        assert trace.fingerprints == {
            v: o.fingerprint for v, o in report.outcomes.items()
        }
        assert trace.transport == report.transport
        assert trace.wire_codec == report.wire_codec
        assert trace.shards == report.shards

    def test_trace_without_fingerprints_reads_with_defaults(
        self, tmp_path, tiny_workload
    ):
        path = tmp_path / "bare.trace"
        write_trace(path, tiny_workload)
        trace = read_trace(path)
        assert trace.fingerprints == {}
        assert (trace.transport, trace.wire_codec, trace.shards) == ("inproc", "json", 1)

    def test_replay_workload_refuses_rechunking(self, recorded):
        path, _ = recorded
        workload = read_trace(path).workload()
        assert isinstance(workload, ReplayWorkload)
        assert [_batch_key(b) for b in workload.batches()] == [
            _batch_key(b) for b in read_trace(path).batches
        ]
        with pytest.raises(ValidationError, match="re-chunked"):
            workload.rebatched(8)


class TestFormatRejection:
    def test_empty_and_short_files_refused(self, tmp_path):
        path = tmp_path / "x.trace"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="not a trace file"):
            read_trace(path)
        path.write_bytes(b"LT")
        with pytest.raises(TraceFormatError, match="not a trace file"):
            read_trace(path)

    def test_bad_magic_refused(self, recorded, tmp_path):
        source, _ = recorded
        blob = source.read_bytes()
        path = tmp_path / "bad_magic.trace"
        path.write_bytes(b"NOPE" + blob[len(TRACE_MAGIC):])
        with pytest.raises(TraceFormatError, match="bad trace magic"):
            read_trace(path)

    def test_unknown_version_refused(self, recorded, tmp_path):
        source, _ = recorded
        blob = bytearray(source.read_bytes())
        blob[len(TRACE_MAGIC)] = TRACE_VERSION + 1
        path = tmp_path / "future.trace"
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="unsupported trace version"):
            read_trace(path)

    def test_truncation_refused(self, recorded, tmp_path):
        source, _ = recorded
        blob = source.read_bytes()
        path = tmp_path / "cut.trace"
        # Cut mid-frame: the declared length outruns the file.
        path.write_bytes(blob[: len(blob) - 10])
        with pytest.raises(TraceFormatError, match="truncated trace"):
            read_trace(path)
        # Cut mid-length-prefix.
        path.write_bytes(blob + b"\x00\x00")
        with pytest.raises(TraceFormatError, match="truncated trace"):
            read_trace(path)

    def test_corrupt_frame_body_refused(self, recorded, tmp_path):
        """A flipped byte inside a frame must trip the wire codec's CRC."""
        source, _ = recorded
        blob = bytearray(source.read_bytes())
        blob[-5] ^= 0xFF
        path = tmp_path / "flip.trace"
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="corrupt trace frame"):
            read_trace(path)

    def test_unknown_record_kind_refused(self, recorded, tmp_path):
        """The versioning rule: a reader refuses what it cannot replay."""
        source, _ = recorded
        path = tmp_path / "future_record.trace"
        path.write_bytes(source.read_bytes() + _frame({"record": "telemetry-v9"}))
        with pytest.raises(TraceFormatError, match="unknown trace record kind"):
            read_trace(path)

    def test_untagged_frame_refused(self, recorded, tmp_path):
        source, _ = recorded
        path = tmp_path / "untagged.trace"
        path.write_bytes(source.read_bytes() + _frame({"hello": "world"}))
        with pytest.raises(TraceFormatError, match="not a tagged record"):
            read_trace(path)

    def test_missing_header_refused(self, tmp_path):
        path = tmp_path / "headless.trace"
        path.write_bytes(
            TRACE_MAGIC + bytes([TRACE_VERSION]) + _frame({"record": "fingerprints",
            "fingerprints": {}, "transport": "inproc", "wire_codec": "json",
            "shards": 1})
        )
        with pytest.raises(TraceFormatError, match="no header record"):
            read_trace(path)


class TestGoldenCorpus:
    """Replay the committed trace corpus against its recorded fingerprints.

    This is the format's compatibility contract in executable form: a
    change to the trace layout, to workload synthesis or to scoring makes
    these replays diverge — at which point either the change is a bug, or
    it is intentional and ``TRACE_VERSION`` must be bumped and the corpus
    regenerated via ``tools/make_trace_corpus.py`` (see the versioning
    rule in ``loadgen/trace.py``).
    """

    CORPUS_DIR = pathlib.Path(__file__).parent / "traces"

    @pytest.fixture(scope="class")
    def cli_initializer(self):
        """The model exactly as ``repro load`` trains it (the corpus
        recorder mirrors this — conftest's fixture uses a different
        config, so it cannot reproduce the committed fingerprints)."""
        from repro import LightorConfig
        from repro.core.initializer.initializer import HighlightInitializer
        from repro.datasets import DatasetSpec, build_dataset

        dataset = build_dataset(DatasetSpec.dota2(size=1, seed=2020))
        initializer = HighlightInitializer(config=LightorConfig())
        initializer.fit([dataset[0].training_pair])
        return initializer

    def test_corpus_is_present_and_armed(self):
        traces = sorted(self.CORPUS_DIR.glob("*.trace"))
        assert [p.name for p in traces] == ["flash-crowd.trace", "steady.trace"]
        for path in traces:
            trace = read_trace(path)
            assert trace.fingerprints, f"{path.name} recorded without fingerprints"
            assert trace.spec.seed == 2020, "corpus must use the CLI's model seed"

    @pytest.mark.parametrize("stem", ["steady", "flash-crowd"])
    def test_golden_replay_reproduces_committed_fingerprints(
        self, stem, cli_initializer
    ):
        trace = read_trace(self.CORPUS_DIR / f"{stem}.trace")
        result = replay_trace(
            trace, cli_initializer, shards=2, workers=2, oracle=False
        )
        assert result.ok, (
            f"golden corpus replay diverged on {result.mismatches or result.missing} "
            "— if this change to trace layout / workload synthesis / scoring is "
            "intentional, bump TRACE_VERSION (layout) and regenerate the corpus "
            "with tools/make_trace_corpus.py"
        )
        assert result.checked == trace.spec.channels


class TestReplayGate:
    def test_replay_reproduces_recording_across_shards_and_workers(
        self, recorded, fitted_initializer
    ):
        """The recording ran on 2 shards / 2 workers; replaying on a
        different topology must still land the same bytes."""
        path, _ = recorded
        result = replay_trace(
            read_trace(path), fitted_initializer, shards=1, workers=3
        )
        assert result.ok
        assert result.checked == TINY.channels
        assert result.mismatches == [] and result.missing == []
        assert result.report.divergences == []
        assert "byte-identical to the recording" in result.describe()

    def test_replay_over_http_binary_codec(self, recorded, fitted_initializer):
        """Fingerprints are transport- and codec-blind: the wire path with
        the binary codec must reproduce an inproc recording."""
        path, _ = recorded
        result = replay_trace(
            read_trace(path), fitted_initializer, shards=2, workers=2,
            transport="http", wire_codec="binary",
        )
        assert result.ok
        assert result.report.transport == "http"
        assert result.report.wire_codec == "binary"

    def test_tampered_fingerprint_is_caught(self, recorded, fitted_initializer):
        path, _ = recorded
        trace = read_trace(path)
        victim = sorted(trace.fingerprints)[0]
        forged = dict(trace.fingerprints)
        forged[victim] = "0" * len(forged[victim])
        forged["channel-9999"] = "deadbeef"
        tampered = dataclasses.replace(trace, fingerprints=forged)
        result = replay_trace(tampered, fitted_initializer, shards=1, workers=2)
        assert not result.ok
        assert result.mismatches == [victim]
        assert result.missing == ["channel-9999"]
        assert "REPLAY DIVERGENCE" in result.describe()
