"""Golden regression fixtures for the figure/table experiments.

The reproduction's headline numbers (Fig. 6, Fig. 7, Table I at the small
scale with fixed seeds) are snapshotted into ``tests/golden/*.json``.  Every
run must reproduce them within a small relative tolerance, so a refactor
that silently shifts the reproduction numbers — a changed window boundary, a
reordered normalisation, an off-by-one in a split — fails loudly here
instead of drifting unnoticed.

Regenerating after an *intentional* metrics change::

    LIGHTOR_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_experiments.py

then commit the updated JSON together with the change that justifies it.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("LIGHTOR_REGEN_GOLDEN") == "1"

# Experiment id → fixture name.  All run at the "small" scale, whose seeds
# are fixed by the dataset specs and the experiments' own crowd seeds.
GOLDEN_EXPERIMENTS = {
    "fig6": "fig6_small.json",
    "fig7": "fig7_small.json",
    "table1": "table1_small.json",
}

# Wall-clock measurements can never be golden.
VOLATILE_KEY_PARTS = ("seconds", "time")

RELATIVE_TOLERANCE = 1e-6
ABSOLUTE_TOLERANCE = 1e-9


def _is_volatile(key: str) -> bool:
    lowered = str(key).lower()
    return any(part in lowered for part in VOLATILE_KEY_PARTS)


def _assert_close(expected, actual, path: str) -> None:
    """Recursive tolerance-based comparison with useful failure paths."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected a mapping, got {type(actual)}"
        expected_keys = {str(k) for k in expected}
        actual_keys = {str(k) for k in actual}
        assert expected_keys == actual_keys, (
            f"{path}: keys differ (missing {expected_keys - actual_keys}, "
            f"unexpected {actual_keys - expected_keys})"
        )
        expected_by_key = {str(k): v for k, v in expected.items()}
        actual_by_key = {str(k): v for k, v in actual.items()}
        for key in expected_by_key:
            if _is_volatile(key):
                continue
            _assert_close(expected_by_key[key], actual_by_key[key], f"{path}.{key}")
    elif isinstance(expected, (list, tuple)):
        assert isinstance(actual, (list, tuple)), f"{path}: expected a sequence"
        assert len(expected) == len(actual), (
            f"{path}: length {len(actual)} != golden {len(expected)}"
        )
        for index, (expected_item, actual_item) in enumerate(zip(expected, actual)):
            _assert_close(expected_item, actual_item, f"{path}[{index}]")
    elif isinstance(expected, bool) or expected is None or isinstance(expected, str):
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"
    elif isinstance(expected, (int, float)):
        assert isinstance(actual, (int, float)), f"{path}: expected a number"
        assert math.isclose(
            float(expected),
            float(actual),
            rel_tol=RELATIVE_TOLERANCE,
            abs_tol=ABSOLUTE_TOLERANCE,
        ), f"{path}: {actual!r} != golden {expected!r}"
    else:  # pragma: no cover - golden files only hold JSON types
        raise AssertionError(f"{path}: unsupported golden type {type(expected)}")


def _jsonable(value):
    """Round-trip through JSON so goldens and fresh results compare evenly."""
    return json.loads(json.dumps(value, sort_keys=True))


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN_EXPERIMENTS))
def test_experiment_matches_golden(experiment_id):
    from repro.experiments import run_experiment

    results, _ = run_experiment(experiment_id, scale="small")
    fresh = _jsonable(results)
    golden_path = GOLDEN_DIR / GOLDEN_EXPERIMENTS[experiment_id]

    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {golden_path.name}")

    assert golden_path.exists(), (
        f"golden fixture {golden_path} missing; run with LIGHTOR_REGEN_GOLDEN=1 "
        "to create it"
    )
    golden = json.loads(golden_path.read_text())
    _assert_close(golden, fresh, path=experiment_id)
