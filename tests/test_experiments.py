"""Smoke tests for the experiment registry and the lighter experiments.

The heavier experiments (LSTM baselines, crowd loops) are exercised by the
benchmark harness; here we check the registry wiring, the result schemas and
the cheap experiments end to end.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments import fig2_chat_analysis, fig3_play_offsets, fig9_applicability
from repro.experiments.common import resolve_scale
from repro.utils.validation import ValidationError


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table1", "ablations"}
        assert expected == set(EXPERIMENTS)

    def test_get_experiment(self):
        spec = get_experiment("fig7")
        assert spec.paper_artifact == "Figure 7"
        assert callable(spec.run) and callable(spec.report)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValidationError):
            get_experiment("fig99")

    def test_scales(self):
        assert resolve_scale("small").name == "small"
        assert resolve_scale("paper").lstm_many == 123
        with pytest.raises(ValidationError):
            resolve_scale("galactic")


class TestLightExperiments:
    def test_fig2_schema_and_shape(self):
        results = fig2_chat_analysis.run(scale="small")
        assert results["n_messages"] > 0
        assert results["mean_chat_delay"] > 5.0
        stats = results["feature_stats"]
        assert stats["message_number"]["highlight_mean"] > stats["message_number"]["non_highlight_mean"]
        assert stats["message_length"]["highlight_mean"] < stats["message_length"]["non_highlight_mean"]
        report = fig2_chat_analysis.report(results)
        assert "Figure 2" in report

    def test_fig3_schema_and_shape(self):
        results = fig3_play_offsets.run(scale="small", viewers_per_dot=15)
        assert results["type_i"]["count"] > 0
        assert results["type_ii"]["count"] > 0
        # Type II offsets are far more concentrated than Type I offsets.
        assert results["type_ii"]["std"] < results["type_i"]["std"]
        report = fig3_play_offsets.report(results)
        assert "Figure 3" in report

    def test_fig9_schema_and_shape(self):
        results = fig9_applicability.run(scale="small", n_channels=4, videos_per_channel=4)
        assert results["n_videos"] == 16
        assert 0.0 <= results["fraction_below_chat_threshold"] <= 0.5
        assert results["fraction_below_viewer_threshold"] == 0.0
        report = fig9_applicability.report(results)
        assert "Figure 9" in report

    def test_run_experiment_returns_report(self):
        results, report = run_experiment("fig2", scale="small")
        assert isinstance(results, dict)
        assert report.startswith("===")
