"""Tests for live channel migration and online resharding.

Three properties matter:

* **losslessness** — migrating a live channel between shards (in process or
  across worker processes) and resharding the whole tier mid-run must leave
  every channel's persisted state byte-identical to an undisturbed run: the
  oracle of :func:`repro.loadgen.run_reshard`;
* **protocol** — a worker answers ``409`` for channels its placement map
  disowns (stale router, mid-migration, reshard commit barrier) and the
  client surfaces it as :class:`WrongShardError`, which is what lets a
  stale front door refresh and retry instead of corrupting state;
* **durability bookkeeping** — shard-marker metadata on SQLite files
  follows the deployment through grows and shrinks, so a drained file can
  be re-adopted and ``repro recover`` keeps resuming checkpoints across
  a reshard.
"""

from __future__ import annotations

import inspect

import pytest

from repro.cli import main
from repro.core.types import VideoChatLog
from repro.loadgen import WorkloadSpec, run_reshard
from repro.platform import codecs
from repro.platform.backends import SQLiteStore
from repro.platform.client import LightorClient
from repro.platform.cluster import ClusterFrontDoor
from repro.platform.placement import PlacementMap, WrongShardError
from repro.platform.server import GatewayThread
from repro.platform.sharding import ShardedLightorService, shard_db_path
from repro.utils.validation import ValidationError

K = 5
SPEC = WorkloadSpec(channels=3, viewers=30, duration=60.0, batch_size=50, seed=7)


def _sharded(fitted_initializer, n_shards=2, **kwargs):
    return ShardedLightorService.create(
        n_shards, fitted_initializer, live_k=K, **kwargs
    )


def _other_shard(service, video_id):
    """Any shard index that is not the channel's current home."""
    home = service.placement.shard_for(video_id)
    return (home + 1) % service.n_shards


@pytest.fixture(scope="module")
def channel_log(dota2_dataset):
    target = dota2_dataset[1]
    return VideoChatLog(video=target.video, messages=target.chat_log.messages[:300])


class TestChannelMigration:
    def test_live_channel_migrates_byte_exactly(self, fitted_initializer, channel_log):
        """Mid-stream migration is invisible in the persisted end state."""
        video_id = channel_log.video.video_id
        control = _sharded(fitted_initializer)
        subject = _sharded(fitted_initializer)
        for service in (control, subject):
            service.start_live(channel_log.video)
            service.ingest_chat_batch(video_id, channel_log.messages[:150])
        dst = _other_shard(subject, video_id)
        epoch_before = subject.placement.epoch
        migration = subject.migrate_channel(video_id, dst)
        assert migration.moved and migration.was_live
        assert migration.seconds > 0.0
        assert subject.placement.shard_for(video_id) == dst
        assert subject.placement.epoch > epoch_before
        for service in (control, subject):
            service.ingest_chat_batch(video_id, channel_log.messages[150:])
        control_dots = control.end_live(video_id, channel_log.video.duration)
        subject_dots = subject.end_live(video_id, channel_log.video.duration)
        assert [codecs.red_dot_to_dict(d) for d in subject_dots] == [
            codecs.red_dot_to_dict(d) for d in control_dots
        ]
        assert [
            codecs.highlight_record_to_dict(r)
            for r in subject.highlight_history(video_id)
        ] == [
            codecs.highlight_record_to_dict(r)
            for r in control.highlight_history(video_id)
        ]
        # The rows live only on the destination shard.
        src = (dst + 1) % 2
        assert subject.shards[dst].store.has_video(video_id)
        assert not subject.shards[src].store.has_video(video_id)

    def test_migrating_home_is_a_noop(self, fitted_initializer, channel_log):
        service = _sharded(fitted_initializer)
        service.register_video(channel_log.video)
        home = service.placement.shard_for(channel_log.video.video_id)
        migration = service.migrate_channel(channel_log.video.video_id, home)
        assert not migration.moved
        assert migration.seconds == 0.0

    def test_bad_destinations_and_unknown_channels_rejected(
        self, fitted_initializer, channel_log
    ):
        service = _sharded(fitted_initializer)
        with pytest.raises(ValidationError, match="dst_shard"):
            service.migrate_channel("anything", 7)
        ghost = "never-registered"
        with pytest.raises(ValidationError, match="no stored rows"):
            service.migrate_channel(ghost, _other_shard(service, ghost))
        # A failed migration leaves the placement unchanged (abort path).
        assert not service.placement.is_in_flight(ghost)


class TestOnlineReshardInproc:
    @pytest.mark.parametrize("shards,to_shards", [(2, 3), (3, 2)])
    def test_mid_run_reshard_is_byte_identical(
        self, fitted_initializer, shards, to_shards
    ):
        report = run_reshard(
            SPEC,
            fitted_initializer,
            shards=shards,
            to_shards=to_shards,
            reshard_after=2,
            workers=2,
            transport="inproc",
        )
        assert report.ok, report.describe()
        assert report.divergences == []
        assert (report.old_shards, report.new_shards) == (shards, to_shards)
        assert report.epoch > 0
        assert all(pause >= 0.0 for pause in report.pause_seconds)


class TestOnlineReshardCluster:
    @pytest.mark.parametrize("shards,to_shards", [(2, 3), (3, 2)])
    def test_mid_run_reshard_is_byte_identical(
        self, fitted_initializer, shards, to_shards
    ):
        """Grow spawns a worker process mid-run, shrink drains and SIGTERMs
        one; either way every fingerprint matches the undisturbed run."""
        report = run_reshard(
            SPEC,
            fitted_initializer,
            shards=shards,
            to_shards=to_shards,
            reshard_after=2,
            workers=2,
            transport="cluster",
        )
        assert report.ok, report.describe()
        assert report.divergences == []
        assert (report.old_shards, report.new_shards) == (shards, to_shards)


class TestWrongShardProtocol:
    @pytest.fixture()
    def worker(self, fitted_initializer):
        """A gateway posing as cluster shard 1 with a pushed placement."""
        service = _sharded(fitted_initializer, n_shards=1)
        gateway = GatewayThread(service, shard_index=1, worker_threads=2)
        host, port = gateway.start()
        client = LightorClient(host, port)
        yield client, service
        client.close()
        gateway.stop()
        service.close()

    def _push(self, client, placement):
        return client.put_placement(codecs.placement_map_to_dict(placement))

    def test_disowned_channel_answers_409(self, worker, channel_log):
        client, _ = worker
        placement = PlacementMap(2)
        video_id = channel_log.video.video_id
        owner = placement.shard_for(video_id)
        # Make sure this worker (shard 1) is NOT the owner.
        if owner == 1:
            placement.begin_migration(video_id)
            placement.complete_migration(video_id, 0)
            owner = 0
        self._push(client, placement)
        with pytest.raises(WrongShardError) as excinfo:
            client.live_red_dots(video_id)
        assert excinfo.value.owner == owner
        assert excinfo.value.epoch == placement.epoch
        assert not excinfo.value.in_flight

    def test_in_flight_channel_answers_409_even_for_the_owner(
        self, worker, channel_log
    ):
        client, _ = worker
        placement = PlacementMap(2)
        video_id = channel_log.video.video_id
        if placement.shard_for(video_id) != 1:
            placement.begin_migration(video_id)
            placement.complete_migration(video_id, 1)
        placement.begin_migration(video_id)
        self._push(client, placement)
        with pytest.raises(WrongShardError) as excinfo:
            client.live_red_dots(video_id)
        assert excinfo.value.in_flight

    def test_frozen_map_refuses_every_channel(self, worker, channel_log):
        """The reshard commit barrier: owned or not, channel traffic waits."""
        client, _ = worker
        placement = PlacementMap(2)
        placement.freeze()
        self._push(client, placement)
        with pytest.raises(WrongShardError) as excinfo:
            client.live_red_dots(channel_log.video.video_id)
        assert excinfo.value.in_flight
        # Channel-less routes keep working under the freeze: the admin
        # choreography and the census fence must pass through it.
        assert client.fence() is True
        assert client.list_channels() == []

    def test_healthz_and_metrics_expose_the_epoch(self, worker):
        client, _ = worker
        placement = PlacementMap(2)
        placement.begin_migration("ch")
        placement.complete_migration("ch", 0)
        self._push(client, placement)
        payload = client.healthz()
        assert payload["placement_epoch"] == placement.epoch
        text = client.metrics()
        assert f"lightor_gateway_placement_epoch {placement.epoch}" in text
        assert "lightor_gateway_wrong_shard_total" in text

    def test_stale_push_is_not_installed(self, worker):
        client, _ = worker
        fresh = PlacementMap(2)
        fresh.begin_migration("ch")
        fresh.complete_migration("ch", 0)
        assert self._push(client, fresh)["installed"]
        stale = PlacementMap(2)
        result = self._push(client, stale)
        assert not result["installed"]
        assert result["epoch"] == fresh.epoch


class TestShardMarkers:
    def test_shrink_clears_markers_so_a_later_grow_adopts_the_file(
        self, fitted_initializer, channel_log, tmp_path
    ):
        """Regression: a drained shard file used to keep its old ``n_shards``
        marker, so growing back refused the (empty) file as stale."""
        base = tmp_path / "fleet.db"
        service = _sharded(fitted_initializer, 3, backend="sqlite", db_path=base)
        service.start_live(channel_log.video)
        service.ingest_chat_batch(
            channel_log.video.video_id, channel_log.messages[:100], persist=True
        )
        service.reshard(2)
        drained = SQLiteStore(shard_db_path(base, 2))
        try:
            assert drained.get_meta("n_shards") is None
            assert drained.get_meta("shard_index") is None
            assert drained.list_videos() == []
        finally:
            drained.close()
        for index in range(2):
            survivor = SQLiteStore(shard_db_path(base, index))
            try:
                assert survivor.get_meta("n_shards") == "2"
                assert survivor.get_meta("shard_index") == str(index)
            finally:
                survivor.close()
        # Growing back re-adopts the drained file and restamps every marker.
        service.reshard(3)
        assert service.n_shards == 3
        dots = service.end_live(channel_log.video.video_id, channel_log.video.duration)
        assert dots
        service.close()
        for index in range(3):
            store = SQLiteStore(shard_db_path(base, index))
            try:
                assert store.get_meta("n_shards") == "3"
            finally:
                store.close()

    def test_stale_marker_still_refused_on_grow(self, fitted_initializer, tmp_path):
        """The marker check itself stays strict: a file stamped for another
        deployment shape (and never drained by a reshard) is not adopted."""
        base = tmp_path / "stale.db"
        poisoned = SQLiteStore(shard_db_path(base, 2))
        poisoned.set_meta("n_shards", "7")
        poisoned.close()
        service = _sharded(fitted_initializer, 2, backend="sqlite", db_path=base)
        with pytest.raises(ValidationError):
            service.reshard(3)
        service.close()


class TestReshardCLIAndRecovery:
    def test_offline_reshard_preserves_checkpoints(
        self, fitted_initializer, channel_log, tmp_path, capsys
    ):
        """``repro reshard`` then ``repro recover``: a live session
        checkpointed before the reshard resumes on its new home shard."""
        base = tmp_path / "live.db"
        video_id = channel_log.video.video_id
        service = _sharded(
            fitted_initializer, 2, backend="sqlite", db_path=base,
            checkpoint_every=50,
        )
        service.start_live(channel_log.video)
        service.ingest_chat_batch(video_id, channel_log.messages[:200], persist=True)
        assert service.suspend() == 1  # checkpointed, not finalized
        assert main(["reshard", "--db-path", str(base), "--shards", "2", "--to", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 -> 3" in out
        resumed = _sharded(
            fitted_initializer, 3, backend="sqlite", db_path=base,
            checkpoint_every=50,
        )
        recovered = resumed.recover_live_sessions()
        assert [r.video_id for r in recovered] == [video_id]
        # The session keeps serving after recovery, wherever it landed.
        resumed.ingest_chat_batch(video_id, channel_log.messages[200:260], persist=True)
        assert resumed.end_live(video_id, channel_log.video.duration)
        resumed.close()

    def test_cli_rejects_growing_to_the_same_size(self, tmp_path, capsys):
        assert main(
            ["reshard", "--db-path", str(tmp_path / "x.db"), "--shards", "2", "--to", "0"]
        ) == 1


class TestFrontDoorSurfaceParity:
    SURFACE = [
        "register_video", "request_red_dots", "log_interactions", "refine_video",
        "get_red_dots", "latest_highlights", "highlight_history",
        "get_interactions", "start_live", "ingest_live_chat",
        "ingest_chat_batch", "ingest_live_interactions", "ingest_plays_batch",
        "live_red_dots", "end_live",
    ]
    ADMIN = ["list_channels", "migrate_out", "forget_channel"]

    @staticmethod
    def _shape(cls, name):
        return [
            (p.name, p.default, p.kind)
            for p in inspect.signature(getattr(cls, name)).parameters.values()
        ]

    def test_every_front_door_mirrors_the_service_surface(self):
        """Swapping ShardedLightorService, ClusterFrontDoor and LightorClient
        behind the load harness must never change a call site: same method
        names, same parameter names, same defaults."""
        for name in self.SURFACE:
            reference = self._shape(ShardedLightorService, name)
            for cls in (ClusterFrontDoor, LightorClient):
                assert self._shape(cls, name) == reference, (cls.__name__, name)

    def test_migration_admin_mirrors_service_to_client(self):
        """The cluster data plane: the client speaks the same admin surface
        the in-process service exposes (the front door intentionally does
        not — it routes, the supervisor migrates)."""
        for name in self.ADMIN:
            assert self._shape(LightorClient, name) == self._shape(
                ShardedLightorService, name
            ), name
            assert not hasattr(ClusterFrontDoor, name), name
