"""Tests for the placement control plane.

Four invariants matter:

* **total ownership** — every channel id maps to exactly one shard on the
  current ring, pins included, at every epoch;
* **epoch monotonicity** — every mutation (migration begin/complete/abort,
  freeze/thaw, reshard commit) strictly increases the epoch, so a router
  can always order two maps;
* **minimal moves** — a reshard plan contains exactly the channels whose
  owner differs between the old and new assignment, nothing else;
* **epoch-0 compatibility** — a fresh :class:`PlacementMap` routes
  byte-identically to the bare :class:`ConsistentHashRing` the sharded
  service, cluster front door and bench oracle used before the refactor,
  which is what keeps existing databases (and their checkpoints) valid
  with no migration.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import codecs
from repro.platform.placement import (
    ChannelMove,
    ConsistentHashRing,
    PlacementMap,
    WrongShardError,
)
from repro.utils.validation import ValidationError

channel_ids = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=16,
)
channel_sets = st.lists(channel_ids, min_size=0, max_size=30, unique=True)


class TestEpochZeroCompatibility:
    @settings(max_examples=25, deadline=None)
    @given(n_shards=st.integers(min_value=1, max_value=16), channels=channel_sets)
    def test_epoch_zero_routes_like_the_legacy_ring(self, n_shards, channels):
        """The pin of the whole refactor: a fresh map *is* the old ring."""
        ring = ConsistentHashRing(n_shards)
        placement = PlacementMap(n_shards)
        assert placement.epoch == 0
        for video_id in channels:
            assert placement.shard_for(video_id) == ring.shard_for(video_id)

    def test_known_assignment_is_stable_across_releases(self):
        """A frozen-in-amber sample so a routing change cannot slip through
        the property test unnoticed (these exact values place existing
        shard database files)."""
        placement = PlacementMap(4)
        assert [placement.shard_for(f"dota2-{i:04d}") for i in range(8)] == [
            ConsistentHashRing(4).shard_for(f"dota2-{i:04d}") for i in range(8)
        ]


class TestOwnershipInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        n_shards=st.integers(min_value=1, max_value=8),
        channels=channel_sets,
        data=st.data(),
    )
    def test_every_channel_always_owned_by_a_valid_shard(
        self, n_shards, channels, data
    ):
        """Through an arbitrary mutation sequence, ``shard_for`` answers a
        shard on the current ring (or a pinned one) for every channel."""
        placement = PlacementMap(n_shards)
        for video_id in channels:
            if data.draw(st.booleans(), label=f"migrate {video_id}"):
                dst = data.draw(
                    st.integers(min_value=0, max_value=n_shards - 1),
                    label=f"dst {video_id}",
                )
                placement.begin_migration(video_id)
                placement.complete_migration(video_id, dst)
                assert placement.shard_for(video_id) == dst
        for video_id in channels:
            assert 0 <= placement.shard_for(video_id) < n_shards

    def test_pins_survive_serialization(self):
        placement = PlacementMap(3)
        placement.begin_migration("a")
        placement.complete_migration("a", 2 if placement.shard_for("a") != 2 else 1)
        placement.begin_migration("b")
        payload = codecs.placement_map_to_dict(placement)
        rebuilt = codecs.placement_map_from_dict(payload)
        assert rebuilt.epoch == placement.epoch
        assert rebuilt.shard_for("a") == placement.shard_for("a")
        assert rebuilt.is_in_flight("b")
        assert codecs.placement_map_to_dict(rebuilt) == payload


class TestEpochMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(st.sampled_from(["migrate", "abort", "freeze_thaw", "reshard"]), max_size=12))
    def test_every_mutation_strictly_bumps(self, ops):
        placement = PlacementMap(2)
        seen = placement.epoch
        counter = 0
        for op in ops:
            counter += 1
            if op == "migrate":
                placement.begin_migration(f"ch-{counter}")
                assert placement.epoch > seen
                seen = placement.epoch
                placement.complete_migration(f"ch-{counter}", 1)
            elif op == "abort":
                placement.begin_migration(f"ch-{counter}")
                seen = placement.epoch
                placement.abort_migration(f"ch-{counter}")
            elif op == "freeze_thaw":
                placement.freeze()
                assert placement.epoch > seen
                assert placement.frozen
                seen = placement.epoch
                placement.thaw()
                assert not placement.frozen
            else:
                placement.commit_reshard(placement.n_shards + 1)
            assert placement.epoch > seen
            seen = placement.epoch

    def test_install_adopts_only_newer_state(self):
        newer = PlacementMap(2)
        newer.begin_migration("a")
        newer.complete_migration("a", 1)
        stale = PlacementMap(2)
        holder = PlacementMap(2)
        assert holder.install(newer)
        assert holder.epoch == newer.epoch
        assert holder.shard_for("a") == newer.shard_for("a")
        # Same-or-older epoch is a no-op, which makes refresh races harmless.
        assert not holder.install(stale)
        assert not holder.install(newer)
        assert holder.epoch == newer.epoch

    def test_install_carries_the_freeze(self):
        frozen = PlacementMap(2)
        frozen.freeze()
        holder = PlacementMap(2)
        assert holder.install(frozen)
        assert holder.frozen


class TestReshardPlanning:
    @settings(max_examples=25, deadline=None)
    @given(
        old=st.integers(min_value=1, max_value=8),
        new=st.integers(min_value=1, max_value=8),
        channels=channel_sets,
    )
    def test_plan_is_exactly_the_changed_set(self, old, new, channels):
        """Minimality both ways: every planned channel really changes owner,
        and every channel that changes owner is planned."""
        placement = PlacementMap(old)
        new_ring = ConsistentHashRing(new)
        plan = placement.plan_reshard(channels, new)
        planned = {move.video_id for move in plan}
        for move in plan:
            assert move.src == placement.shard_for(move.video_id)
            assert move.dst == new_ring.shard_for(move.video_id)
            assert move.src != move.dst
        for video_id in channels:
            changed = placement.shard_for(video_id) != new_ring.shard_for(video_id)
            assert (video_id in planned) == changed

    @settings(max_examples=25, deadline=None)
    @given(
        old=st.integers(min_value=1, max_value=8),
        new=st.integers(min_value=1, max_value=8),
        channels=channel_sets,
    )
    def test_executed_plan_commits_to_a_pinless_ring(self, old, new, channels):
        """Migrating the plan and committing leaves pure ring routing — no
        leftover pins — and every channel lands where the new ring says."""
        placement = PlacementMap(old)
        new_ring = ConsistentHashRing(new)
        for move in placement.plan_reshard(channels, new):
            placement.begin_migration(move.video_id)
            placement.complete_migration(move.video_id, move.dst)
        placement.commit_reshard(new)
        assert placement.describe()["pins"] == {}
        for video_id in channels:
            assert placement.shard_for(video_id) == new_ring.shard_for(video_id)

    def test_commit_rejects_unfinished_migrations(self):
        placement = PlacementMap(1)
        placement.begin_migration("ch")
        placement.complete_migration("ch", 4)  # parked beyond a 2-shard ring
        with pytest.raises(ValidationError, match="never completed"):
            placement.commit_reshard(2)

    def test_plan_is_sorted_and_deterministic(self):
        placement = PlacementMap(2)
        channels = [f"dota2-{i:04d}" for i in range(40)]
        plan = placement.plan_reshard(reversed(channels), 3)
        assert plan == placement.plan_reshard(channels, 3)
        assert [m.video_id for m in plan] == sorted(m.video_id for m in plan)
        assert all(isinstance(m, ChannelMove) for m in plan)


class TestWrongShardError:
    def test_carries_the_redirect_fields(self):
        error = WrongShardError("ch", owner=3, epoch=7)
        assert (error.video_id, error.owner, error.epoch) == ("ch", 3, 7)
        assert not error.in_flight
        assert "shard 3" in str(error) and "epoch 7" in str(error)
        assert isinstance(error, ValidationError)

    def test_in_flight_variant(self):
        error = WrongShardError("ch", owner=1, epoch=2, in_flight=True)
        assert error.in_flight
        assert "mid-migration" in str(error)
