"""Tests for dataset generation, caching and splitting."""

from __future__ import annotations

import pytest

from repro.datasets.generate import DatasetSpec, build_dataset
from repro.datasets.loaders import DatasetCache, train_test_split, training_pairs
from repro.utils.validation import ValidationError


class TestDatasetSpec:
    def test_named_constructors(self):
        assert DatasetSpec.dota2().game == "dota2"
        assert DatasetSpec.dota2().size == 60
        assert DatasetSpec.lol().size == 173

    def test_invalid_size_rejected(self):
        with pytest.raises(ValidationError):
            DatasetSpec(game="dota2", size=0)


class TestBuildDataset:
    def test_prefix_property(self):
        small = build_dataset(DatasetSpec.dota2(size=2))
        larger = build_dataset(DatasetSpec.dota2(size=4))
        assert [v.video.video_id for v in small] == [v.video.video_id for v in larger[:2]]
        assert [m.text for m in small[0].chat_log] == [m.text for m in larger[0].chat_log]

    def test_games_differ(self):
        dota = build_dataset(DatasetSpec.dota2(size=1))[0]
        lol = build_dataset(DatasetSpec.lol(size=1))[0]
        assert dota.video.game == "dota2" and lol.video.game == "lol"
        assert dota.video.video_id != lol.video.video_id

    def test_training_pair_shape(self):
        labelled = build_dataset(DatasetSpec.dota2(size=1))[0]
        chat_log, highlights = labelled.training_pair
        assert chat_log is labelled.chat_log
        assert highlights == labelled.highlights


class TestDatasetCache:
    def test_cache_reuses_materialised_suite(self):
        cache = DatasetCache()
        big = cache.get(DatasetSpec.dota2(size=3))
        small = cache.get(DatasetSpec.dota2(size=2))
        assert small == big[:2]

    def test_cache_distinguishes_seeds(self):
        cache = DatasetCache()
        a = cache.get(DatasetSpec(game="dota2", size=1, seed=1))
        b = cache.get(DatasetSpec(game="dota2", size=1, seed=2))
        assert a[0].chat_log.messages != b[0].chat_log.messages

    def test_clear(self):
        cache = DatasetCache()
        cache.get(DatasetSpec.dota2(size=1))
        cache.clear()
        assert cache._cache == {}


class TestSplits:
    def test_train_test_split_sizes(self, dota2_dataset):
        train, test = train_test_split(dota2_dataset, n_train=2, n_test=3)
        assert len(train) == 2 and len(test) == 3
        assert train[0].video.video_id != test[0].video.video_id

    def test_split_without_explicit_test_size(self, dota2_dataset):
        train, test = train_test_split(dota2_dataset, n_train=2)
        assert len(train) + len(test) == len(dota2_dataset)

    def test_split_validation(self, dota2_dataset):
        with pytest.raises(ValidationError):
            train_test_split(dota2_dataset, n_train=len(dota2_dataset))
        with pytest.raises(ValidationError):
            train_test_split(dota2_dataset, n_train=1, n_test=len(dota2_dataset))

    def test_training_pairs(self, dota2_dataset):
        pairs = training_pairs(dota2_dataset[:2])
        assert len(pairs) == 2
        assert pairs[0][0] is dota2_dataset[0].chat_log
