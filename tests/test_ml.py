"""Unit and property tests for the ML substrate (:mod:`repro.ml`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.kmeans import average_similarity_to_center, kmeans, one_cluster_center
from repro.ml.logistic import LogisticRegression
from repro.ml.lstm import CharLSTMClassifier
from repro.ml.metrics_ml import accuracy, confusion_matrix, precision_recall_f1, roc_auc
from repro.ml.scaler import MinMaxScaler, StandardScaler
from repro.ml.text import (
    BagOfWordsVectorizer,
    cosine_similarity,
    jaccard_similarity,
    tokenize,
    vocabulary_from_messages,
)
from repro.utils.validation import ValidationError


class TestLogisticRegression:
    def _separable_data(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 2))
        y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
        return x, y

    def test_learns_separable_data(self):
        x, y = self._separable_data()
        model = LogisticRegression(n_iterations=800)
        model.fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.9

    def test_probabilities_in_unit_interval(self):
        x, y = self._separable_data()
        model = LogisticRegression(n_iterations=300).fit(x, y)
        probabilities = model.predict_proba(x)
        assert np.all(probabilities >= 0) and np.all(probabilities <= 1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(ValidationError):
            LogisticRegression().predict_proba(np.zeros((1, 2)))

    def test_feature_count_mismatch_raises(self):
        x, y = self._separable_data()
        model = LogisticRegression(n_iterations=100).fit(x, y)
        with pytest.raises(ValidationError):
            model.predict_proba(np.zeros((1, 5)))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValidationError):
            LogisticRegression().fit(np.zeros((3, 1)), np.array([0, 1, 2]))

    def test_rejects_empty_training_set(self):
        with pytest.raises(ValidationError):
            LogisticRegression().fit(np.zeros((0, 2)), np.zeros(0))

    def test_single_class_training_does_not_crash(self):
        model = LogisticRegression(n_iterations=50)
        model.fit(np.random.default_rng(0).normal(size=(10, 2)), np.ones(10))
        assert np.all(model.predict_proba(np.zeros((2, 2))) >= 0)

    def test_balanced_weights_help_imbalanced_data(self):
        rng = np.random.default_rng(1)
        x = np.vstack([rng.normal(-1.0, 0.5, size=(190, 1)), rng.normal(1.0, 0.5, size=(10, 1))])
        y = np.concatenate([np.zeros(190), np.ones(10)])
        balanced = LogisticRegression(class_weight="balanced", n_iterations=500).fit(x, y)
        recall = precision_recall_f1(y, balanced.predict(x))["recall"]
        assert recall > 0.7

    def test_coefficients_roundtrip(self):
        x, y = self._separable_data(n=50)
        model = LogisticRegression(n_iterations=200).fit(x, y)
        exported = model.coefficients()
        rebuilt = LogisticRegression.from_coefficients(exported["weights"], exported["bias"])
        assert np.allclose(model.predict_proba(x), rebuilt.predict_proba(x))

    def test_decision_function_monotone_with_probability(self):
        x, y = self._separable_data(n=80)
        model = LogisticRegression(n_iterations=200).fit(x, y)
        logits = model.decision_function(x)
        probabilities = model.predict_proba(x)
        assert np.all(np.argsort(logits) == np.argsort(probabilities))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ValidationError):
            LogisticRegression(l2=-1.0)
        with pytest.raises(ValidationError):
            LogisticRegression(class_weight="bogus")


class TestKMeans:
    def test_one_cluster_center_is_mean(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert np.allclose(one_cluster_center(vectors), [0.5, 0.5])

    def test_identical_messages_have_similarity_one(self):
        vectors = np.tile(np.array([1.0, 1.0, 0.0]), (5, 1))
        assert average_similarity_to_center(vectors) == pytest.approx(1.0)

    def test_disjoint_messages_have_zero_loo_similarity(self):
        vectors = np.eye(4)
        assert average_similarity_to_center(vectors, exclude_self=True) == pytest.approx(0.0)

    def test_self_inclusive_similarity_higher_than_loo(self):
        vectors = np.eye(4)
        with_self = average_similarity_to_center(vectors, exclude_self=False)
        without_self = average_similarity_to_center(vectors, exclude_self=True)
        assert with_self > without_self

    def test_single_vector(self):
        assert average_similarity_to_center(np.array([[1.0, 0.0]])) == 0.0
        assert average_similarity_to_center(np.array([[1.0, 0.0]]), exclude_self=False) == 1.0

    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError):
            average_similarity_to_center(np.zeros((0, 3)))

    def test_kmeans_k1_matches_center(self):
        vectors = np.random.default_rng(0).normal(size=(10, 3))
        centers, assignments = kmeans(vectors, k=1)
        assert np.allclose(centers[0], vectors.mean(axis=0))
        assert set(assignments.tolist()) == {0}

    def test_kmeans_separates_two_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(loc=0.0, scale=0.1, size=(20, 2))
        blob_b = rng.normal(loc=5.0, scale=0.1, size=(20, 2))
        _, assignments = kmeans(np.vstack([blob_a, blob_b]), k=2, seed=1)
        assert len(set(assignments[:20].tolist())) == 1
        assert len(set(assignments[20:].tolist())) == 1
        assert assignments[0] != assignments[-1]

    def test_kmeans_too_few_vectors_rejected(self):
        with pytest.raises(ValidationError):
            kmeans(np.zeros((1, 2)), k=2)

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_similarity_bounded(self, n_messages, n_terms):
        rng = np.random.default_rng(n_messages * 13 + n_terms)
        vectors = (rng.random((n_messages, n_terms)) > 0.5).astype(float)
        if not vectors.any():
            vectors[0, 0] = 1.0
        value = average_similarity_to_center(vectors)
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestScalers:
    def test_minmax_scales_to_unit_interval(self):
        data = np.array([[1.0, 10.0], [3.0, 20.0], [2.0, 30.0]])
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        assert scaled[0, 0] == 0.0 and scaled[1, 0] == 1.0

    def test_minmax_constant_column_maps_to_zero(self):
        data = np.array([[5.0, 1.0], [5.0, 2.0]])
        scaled = MinMaxScaler().fit_transform(data)
        assert np.all(scaled[:, 0] == 0.0)

    def test_minmax_clips_unseen_values(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == 1.0
        assert scaler.transform(np.array([[-5.0]]))[0, 0] == 0.0

    def test_minmax_unfitted_raises(self):
        with pytest.raises(ValidationError):
            MinMaxScaler().transform(np.zeros((1, 1)))

    def test_standard_scaler_zero_mean_unit_std(self):
        data = np.random.default_rng(0).normal(5.0, 3.0, size=(200, 2))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_column(self):
        data = np.array([[2.0], [2.0], [2.0]])
        assert np.all(StandardScaler().fit_transform(data) == 0.0)

    def test_feature_count_mismatch(self):
        scaler = MinMaxScaler().fit(np.zeros((2, 3)))
        with pytest.raises(ValidationError):
            scaler.transform(np.zeros((2, 2)))


class TestText:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("KILL!! PogChamp") == ["kill", "!!", "pogchamp"]

    def test_tokenize_empty(self):
        assert tokenize("") == []

    def test_tokenize_rejects_non_string(self):
        with pytest.raises(ValidationError):
            tokenize(123)  # type: ignore[arg-type]

    def test_vocabulary_first_seen_order(self):
        vocabulary = vocabulary_from_messages(["b a", "a c"])
        assert vocabulary == {"b": 0, "a": 1, "c": 2}

    def test_bag_of_words_binary(self):
        matrix = BagOfWordsVectorizer().fit_transform(["gg gg wp", "wp"])
        assert matrix.shape == (2, 2)
        assert matrix[0].tolist() == [1.0, 1.0]
        assert matrix[1].tolist() == [0.0, 1.0]

    def test_bag_of_words_counts(self):
        matrix = BagOfWordsVectorizer(binary=False).fit_transform(["gg gg wp"])
        assert matrix[0, 0] == 2.0

    def test_out_of_vocabulary_ignored(self):
        vectorizer = BagOfWordsVectorizer().fit(["gg"])
        matrix = vectorizer.transform(["brand new words"])
        assert matrix.sum() == 0.0

    def test_cosine_similarity_basics(self):
        assert cosine_similarity([1, 0], [1, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    def test_cosine_similarity_size_mismatch(self):
        with pytest.raises(ValidationError):
            cosine_similarity([1, 2], [1, 2, 3])

    def test_jaccard_similarity(self):
        assert jaccard_similarity(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard_similarity([], []) == 0.0


class TestMetricsML:
    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 0, 0]) == pytest.approx(2 / 3)

    def test_confusion_matrix(self):
        counts = confusion_matrix([1, 1, 0, 0], [1, 0, 0, 1])
        assert counts == {"tp": 1, "fn": 1, "tn": 1, "fp": 1}

    def test_precision_recall_f1_degenerate(self):
        scores = precision_recall_f1([0, 0], [0, 0])
        assert scores == {"precision": 0.0, "recall": 0.0, "f1": 0.0}

    def test_roc_auc_perfect_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_roc_auc_random_ranking(self):
        assert roc_auc([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_roc_auc_single_class(self):
        assert roc_auc([1, 1], [0.2, 0.9]) == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            accuracy([1], [1, 0])


class TestCharLSTM:
    def test_learns_simple_vocabulary_split(self):
        positives = ["pog pog pog", "kill kill", "pog kill pog"] * 6
        negatives = ["what item should he buy", "anyone know the score", "so boring today"] * 6
        texts = positives + negatives
        labels = [1] * len(positives) + [0] * len(negatives)
        model = CharLSTMClassifier(hidden_size=12, n_epochs=6, seed=3)
        model.fit(texts, labels)
        predictions = model.predict(["pog pog kill", "what should he buy today"])
        assert predictions[0] == 1
        assert predictions[1] == 0

    def test_probabilities_bounded(self):
        model = CharLSTMClassifier(hidden_size=8, n_epochs=2, seed=0)
        model.fit(["aaa", "bbb", "aaa", "bbb"], [1, 0, 1, 0])
        probabilities = model.predict_proba(["aaa", "ccc", ""])
        assert np.all(probabilities >= 0) and np.all(probabilities <= 1)

    def test_records_training_time(self):
        model = CharLSTMClassifier(hidden_size=6, n_epochs=1, seed=0)
        model.fit(["aa", "bb"], [1, 0])
        assert model.training_seconds_ > 0

    def test_unfitted_predict_raises(self):
        with pytest.raises(ValidationError):
            CharLSTMClassifier().predict_proba(["x"])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            CharLSTMClassifier().fit(["a"], [1, 0])
