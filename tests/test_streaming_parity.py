"""Batch/stream parity: the streaming engine's core contract.

Feeding a recorded ``VideoChatLog`` through the streaming engine
message-by-message and finalizing at the video duration must reproduce the
batch ``HighlightInitializer.propose`` / ``LightorPipeline.propose`` red
dots *exactly* — same positions, same scores, same top-k order.  The suite
parametrizes over dataset seeds, window geometries and feature sets, and
also pins the window/feature layers the contract rests on.
"""

from __future__ import annotations

import pytest

from repro.core.config import LightorConfig
from repro.core.initializer.features import RunningWindowFeatures, WindowFeatureExtractor
from repro.core.initializer.initializer import HighlightInitializer
from repro.core.initializer.predictor import FeatureSet
from repro.core.initializer.windows import (
    SlidingWindow,
    StreamingWindowBuilder,
    build_sliding_windows,
    resolve_overlapping_windows,
)
from repro.core.pipeline import LightorPipeline
from repro.core.types import ChatMessage, Video, VideoChatLog
from repro.datasets.generate import DatasetSpec, build_dataset
from repro.datasets.loaders import training_pairs
from repro.eval.parity import compare_red_dots
from repro.streaming import EmitPolicy, StreamingInitializer
from repro.utils.validation import ValidationError

# Five seeded end-to-end scenarios (the ISSUE's acceptance bar) plus
# geometry/feature variants.  Each tuple: dataset seed, window size, stride,
# feature set, k.
SCENARIOS = [
    pytest.param(2020, 25.0, 12.5, FeatureSet.ALL, 5, id="paper-defaults-2020"),
    pytest.param(7, 25.0, 12.5, FeatureSet.ALL, 10, id="paper-defaults-7-k10"),
    pytest.param(99, 20.0, 10.0, FeatureSet.ALL, 5, id="window20-stride10-99"),
    pytest.param(123, 40.0, 8.0, FeatureSet.MSG_NUM_LEN, 5, id="window40-stride8-123"),
    pytest.param(31337, 25.0, 25.0, FeatureSet.MSG_NUM, 5, id="non-overlapping-31337"),
    pytest.param(4242, 30.0, 15.0, FeatureSet.ALL, 3, id="window30-k3-4242"),
]


def _replay(initializer: HighlightInitializer, chat_log, k, policy=None):
    """Stream the recorded log message-by-message and finalize."""
    streaming = StreamingInitializer.from_initializer(
        initializer,
        k=k,
        video_id=chat_log.video.video_id,
        policy=policy or EmitPolicy(),
    )
    for message in chat_log.messages:
        streaming.ingest(message)
    return streaming, streaming.finalize(chat_log.video.duration)


class TestRedDotParity:
    @pytest.mark.parametrize("seed, window, stride, feature_set, k", SCENARIOS)
    def test_streaming_replay_matches_batch_propose(
        self, seed, window, stride, feature_set, k
    ):
        config = LightorConfig().with_overrides(window_size=window, window_stride=stride)
        dataset = build_dataset(DatasetSpec.dota2(size=3, seed=seed))
        initializer = HighlightInitializer(config=config, feature_set=feature_set)
        initializer.fit(training_pairs(dataset[:1]))

        for labelled in dataset[1:]:
            batch = initializer.propose(labelled.chat_log, k=k)
            _, streamed = _replay(initializer, labelled.chat_log, k)
            report = compare_red_dots(batch, streamed)
            assert report.ok, report.describe()
            # Dataclass equality doubles as the strictest possible check.
            assert batch == streamed

    def test_parity_matches_pipeline_propose(self, dota2_dataset, config):
        pipeline = LightorPipeline(config)
        pipeline.fit(training_pairs(dota2_dataset[:1]))
        labelled = dota2_dataset[2]
        batch = pipeline.propose(labelled.chat_log, k=5)
        _, streamed = _replay(pipeline.initializer, labelled.chat_log, 5)
        assert batch == streamed

    def test_parity_independent_of_emit_cadence(self, fitted_initializer, dota2_dataset):
        """The provisional evaluation cadence must not leak into the final set."""
        labelled = dota2_dataset[3]
        batch = fitted_initializer.propose(labelled.chat_log, k=5)
        for policy in (
            EmitPolicy(eval_every_messages=5, eval_every_seconds=5.0),
            EmitPolicy(eval_every_messages=10_000, eval_every_seconds=100_000.0),
        ):
            _, streamed = _replay(fitted_initializer, labelled.chat_log, 5, policy)
            assert batch == streamed

    def test_lol_dataset_parity(self, lol_dataset, config):
        initializer = HighlightInitializer(config=config)
        initializer.fit(training_pairs(lol_dataset[:1]))
        for labelled in lol_dataset[1:3]:
            batch = initializer.propose(labelled.chat_log, k=5)
            _, streamed = _replay(initializer, labelled.chat_log, 5)
            assert batch == streamed


class TestWindowParity:
    """build_sliding_windows is a replay of StreamingWindowBuilder."""

    @pytest.mark.parametrize("stride", [5.0, 12.5, 25.0])
    def test_manual_replay_equals_batch(self, dota2_dataset, stride):
        chat_log = dota2_dataset[1].chat_log
        batch = build_sliding_windows(chat_log, window_size=25.0, stride=stride)

        builder = StreamingWindowBuilder(window_size=25.0, stride=stride)
        streamed: list[SlidingWindow] = []
        for message in chat_log.messages:
            streamed.extend(builder.add(message))
        streamed.extend(builder.flush(chat_log.video.duration))
        if stride < 25.0:
            streamed = resolve_overlapping_windows(streamed)

        assert [(w.start, w.end) for w in batch] == [(w.start, w.end) for w in streamed]
        assert [w.message_count for w in batch] == [w.message_count for w in streamed]
        assert [w.peak_timestamp() for w in batch] == [
            w.peak_timestamp() for w in streamed
        ]

    def test_out_of_order_messages_rejected(self):
        builder = StreamingWindowBuilder(window_size=25.0, stride=12.5)
        builder.add(ChatMessage(timestamp=100.0, text="gg"))
        with pytest.raises(ValidationError):
            builder.add(ChatMessage(timestamp=50.0, text="gg"))

    def test_sealing_frees_active_windows(self):
        builder = StreamingWindowBuilder(window_size=25.0, stride=12.5)
        for second in range(0, 300, 5):
            builder.add(ChatMessage(timestamp=float(second), text="gg"))
        # Only the live edge stays open: ceil(window/stride) = 2 windows,
        # plus at most one freshly opened by the last message.
        assert builder.active_window_count <= 3
        assert builder.windows_sealed > 15

    def test_truncated_tail_window_matches_batch(self):
        """A video ending mid-window truncates the last window identically."""
        video = Video(video_id="tail", duration=40.0)
        messages = [ChatMessage(timestamp=float(t), text="gg") for t in (1, 26, 30, 39)]
        chat_log = VideoChatLog(video=video, messages=messages)
        batch = build_sliding_windows(chat_log, window_size=25.0)

        builder = StreamingWindowBuilder(window_size=25.0, stride=25.0)
        streamed = []
        for message in chat_log.messages:
            streamed.extend(builder.add(message))
        streamed.extend(builder.flush(video.duration))
        assert [(w.start, w.end) for w in batch] == [(w.start, w.end) for w in streamed]
        assert batch[-1].end == 40.0


class TestFeatureParity:
    """WindowFeatureExtractor.raw_features is a replay of RunningWindowFeatures."""

    def test_incremental_equals_batch_features(self, dota2_dataset):
        chat_log = dota2_dataset[1].chat_log
        windows = build_sliding_windows(chat_log, window_size=25.0, stride=12.5)
        extractor = WindowFeatureExtractor()
        for window in windows[:40]:
            running = RunningWindowFeatures()
            for message in window.messages:
                running.add(message.text)
            assert running.raw() == extractor.raw_features(window)

    def test_pretokenized_add_matches(self):
        from repro.ml.text import tokenize

        texts = ["KILL!! PogChamp", "gg wp", "", "   ", "rampage rampage"]
        plain = RunningWindowFeatures()
        shared = RunningWindowFeatures()
        for text in texts:
            plain.add(text)
            shared.add(text, tokens=tokenize(text))
        assert plain.raw() == shared.raw()
