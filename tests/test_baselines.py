"""Tests for the baseline detectors and extractors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.chat_lstm import ChatLSTMBaseline
from repro.baselines.joint_lstm import JointLSTMBaseline
from repro.baselines.moocer import MoocerExtractor
from repro.baselines.naive import NaivePeakDetector
from repro.baselines.socialskip import SocialSkipExtractor
from repro.baselines.toretter import ToretterDetector
from repro.core.types import (
    ChatMessage,
    Interaction,
    InteractionKind,
    PlayRecord,
    Video,
    VideoChatLog,
)
from repro.utils.validation import ValidationError


def _burst_log(duration=1200.0, burst_at=600.0, n_burst=40, background=20):
    """A synthetic chat log with a single obvious burst."""
    video = Video(video_id="baseline", duration=duration)
    messages = [ChatMessage(timestamp=float(i * duration / background), text="slow chat here")
                for i in range(background)]
    messages += [
        ChatMessage(timestamp=burst_at + i * 0.2, text="POG") for i in range(n_burst)
    ]
    messages = [m for m in messages if m.timestamp < duration]
    return VideoChatLog(video=video, messages=messages)


class TestNaivePeakDetector:
    def test_finds_the_burst(self):
        log = _burst_log()
        dots = NaivePeakDetector().propose(log, k=1)
        assert len(dots) == 1
        assert abs(dots[0].position - 600.0) < 30.0

    def test_respects_spacing(self):
        log = _burst_log()
        dots = NaivePeakDetector(min_dot_spacing=100.0).propose(log, k=3)
        positions = [d.position for d in dots]
        for i, a in enumerate(positions):
            for b in positions[i + 1 :]:
                assert abs(a - b) > 100.0

    def test_empty_chat(self):
        video = Video(video_id="empty", duration=100.0)
        assert NaivePeakDetector().propose(VideoChatLog(video=video), k=3) == []

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            NaivePeakDetector().propose(_burst_log(), k=0)


class TestToretter:
    def test_detects_burst_after_it_happens(self):
        log = _burst_log()
        dots = ToretterDetector().propose(log, k=1)
        assert len(dots) == 1
        # The event is reported at the end of the anomalous window, i.e. after
        # the burst started — the lack of delay adjustment the paper points out.
        assert dots[0].position >= 600.0

    def test_returns_at_most_k(self):
        dots = ToretterDetector().propose(_burst_log(), k=3)
        assert 1 <= len(dots) <= 3

    def test_quiet_chat_yields_low_scores(self):
        video = Video(video_id="flat", duration=1000.0)
        messages = [ChatMessage(timestamp=float(i), text="hi") for i in range(0, 1000, 10)]
        dots = ToretterDetector().propose(VideoChatLog(video=video, messages=messages), k=2)
        assert all(dot.score <= 1.0 for dot in dots)


class TestSocialSkip:
    def test_backward_seeks_mark_highlights(self):
        interactions = []
        for i in range(6):
            interactions.append(
                Interaction(timestamp=520.0, kind=InteractionKind.SEEK_BACKWARD, user=f"u{i}", target=480.0)
            )
        highlights = SocialSkipExtractor().extract(interactions, video_duration=1000.0, k=2)
        assert highlights
        top = highlights[0]
        assert 460.0 <= top.start <= 520.0

    def test_forward_seeks_do_not_create_highlights(self):
        interactions = [
            Interaction(timestamp=100.0, kind=InteractionKind.SEEK_FORWARD, user="u", target=300.0)
        ]
        assert SocialSkipExtractor().extract(interactions, video_duration=1000.0, k=2) == []

    def test_no_interactions(self):
        assert SocialSkipExtractor().extract([], video_duration=100.0, k=3) == []


class TestMoocer:
    def test_play_coverage_peak_found(self):
        plays = [PlayRecord(user=f"u{i}", start=500.0 + i, end=540.0 + i) for i in range(8)]
        plays.append(PlayRecord(user="stray", start=50.0, end=60.0))
        highlights = MoocerExtractor().extract(plays, video_duration=1000.0, k=1)
        assert len(highlights) == 1
        assert 480.0 <= highlights[0].start <= 545.0
        assert highlights[0].end >= highlights[0].start

    def test_no_plays(self):
        assert MoocerExtractor().extract([], video_duration=100.0, k=2) == []

    def test_requires_positive_duration(self):
        with pytest.raises(ValidationError):
            MoocerExtractor().extract([], video_duration=0.0, k=2)


class TestChatLSTMBaseline:
    def test_fit_and_propose(self, lol_dataset):
        baseline = ChatLSTMBaseline(hidden_size=10, n_epochs=1, frames_per_video=10, frame_step=30.0)
        baseline.fit(lol_dataset[:1])
        assert baseline.n_training_examples_ > 0
        assert baseline.training_seconds_ > 0
        dots = baseline.propose(lol_dataset[1].chat_log, k=3)
        assert 1 <= len(dots) <= 3
        positions = [d.position for d in dots]
        assert positions == sorted(positions)
        for i, a in enumerate(positions):
            for b in positions[i + 1 :]:
                assert abs(a - b) > baseline.min_dot_spacing

    def test_unfitted_propose_raises(self, lol_dataset):
        with pytest.raises(ValidationError):
            ChatLSTMBaseline().propose(lol_dataset[0].chat_log, k=3)

    def test_fit_requires_videos(self):
        with pytest.raises(ValidationError):
            ChatLSTMBaseline().fit([])


class TestJointLSTMBaseline:
    def test_fit_and_propose(self, lol_dataset, dota2_dataset):
        chat = ChatLSTMBaseline(hidden_size=8, n_epochs=1, frames_per_video=8, frame_step=40.0)
        baseline = JointLSTMBaseline(chat_baseline=chat, frame_step=40.0)
        baseline.fit(lol_dataset[:1])
        assert baseline.training_seconds_ > 0
        dots = baseline.propose(dota2_dataset[1].chat_log, k=3)
        assert 1 <= len(dots) <= 3
        assert all(0.0 <= d.score <= 1.0 for d in dots)

    def test_unfitted_propose_raises(self, dota2_dataset):
        with pytest.raises(ValidationError):
            JointLSTMBaseline().propose(dota2_dataset[0].chat_log, k=2)
