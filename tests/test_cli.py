"""Tests for the ``lightor`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parsed(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig7"])
        assert args.command == "run"
        assert args.experiment == "fig7"
        assert args.scale == "small"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig7", "--scale", "huge"])


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig2", "fig7", "table1"):
            assert experiment_id in output

    def test_run_fig2(self, capsys):
        assert main(["run", "fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--k", "3"]) == 0
        output = capsys.readouterr().out
        assert "red dots" in output
        assert "extracted highlights" in output
