"""Tests for the ``lightor`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parsed(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig7"])
        assert args.command == "run"
        assert args.experiment == "fig7"
        assert args.scale == "small"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig7", "--scale", "huge"])


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig2", "fig7", "table1"):
            assert experiment_id in output

    def test_run_fig2(self, capsys):
        assert main(["run", "fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--k", "3"]) == 0
        output = capsys.readouterr().out
        assert "red dots" in output
        assert "extracted highlights" in output


class TestStreamCommand:
    def test_stream_flags_parsed(self):
        args = build_parser().parse_args(
            ["stream", "--backend", "sqlite", "--db-path", "x.db", "--shards", "4"]
        )
        assert (args.backend, args.db_path, args.shards) == ("sqlite", "x.db", 4)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--backend", "cassandra"])

    def test_db_path_requires_sqlite(self, capsys):
        assert main(["stream", "--db-path", "x.db"]) == 1
        assert "--backend sqlite" in capsys.readouterr().out

    def test_invalid_counts_rejected(self, capsys):
        assert main(["stream", "--shards", "0"]) == 1
        assert main(["stream", "--channels", "0"]) == 1
        assert main(["stream", "--k", "0"]) == 1

    def test_unopenable_db_path_fails_cleanly(self, capsys, tmp_path):
        missing = tmp_path / "no_such_dir" / "x.db"
        assert main(["stream", "--backend", "sqlite", "--db-path", str(missing)]) == 1
        assert "cannot build the service tier" in capsys.readouterr().out

    def test_stream_help_documents_platform_flags(self, capsys):
        """The PR 2 flags must show up in --help (README mirrors this text)."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--help"])
        out = capsys.readouterr().out
        for flag in ("--backend", "--shards", "--db-path"):
            assert flag in out

    def test_sharded_sqlite_stream_end_to_end(self, capsys, tmp_path):
        db = tmp_path / "stream.db"
        argv = [
            "stream", "--channels", "1", "--shards", "2", "--quiet",
            "--backend", "sqlite", "--db-path", str(db),
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "batch parity OK" in output
        assert "persisted durably" in output
        assert (tmp_path / "stream.shard0.db").exists()
        assert (tmp_path / "stream.shard1.db").exists()
        # Reusing the files with a different shard count is refused.
        assert main(argv[:4] + ["4"] + argv[5:]) == 1
        assert "2-shard deployment" in capsys.readouterr().out


class TestLoadCommand:
    def test_load_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "load", "--channels", "6", "--viewers", "300", "--duration", "1800",
                "--shards", "4", "--batch-size", "256", "--workers", "3",
                "--zipf", "0.5", "--stretch", "--backend", "sqlite", "--db-path", "x.db",
            ]
        )
        assert (args.channels, args.viewers, args.duration) == (6, 300, 1800.0)
        assert (args.shards, args.batch_size, args.workers) == (4, 256, 3)
        assert (args.zipf, args.stretch, args.backend, args.db_path) == (
            0.5, True, "sqlite", "x.db",
        )

    def test_load_db_path_requires_sqlite(self, capsys):
        assert main(["load", "--db-path", "x.db"]) == 1
        assert "--backend sqlite" in capsys.readouterr().out

    def test_load_rejects_invalid_workload(self, capsys):
        assert main(["load", "--channels", "0"]) == 1
        assert "invalid workload" in capsys.readouterr().out

    def test_load_smoke_runs_end_to_end(self, capsys):
        assert main(["load", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "events/s" in out
        assert "0 divergences" in out
