"""Tests for the ``lightor`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parsed(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig7"])
        assert args.command == "run"
        assert args.experiment == "fig7"
        assert args.scale == "small"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig7", "--scale", "huge"])


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig2", "fig7", "table1"):
            assert experiment_id in output

    def test_run_fig2(self, capsys):
        assert main(["run", "fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--k", "3"]) == 0
        output = capsys.readouterr().out
        assert "red dots" in output
        assert "extracted highlights" in output


class TestStreamCommand:
    def test_stream_flags_parsed(self):
        args = build_parser().parse_args(
            ["stream", "--backend", "sqlite", "--db-path", "x.db", "--shards", "4"]
        )
        assert (args.backend, args.db_path, args.shards) == ("sqlite", "x.db", 4)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--backend", "cassandra"])

    def test_db_path_requires_sqlite(self, capsys):
        assert main(["stream", "--db-path", "x.db"]) == 1
        assert "--backend sqlite" in capsys.readouterr().out

    def test_invalid_counts_rejected(self, capsys):
        assert main(["stream", "--shards", "0"]) == 1
        assert main(["stream", "--channels", "0"]) == 1
        assert main(["stream", "--k", "0"]) == 1

    def test_resume_requires_sqlite_file(self, capsys):
        assert main(["stream", "--resume"]) == 1
        assert "--resume requires" in capsys.readouterr().out

    def test_invalid_checkpoint_cadence_rejected(self, capsys):
        assert main(["stream", "--checkpoint-every", "0"]) == 1
        assert "--checkpoint-every" in capsys.readouterr().out

    def test_unopenable_db_path_fails_cleanly(self, capsys, tmp_path):
        missing = tmp_path / "no_such_dir" / "x.db"
        assert main(["stream", "--backend", "sqlite", "--db-path", str(missing)]) == 1
        assert "cannot build the service tier" in capsys.readouterr().out

    def test_stream_help_documents_platform_flags(self, capsys):
        """The PR 2 flags must show up in --help (README mirrors this text)."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--help"])
        out = capsys.readouterr().out
        for flag in ("--backend", "--shards", "--db-path"):
            assert flag in out

    def test_sharded_sqlite_stream_end_to_end(self, capsys, tmp_path):
        db = tmp_path / "stream.db"
        argv = [
            "stream", "--channels", "1", "--shards", "2", "--quiet",
            "--backend", "sqlite", "--db-path", str(db),
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "batch parity OK" in output
        assert "persisted durably" in output
        assert (tmp_path / "stream.shard0.db").exists()
        assert (tmp_path / "stream.shard1.db").exists()
        # Reusing the files with a different shard count is refused.
        assert main(argv[:4] + ["4"] + argv[5:]) == 1
        assert "2-shard deployment" in capsys.readouterr().out


class TestLoadCommand:
    def test_load_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "load", "--channels", "6", "--viewers", "300", "--duration", "1800",
                "--shards", "4", "--batch-size", "256", "--workers", "3",
                "--zipf", "0.5", "--stretch", "--backend", "sqlite", "--db-path", "x.db",
            ]
        )
        assert (args.channels, args.viewers, args.duration) == (6, 300, 1800.0)
        assert (args.shards, args.batch_size, args.workers) == (4, 256, 3)
        assert (args.zipf, args.stretch, args.backend, args.db_path) == (
            0.5, True, "sqlite", "x.db",
        )

    def test_load_db_path_requires_sqlite(self, capsys):
        assert main(["load", "--db-path", "x.db"]) == 1
        assert "--backend sqlite" in capsys.readouterr().out

    def test_load_rejects_invalid_workload(self, capsys):
        assert main(["load", "--channels", "0"]) == 1
        assert "invalid workload" in capsys.readouterr().out

    def test_load_smoke_runs_end_to_end(self, capsys):
        assert main(["load", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "events/s" in out
        assert "0 divergences" in out

    def test_load_transport_parsed_and_validated(self):
        args = build_parser().parse_args(["load", "--transport", "http"])
        assert args.transport == "http"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "--transport", "carrier-pigeon"])

    def test_load_http_transport_end_to_end(self, capsys):
        argv = [
            "load", "--transport", "http", "--channels", "2", "--viewers", "20",
            "--duration", "600", "--shards", "2", "--workers", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "transport http" in out
        assert "0 divergences" in out

    def test_load_wire_codec_parsed_and_validated(self):
        args = build_parser().parse_args(["load", "--wire-codec", "binary"])
        assert args.wire_codec == "binary"
        assert build_parser().parse_args(["load"]).wire_codec == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "--wire-codec", "msgpack"])

    def test_load_wire_codec_rejects_inproc_transport(self, capsys):
        assert main(["load", "--smoke", "--wire-codec", "binary"]) == 1
        assert "wire transports" in capsys.readouterr().out

    def test_load_binary_http_smoke_end_to_end(self, capsys):
        argv = ["load", "--smoke", "--transport", "http", "--wire-codec", "binary"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "codec binary" in out
        assert "0 divergences" in out

    def test_chaos_mode_rejects_http_transport(self, capsys):
        argv = [
            "load", "--kill-after", "5", "--recover", "--backend", "sqlite",
            "--db-path", "x.db", "--transport", "http",
        ]
        assert main(argv) == 1
        assert "--transport inproc" in capsys.readouterr().out

    def test_chaos_flags_must_be_used_together(self, capsys):
        assert main(["load", "--kill-after", "5"]) == 1
        assert "--recover" in capsys.readouterr().out
        assert main(["load", "--recover"]) == 1
        assert "--kill-after" in capsys.readouterr().out

    def test_chaos_mode_requires_sqlite_file(self, capsys):
        assert main(["load", "--kill-after", "5", "--recover"]) == 1
        assert "--backend sqlite" in capsys.readouterr().out

    def test_chaos_smoke_kill_and_recover(self, capsys, tmp_path):
        argv = [
            "load", "--smoke", "--backend", "sqlite",
            "--db-path", str(tmp_path / "chaos.db"),
            "--kill-after", "15", "--recover", "--checkpoint-every", "64",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "killed after 15" in out
        assert "byte-identical" in out


class TestTraceAndScenarioCLI:
    SMALL = [
        "--channels", "2", "--viewers", "10", "--duration", "300",
        "--batch-size", "16", "--workers", "2",
    ]

    def test_trace_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "load", "--scenario", "flash-crowd", "--record", "x.trace",
                "--max-pending-per-channel", "2",
            ]
        )
        assert (args.scenario, args.record) == ("flash-crowd", "x.trace")
        assert args.max_pending_per_channel == 2
        args = build_parser().parse_args(["load", "--replay", "y.trace"])
        assert args.replay == "y.trace"
        defaults = build_parser().parse_args(["load"])
        assert (defaults.scenario, defaults.record, defaults.replay) == (
            None, None, None,
        )
        assert defaults.max_pending_per_channel is None

    def test_per_channel_flag_parsed_on_serve_and_cluster(self):
        for command in ("serve", "cluster"):
            args = build_parser().parse_args(
                [command, "--max-pending-per-channel", "4"]
            )
            assert args.max_pending_per_channel == 4

    def test_replay_excludes_scenario_and_record(self, capsys):
        assert main(["load", "--replay", "x.trace", "--record", "y.trace"]) == 1
        assert "--replay drives a recorded workload" in capsys.readouterr().out
        assert main(["load", "--replay", "x.trace", "--scenario", "flash-crowd"]) == 1
        assert "--replay drives a recorded workload" in capsys.readouterr().out

    def test_chaos_excludes_trace_and_scenario_modes(self, capsys):
        base = [
            "load", "--kill-after", "5", "--recover", "--backend", "sqlite",
            "--db-path", "x.db",
        ]
        for extra in (
            ["--scenario", "flash-crowd"], ["--record", "x.trace"],
            ["--replay", "x.trace"],
        ):
            assert main(base + extra) == 1
            assert "chaos mode cannot be combined" in capsys.readouterr().out

    def test_per_channel_budget_validated(self, capsys):
        assert main(["load", "--smoke", "--transport", "http",
                     "--max-pending-per-channel", "0"]) == 1
        assert "at least 1" in capsys.readouterr().out
        assert main(["load", "--smoke", "--max-pending-per-channel", "1"]) == 1
        assert "wire transports" in capsys.readouterr().out
        assert main(["serve", "--max-pending-per-channel", "0"]) == 1
        assert "at least 1" in capsys.readouterr().out

    def test_unknown_scenario_lists_the_library(self, capsys):
        assert main(["load", "--scenario", "meteor-strike"] + self.SMALL) == 1
        out = capsys.readouterr().out
        assert "unknown scenario" in out
        for name in ("flash-crowd", "chat-flood", "reconnect-storm", "fairness"):
            assert name in out

    def test_scenario_knob_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "load", "--scenario", "flash-crowd",
                "--scenario-surge-factor", "3",
                "--scenario-flood-factor", "7",
                "--scenario-outage-start", "0.1",
                "--scenario-outage-length", "0.5",
            ]
        )
        assert args.scenario_surge_factor == 3
        assert args.scenario_flood_factor == 7
        assert args.scenario_outage_start == 0.1
        assert args.scenario_outage_length == 0.5
        defaults = build_parser().parse_args(["load"])
        assert defaults.scenario_surge_factor is None
        assert defaults.scenario_flood_factor is None
        assert defaults.scenario_outage_start is None
        assert defaults.scenario_outage_length is None

    def test_scenario_knobs_require_scenario(self, capsys):
        assert main(["load", "--scenario-surge-factor", "3"] + self.SMALL) == 1
        assert "require --scenario" in capsys.readouterr().out

    def test_scenario_knobs_validated(self, capsys):
        argv = [
            "load", "--scenario", "flash-crowd", "--scenario-surge-factor", "0",
        ] + self.SMALL
        assert main(argv) == 1
        assert "invalid scenario knobs" in capsys.readouterr().out
        argv = [
            "load", "--scenario", "reconnect-storm",
            "--scenario-outage-start", "0.8", "--scenario-outage-length", "0.8",
        ] + self.SMALL
        assert main(argv) == 1
        assert "invalid scenario knobs" in capsys.readouterr().out

    def test_scenario_knob_drives_a_milder_surge(self, capsys):
        argv = [
            "load", "--scenario", "flash-crowd", "--scenario-surge-factor", "2",
        ] + self.SMALL
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "scenario flash-crowd" in out
        assert "0 divergences" in out

    def test_unreadable_trace_fails_cleanly(self, capsys, tmp_path):
        missing = tmp_path / "nope.trace"
        assert main(["load", "--replay", str(missing)]) == 1
        assert "cannot read trace" in capsys.readouterr().out
        garbage = tmp_path / "garbage.trace"
        garbage.write_bytes(b"NOT A TRACE AT ALL")
        assert main(["load", "--replay", str(garbage)]) == 1
        assert "cannot read trace" in capsys.readouterr().out

    def test_record_then_replay_end_to_end(self, capsys, tmp_path):
        """The tentpole loop: record a run, replay it, gate on fingerprints."""
        trace = tmp_path / "run.trace"
        assert main(["load", "--record", str(trace)] + self.SMALL) == 0
        out = capsys.readouterr().out
        assert "recorded trace:" in out
        assert "0 divergences" in out
        assert trace.exists()
        # Replay on a different topology — and a different --seed, which
        # must not matter: the model retrains from the recorded spec.
        argv = ["load", "--replay", str(trace), "--shards", "2", "--seed", "999"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "byte-identical to the recording" in out

    def test_scenario_smoke_with_recording(self, capsys, tmp_path):
        trace = tmp_path / "surge.trace"
        argv = [
            "load", "--scenario", "flash-crowd", "--record", str(trace),
        ] + self.SMALL
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "scenario flash-crowd" in out
        assert "recorded trace:" in out
        assert "0 divergences" in out
        # The recorded scenario replays like any other trace.
        assert main(["load", "--replay", str(trace)]) == 0
        assert "byte-identical to the recording" in capsys.readouterr().out

    def test_load_help_documents_trace_flags(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "--help"])
        out = capsys.readouterr().out
        for flag in ("--scenario", "--record", "--replay", "--max-pending-per-channel"):
            assert flag in out


class TestServeCommand:
    def test_serve_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "serve", "--host", "0.0.0.0", "--port", "9001", "--shards", "2",
                "--backend", "sqlite", "--db-path", "x.db", "--max-pending", "16",
                "--worker-threads", "4", "--checkpoint-every", "64",
            ]
        )
        assert (args.host, args.port, args.shards) == ("0.0.0.0", 9001, 2)
        assert (args.backend, args.db_path) == ("sqlite", "x.db")
        assert (args.max_pending, args.worker_threads, args.checkpoint_every) == (16, 4, 64)

    def test_serve_db_path_requires_sqlite(self, capsys):
        assert main(["serve", "--db-path", "x.db"]) == 1
        assert "--backend sqlite" in capsys.readouterr().out

    def test_serve_invalid_knobs_rejected(self, capsys):
        assert main(["serve", "--shards", "0"]) == 1
        assert main(["serve", "--checkpoint-every", "0"]) == 1
        assert main(["serve", "--max-pending", "0"]) == 1
        assert main(["serve", "--port", "-1"]) == 1

    def test_serve_unopenable_db_path_fails_cleanly(self, capsys, tmp_path):
        missing = tmp_path / "no_such_dir" / "x.db"
        assert main(["serve", "--backend", "sqlite", "--db-path", str(missing)]) == 1
        assert "cannot build the service tier" in capsys.readouterr().out

    def test_serve_help_documents_gateway_flags(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--help"])
        out = capsys.readouterr().out
        for flag in (
            "--max-pending", "--checkpoint-every", "--backend", "--port",
            "--wire-codec",
        ):
            assert flag in out

    def test_serve_wire_codec_parsed_and_validated(self):
        args = build_parser().parse_args(["serve", "--wire-codec", "binary"])
        assert args.wire_codec == "binary"
        assert build_parser().parse_args(["serve"]).wire_codec == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--wire-codec", "msgpack"])
        args = build_parser().parse_args(["cluster", "--wire-codec", "binary"])
        assert args.wire_codec == "binary"


class TestRecoverCommand:
    def test_recover_requires_db_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover"])

    def test_recover_reports_empty_database(self, capsys, tmp_path):
        assert main(["recover", "--db-path", str(tmp_path / "empty.db")]) == 0
        assert "no checkpointed live sessions" in capsys.readouterr().out

    def test_recover_reports_and_ends_a_killed_run(self, capsys, tmp_path):
        from repro import LightorConfig
        from repro.core.initializer.initializer import HighlightInitializer
        from repro.datasets import DatasetSpec, build_dataset
        from repro.platform.sharding import ShardedLightorService

        # A "killed" run: drive live chat into a durable tier, then drop the
        # file handles without any shutdown.
        db_path = tmp_path / "killed.db"
        dataset = build_dataset(DatasetSpec.dota2(size=2, seed=2020))
        initializer = HighlightInitializer(config=LightorConfig())
        initializer.fit([dataset[0].training_pair])
        service = ShardedLightorService.create(
            1, initializer, backend="sqlite", db_path=db_path, checkpoint_every=100
        )
        target = dataset[1]
        service.start_live(target.video)
        service.ingest_chat_batch(
            target.video.video_id, list(target.chat_log.messages[:500]), persist=True
        )
        for shard in service.shards:
            shard.store.close()

        assert main(["recover", "--db-path", str(db_path)]) == 0
        out = capsys.readouterr().out
        assert "recovered 1 live session(s)" in out
        assert "500 messages" in out

        assert main(["recover", "--db-path", str(db_path), "--end"]) == 0
        out = capsys.readouterr().out
        assert "finalized with" in out

        assert main(["recover", "--db-path", str(db_path)]) == 0
        assert "no checkpointed live sessions" in capsys.readouterr().out
