"""Tests for the Highlight Extractor (plays, filtering, classifier, aggregation, loop)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LightorConfig
from repro.core.extractor.aggregation import aggregate_type_ii, move_backward
from repro.core.extractor.classifier import (
    RedDotTypeClassifier,
    extract_play_position_features,
)
from repro.core.extractor.extractor import HighlightExtractor
from repro.core.extractor.filtering import PlayFilter, overlap_graph_inliers
from repro.core.extractor.plays import interactions_to_plays, plays_near_dot, plays_per_user
from repro.core.types import (
    Highlight,
    Interaction,
    InteractionKind,
    PlayRecord,
    RedDot,
    RedDotType,
)
from repro.utils.validation import ValidationError


def _play(start, end, user="u"):
    return PlayRecord(user=user, start=start, end=end)


class TestInteractionsToPlays:
    def test_play_then_stop(self):
        events = [
            Interaction(timestamp=10.0, kind=InteractionKind.PLAY, user="a"),
            Interaction(timestamp=30.0, kind=InteractionKind.STOP, user="a"),
        ]
        plays = interactions_to_plays(events)
        assert plays == [PlayRecord(user="a", start=10.0, end=30.0)]

    def test_seek_closes_and_reopens(self):
        # Arrival order: play from 10, seek back to 5 at position 30, stop at
        # 20 while re-watching.  Two plays: [10, 30] and [5, 20].
        events = [
            Interaction(timestamp=10.0, kind=InteractionKind.PLAY, user="a"),
            Interaction(timestamp=30.0, kind=InteractionKind.SEEK_BACKWARD, user="a", target=5.0),
            Interaction(timestamp=20.0, kind=InteractionKind.STOP, user="a"),
        ]
        plays = interactions_to_plays(events)
        assert _play(10.0, 30.0, "a") in plays
        assert _play(5.0, 20.0, "a") in plays

    def test_dangling_play_closed_at_last_position(self):
        events = [
            Interaction(timestamp=10.0, kind=InteractionKind.PLAY, user="a"),
            Interaction(timestamp=50.0, kind=InteractionKind.PAUSE, user="b"),
        ]
        plays = interactions_to_plays(events, video_duration=100.0)
        assert plays == []  # a's play never advanced; zero-length plays are dropped

    def test_users_are_independent(self):
        events = [
            Interaction(timestamp=10.0, kind=InteractionKind.PLAY, user="a"),
            Interaction(timestamp=15.0, kind=InteractionKind.PLAY, user="b"),
            Interaction(timestamp=20.0, kind=InteractionKind.STOP, user="a"),
            Interaction(timestamp=40.0, kind=InteractionKind.STOP, user="b"),
        ]
        grouped = plays_per_user(interactions_to_plays(events))
        assert grouped["a"] == [_play(10.0, 20.0, "a")]
        assert grouped["b"] == [_play(15.0, 40.0, "b")]

    def test_empty_input(self):
        assert interactions_to_plays([]) == []


class TestPlaysNearDot:
    def test_selects_plays_within_radius(self):
        dot = RedDot(position=100.0)
        plays = [_play(30.0, 39.0), _play(90.0, 110.0), _play(160.5, 200.0)]
        near = plays_near_dot(plays, dot, radius=60.0)
        assert _play(90.0, 110.0) in near
        assert _play(160.5, 200.0) not in near  # starts just outside the +60s band
        assert _play(30.0, 39.0) not in near

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            plays_near_dot([], RedDot(position=10.0), radius=-1.0)


class TestFiltering:
    def test_graph_outlier_removal_keeps_cluster(self):
        cluster = [_play(100.0, 120.0, f"u{i}") for i in range(4)]
        outlier = _play(300.0, 320.0, "far")
        inliers, outliers = overlap_graph_inliers(cluster + [outlier])
        assert outlier in outliers
        assert len(inliers) == 4

    def test_graph_with_single_play(self):
        play = _play(0.0, 10.0)
        inliers, outliers = overlap_graph_inliers([play])
        assert inliers == [play] and outliers == []

    def test_filter_removes_short_and_long_plays(self, config):
        dot = RedDot(position=100.0)
        plays = [
            _play(98.0, 100.5, "probe"),       # too short
            _play(90.0, 700.0, "marathon"),    # too long
            _play(100.0, 125.0, "good1"),
            _play(101.0, 124.0, "good2"),
        ]
        report = PlayFilter(config=config).apply(plays, dot)
        kept_users = {p.user for p in report.kept}
        assert kept_users == {"good1", "good2"}
        assert report.removed_short == 1
        assert report.removed_long == 1
        assert report.input_count == 4

    def test_filter_removes_far_plays(self, config):
        dot = RedDot(position=1000.0)
        plays = [_play(0.0, 20.0, "far"), _play(995.0, 1020.0, "near")]
        kept = PlayFilter(config=config).filter(plays, dot)
        assert [p.user for p in kept] == ["near"]

    def test_report_counts_are_consistent(self, config):
        dot = RedDot(position=100.0)
        plays = [_play(95.0 + i, 120.0 + i, f"u{i}") for i in range(5)]
        report = PlayFilter(config=config).apply(plays, dot)
        assert report.kept_count + report.removed_count == report.input_count

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=500), st.floats(min_value=1, max_value=200)
            ),
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_filter_output_is_subset_of_input(self, config, raw):
        plays = [_play(start, start + length, f"u{i}") for i, (start, length) in enumerate(raw)]
        dot = RedDot(position=250.0)
        kept = PlayFilter(config=config).filter(plays, dot)
        assert all(play in plays for play in kept)


class TestClassifier:
    def test_feature_extraction(self):
        dot = RedDot(position=100.0)
        plays = [
            _play(100.5, 130.0, "after"),
            _play(60.0, 90.0, "before"),
            _play(80.0, 110.0, "across"),
        ]
        features = extract_play_position_features(plays, dot)
        assert features.plays_after == 1
        assert features.plays_before == 1
        assert features.plays_across == 1
        assert features.total == 3

    def test_rule_based_type_ii_when_plays_start_after_dot(self):
        dot = RedDot(position=100.0)
        plays = [_play(100.0 + i, 130.0 + i, f"u{i}") for i in range(8)]
        assert RedDotTypeClassifier().classify(plays, dot) is RedDotType.TYPE_II

    def test_rule_based_type_i_when_viewers_hunt_backwards(self):
        dot = RedDot(position=100.0)
        plays = [_play(60.0 + i, 90.0 + i, f"u{i}") for i in range(5)]
        plays += [_play(101.0, 120.0, "probe")]
        assert RedDotTypeClassifier().classify(plays, dot) is RedDotType.TYPE_I

    def test_unknown_without_plays(self):
        assert RedDotTypeClassifier().classify([], RedDot(position=5.0)) is RedDotType.UNKNOWN

    def test_learned_classifier_beats_chance(self):
        import numpy as np

        rng = np.random.default_rng(5)
        features = []
        labels = []
        dot = RedDot(position=100.0)
        for _ in range(60):
            if rng.random() < 0.5:  # Type II example
                plays = [_play(100.0 + rng.uniform(0, 5), 130.0, f"u{i}") for i in range(6)]
                labels.append(True)
            else:  # Type I example
                plays = [_play(60.0 + rng.uniform(0, 20), 95.0, f"u{i}") for i in range(4)]
                plays += [_play(100.0, 128.0, "probe")]
                labels.append(False)
            features.append(extract_play_position_features(plays, dot))
        classifier = RedDotTypeClassifier().fit(features, labels)
        correct = sum(
            (classifier.classify_features(f) is RedDotType.TYPE_II) == label
            for f, label in zip(features, labels)
        )
        assert correct / len(labels) >= 0.8

    def test_probability_bounds(self):
        dot = RedDot(position=100.0)
        plays = [_play(101.0, 130.0)]
        probability = RedDotTypeClassifier().probability_type_ii(plays, dot)
        assert 0.0 <= probability <= 1.0

    def test_fit_validation(self):
        with pytest.raises(ValidationError):
            RedDotTypeClassifier().fit([], [])


class TestAggregation:
    def test_median_aggregation(self):
        dot = RedDot(position=100.0)
        plays = [_play(100.0, 130.0), _play(104.0, 128.0), _play(108.0, 136.0)]
        highlight = aggregate_type_ii(plays, dot)
        assert highlight.start == pytest.approx(104.0)
        assert highlight.end == pytest.approx(130.0)

    def test_drops_plays_ending_before_dot(self):
        dot = RedDot(position=100.0)
        plays = [_play(40.0, 60.0), _play(100.0, 130.0), _play(102.0, 128.0)]
        highlight = aggregate_type_ii(plays, dot)
        assert highlight.start >= 100.0

    def test_no_usable_plays_raises(self):
        dot = RedDot(position=100.0)
        with pytest.raises(ValidationError):
            aggregate_type_ii([_play(10.0, 20.0)], dot)

    def test_median_robust_to_outlier(self):
        dot = RedDot(position=100.0)
        plays = [_play(100.0, 130.0), _play(101.0, 131.0), _play(102.0, 132.0), _play(150.0, 500.0)]
        highlight = aggregate_type_ii(plays, dot)
        assert highlight.start <= 103.0
        assert highlight.end <= 140.0

    def test_move_backward(self):
        dot = RedDot(position=100.0)
        assert move_backward(dot, 20.0).position == 80.0
        assert move_backward(RedDot(position=5.0), 20.0).position == 0.0
        with pytest.raises(ValidationError):
            move_backward(dot, 0.0)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=100, max_value=160), st.floats(min_value=1, max_value=60)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_aggregated_boundary_within_play_envelope(self, raw):
        dot = RedDot(position=100.0)
        plays = [_play(start, start + length, f"u{i}") for i, (start, length) in enumerate(raw)]
        highlight = aggregate_type_ii(plays, dot)
        assert min(p.start for p in plays) <= highlight.start <= max(p.start for p in plays)
        assert highlight.end <= max(p.end for p in plays)


class TestHighlightExtractorLoop:
    def _source_for(self, plays_by_round):
        def source(dot, round_index):
            return plays_by_round[min(round_index, len(plays_by_round) - 1)]

        return source

    def test_type_ii_converges_in_one_round(self, config):
        dot = RedDot(position=100.0)
        plays = [_play(100.0 + i, 130.0 + i, f"u{i}") for i in range(6)]
        extractor = HighlightExtractor(config=config)
        result = extractor.extract(dot, self._source_for([plays]))
        assert result.converged
        assert result.highlight is not None
        assert 100.0 <= result.highlight.start <= 106.0
        assert result.final_type is RedDotType.TYPE_II

    def test_type_i_dot_moves_backwards(self, config):
        dot = RedDot(position=200.0)
        # Round 0: hunting pattern (Type I) ... later rounds: clean Type II.
        hunting = [_play(150.0 + i * 3, 185.0 + i * 3, f"h{i}") for i in range(5)]
        hunting += [_play(200.0, 210.0, "probe")]
        clean = [_play(180.0 + i, 215.0 + i, f"c{i}") for i in range(6)]
        extractor = HighlightExtractor(config=config)
        result = extractor.extract(dot, self._source_for([hunting, clean, clean]))
        assert result.iterations[0].classified_type is RedDotType.TYPE_I
        assert result.dot.position < 200.0
        assert result.highlight is not None

    def test_no_plays_yields_unknown_and_no_highlight(self, config):
        extractor = HighlightExtractor(config=config)
        result = extractor.extract(RedDot(position=50.0), self._source_for([[]]))
        assert result.highlight is None
        assert not result.converged
        assert result.final_type is RedDotType.UNKNOWN

    def test_iteration_cap_respected(self, config):
        capped = config.with_overrides(max_extractor_iterations=3)
        hunting = [_play(150.0, 185.0, "h0"), _play(140.0, 170.0, "h1"), _play(200.0, 212.0, "p")]
        extractor = HighlightExtractor(config=capped)
        result = extractor.extract(RedDot(position=200.0), self._source_for([hunting]))
        assert result.n_iterations <= 3

    def test_accepts_raw_interactions(self, config):
        events = []
        for i in range(6):
            events.append(Interaction(timestamp=100.0 + i, kind=InteractionKind.PLAY, user=f"u{i}"))
            events.append(Interaction(timestamp=130.0 + i, kind=InteractionKind.STOP, user=f"u{i}"))
        extractor = HighlightExtractor(config=config)
        result = extractor.extract(RedDot(position=100.0), lambda dot, i: events)
        assert result.highlight is not None

    def test_extract_all_preserves_order(self, config):
        plays = [_play(100.0 + i, 130.0 + i, f"u{i}") for i in range(6)]
        extractor = HighlightExtractor(config=config)
        dots = [RedDot(position=100.0), RedDot(position=101.0)]
        results = extractor.extract_all(dots, self._source_for([plays]))
        assert len(results) == 2
