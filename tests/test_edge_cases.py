"""Edge cases the seed suite skipped: empty logs, single messages, boundary
dots, empty batches.

Every case here was picked because a production ingest path can produce it:
channels with dead chat, one-message videos, dots pinned at position 0 or at
the video duration, and empty work batches.
"""

from __future__ import annotations

import pytest

from repro.core.config import LightorConfig
from repro.core.extractor.extractor import HighlightExtractor
from repro.core.initializer.features import WindowFeatureExtractor
from repro.core.initializer.windows import build_sliding_windows
from repro.core.pipeline import LightorPipeline
from repro.core.types import ChatMessage, RedDot, Video, VideoChatLog
from repro.datasets.loaders import training_pairs
from repro.eval.matching import is_correct_end, is_correct_start
from repro.eval.metrics import video_precision_start_at_k
from repro.streaming import StreamingInitializer, StreamOrchestrator
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def pipeline(dota2_dataset):
    fitted = LightorPipeline(LightorConfig())
    fitted.fit(training_pairs(dota2_dataset[:1]))
    return fitted


def _log(duration: float, timestamps: list[float], text: str = "gg") -> VideoChatLog:
    video = Video(video_id="edge", duration=duration)
    messages = [ChatMessage(timestamp=t, text=text) for t in timestamps]
    return VideoChatLog(video=video, messages=messages)


class TestEmptyChat:
    def test_propose_on_empty_chat_returns_no_dots(self, pipeline):
        assert pipeline.propose(_log(600.0, []), k=5) == []

    def test_run_on_empty_chat_produces_empty_result(self, pipeline):
        result = pipeline.run(_log(600.0, []), lambda dot, round_index: [], k=5)
        assert result.red_dots == []
        assert result.extractions == []
        assert result.start_positions == []
        assert result.end_positions == []
        assert result.highlights == []

    def test_windows_on_empty_chat(self):
        assert build_sliding_windows(_log(600.0, []), window_size=25.0) == []

    def test_streaming_empty_stream_finalizes_clean(self, fitted_initializer):
        streaming = StreamingInitializer.from_initializer(fitted_initializer, k=5)
        assert streaming.finalize(600.0) == []
        assert streaming.current_dots() == []

    def test_precision_of_empty_return_is_zero(self):
        assert video_precision_start_at_k([], [], k=5) == 0.0


class TestSingleMessage:
    def test_single_message_video_proposes_at_most_one_dot(self, pipeline):
        chat_log = _log(600.0, [42.0])
        dots = pipeline.propose(chat_log, k=5)
        assert len(dots) <= 1
        for dot in dots:
            assert 0.0 <= dot.position <= 600.0

    def test_single_message_feature_matrix_is_finite(self):
        import numpy as np

        windows = build_sliding_windows(_log(600.0, [42.0]), window_size=25.0)
        matrix = WindowFeatureExtractor().feature_matrix(windows)
        assert np.isfinite(matrix).all()

    def test_single_message_streaming_parity(self, fitted_initializer):
        chat_log = _log(600.0, [42.0])
        batch = fitted_initializer.propose(chat_log, k=5)
        streaming = StreamingInitializer.from_initializer(
            fitted_initializer, k=5, video_id="edge"
        )
        for message in chat_log.messages:
            streaming.ingest(message)
        assert streaming.finalize(600.0) == batch

    def test_message_at_duration_is_ignored_like_batch(self, fitted_initializer):
        # A message stamped exactly at the video duration belongs to no
        # half-open window in either engine.
        chat_log = _log(600.0, [100.0, 600.0])
        batch = build_sliding_windows(chat_log, window_size=25.0)
        assert sum(w.message_count for w in batch) == 1


class TestBoundaryDots:
    def test_dot_at_position_zero_survives_extraction(self, pipeline):
        dot = RedDot(position=0.0)
        result = pipeline.extractor.extract(dot, lambda d, r: [], video_duration=600.0)
        assert result.highlight is None
        assert result.dot.position == 0.0

    def test_dot_at_duration_with_plays_clamped(self, pipeline):
        from repro.core.types import PlayRecord

        duration = 600.0
        dot = RedDot(position=duration)
        plays = [
            PlayRecord(user=f"u{i}", start=duration - 40.0, end=duration)
            for i in range(12)
        ]
        result = pipeline.extractor.extract(
            dot, lambda d, r: plays, video_duration=duration
        )
        if result.highlight is not None:
            assert 0.0 <= result.highlight.start <= result.highlight.end <= duration

    def test_matching_predicates_at_boundaries(self):
        from repro.core.types import Highlight

        highlight = Highlight(start=0.0, end=30.0)
        assert is_correct_start(0.0, [highlight])
        assert is_correct_end(30.0, [highlight])
        highlight_at_end = Highlight(start=570.0, end=600.0)
        assert is_correct_start(600.0, [highlight_at_end])
        assert is_correct_end(600.0, [highlight_at_end])


class TestEmptyBatches:
    def test_run_many_with_empty_sequence(self, pipeline):
        assert pipeline.run_many([], lambda video: (lambda d, r: [])) == []

    def test_extract_all_with_no_dots(self, pipeline):
        assert pipeline.extractor.extract_all([], lambda d, r: []) == []

    def test_unconfigured_extractor_is_reported(self, pipeline, dota2_dataset):
        broken = LightorPipeline(
            LightorConfig(), initializer=pipeline.initializer, extractor=pipeline.extractor
        )
        broken.extractor = None
        with pytest.raises(ValidationError, match="extractor"):
            broken.propose(dota2_dataset[1].chat_log, k=3)

    def test_orchestrator_interactions_before_any_chat(self, fitted_initializer):
        from repro.core.types import Interaction, InteractionKind

        orchestrator = StreamOrchestrator(initializer=fitted_initializer)
        events = orchestrator.ingest_interactions(
            "cold-channel",
            [Interaction(timestamp=10.0, kind=InteractionKind.PLAY, user="u")],
        )
        assert events == []
        assert orchestrator.close_session("cold-channel") == []


class TestDegenerateGeometry:
    def test_window_larger_than_video(self, pipeline):
        chat_log = _log(10.0, [1.0, 2.0, 3.0])
        windows = build_sliding_windows(chat_log, window_size=25.0)
        assert len(windows) == 1
        assert windows[0].end == 10.0
        dots = pipeline.propose(chat_log, k=5)
        for dot in dots:
            assert 0.0 <= dot.position <= 10.0

    def test_messages_per_hour_of_short_video(self):
        chat_log = _log(1.0, [0.5])
        assert chat_log.messages_per_hour == pytest.approx(3600.0)
