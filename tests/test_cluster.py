"""Tests for the multi-process shard cluster (supervisor + front door).

Four properties matter:

* **lifecycle** — boot is supervised (a child dying during boot tears the
  fleet down), SIGTERM stops every worker with exit code 0, and ``stop()``
  is idempotent;
* **routing parity** — the front door's ring places every id on exactly
  the shard the in-process front door would pick, and a concurrent
  multi-channel run over the cluster persists byte-identical state to the
  sequential single-shard oracle;
* **failure paths** — a SIGKILLed worker is reported by the supervisor,
  survivors stop cleanly, and ``repro recover`` on the dead shard's own
  database lands on the byte-identical end state of an uninterrupted run;
* **readiness protocol** — ``repro serve --port 0`` prints the
  machine-readable ``listening on host:port`` line the supervisor parses.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.loadgen import LoadWorkload, WorkloadSpec, run_load
from repro.platform import codecs
from repro.platform.backends import SQLiteStore
from repro.platform.client import LightorClient
from repro.platform.cluster import ClusterFrontDoor, ShardClusterSupervisor
from repro.platform.sharding import ShardedLightorService, shard_db_path
from repro.utils.validation import ValidationError

SMALL = WorkloadSpec(channels=3, viewers=45, duration=900.0, batch_size=32, seed=11)
CHUNK = 64


def _chunks(items, size=CHUNK):
    return [items[i : i + size] for i in range(0, len(items), size)]


class TestSupervisorLifecycle:
    def test_boot_healthz_and_graceful_stop(self):
        supervisor = ShardClusterSupervisor(2, boot_timeout=60)
        supervisor.start()
        try:
            assert len(supervisor.addresses) == 2
            assert all(port > 0 for _, port in supervisor.addresses)
            assert supervisor.dead_shards() == []
            front = supervisor.front_door()
            payloads = front.healthz()
            assert [p["status"] for p in payloads] == ["ok", "ok"]
            assert all(p["shards"] == 1 for p in payloads)
            front.close()
            front.close()  # closing a front door is idempotent
        finally:
            codes = supervisor.stop()
        # SIGTERM is the graceful path: every worker drains and exits 0.
        assert codes == [0, 0]
        # Idempotent: the second stop returns the cached result, no errors.
        assert supervisor.stop() == [0, 0]
        assert supervisor.dead_shards() == []

    def test_boot_failure_tears_down_the_fleet(self, tmp_path):
        """A child that dies during boot (here: a poisoned shard database)
        must abort the whole start and leave no survivor running."""
        base = tmp_path / "poisoned.db"
        # Worker 1 will open shard_db_path(base, 1) and its single-shard
        # service suffixes once more; pre-write a mismatched ring marker
        # there so that worker refuses to boot.
        poison = SQLiteStore(shard_db_path(shard_db_path(base, 1), 0))
        poison.set_meta("n_shards", "4")
        poison.close()
        supervisor = ShardClusterSupervisor(
            2, backend="sqlite", db_path=base, boot_timeout=60
        )
        with pytest.raises(RuntimeError, match="shard 1"):
            supervisor.start()
        for worker in supervisor.workers:
            assert not worker.alive

    def test_invalid_configurations_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            ShardClusterSupervisor(0)
        with pytest.raises(ValidationError, match="sqlite"):
            ShardClusterSupervisor(2, db_path=tmp_path / "x.db")
        with pytest.raises(ValidationError, match="memory"):
            ShardClusterSupervisor(2, backend="sqlite", db_path=":memory:")
        with pytest.raises(ValidationError, match="wire codec"):
            ShardClusterSupervisor(2, wire_codec="msgpack")
        supervisor = ShardClusterSupervisor(1)
        supervisor._started = True
        with pytest.raises(ValidationError, match="already started"):
            supervisor.start()


class TestFrontDoorRouting:
    def test_ring_matches_inproc_placement(self, fitted_initializer):
        """The wire front door and the in-process front door must place
        every id identically — that is what makes their runs comparable."""
        inproc = ShardedLightorService.create(4, fitted_initializer)
        try:
            # The addresses are never dialled: placement is pure hashing.
            front = ClusterFrontDoor([("127.0.0.1", 1)] * 4)
            ids = [f"channel-{1000 + i}" for i in range(200)]
            assert [front.shard_index(i) for i in ids] == [
                inproc.shard_index(i) for i in ids
            ]
            # Memoized lookups answer the same as fresh ones.
            assert [front.shard_index(i) for i in ids] == [
                inproc.shard_index(i) for i in ids
            ]
        finally:
            inproc.close()

    def test_empty_address_list_rejected(self):
        with pytest.raises(ValidationError):
            ClusterFrontDoor([])


class TestClusterParity:
    def test_concurrent_cluster_run_is_byte_identical_to_inproc(
        self, fitted_initializer
    ):
        """The tentpole acceptance bar: the same multi-channel workload
        driven concurrently through shard *processes* must persist
        byte-identical state to the in-process sharded run — and both to
        the sequential single-shard oracle."""
        workload = LoadWorkload.from_spec(SMALL)
        inproc = run_load(
            SMALL, fitted_initializer, shards=2, workers=2, workload=workload
        )
        cluster = run_load(
            SMALL, fitted_initializer, shards=2, workers=2, workload=workload,
            transport="cluster",
        )
        assert cluster.transport == "cluster" and cluster.shards == 2
        assert cluster.oracle_checked and cluster.divergences == []
        assert {v: o.fingerprint for v, o in cluster.outcomes.items()} == {
            v: o.fingerprint for v, o in inproc.outcomes.items()
        }
        assert "transport cluster" in cluster.describe()
        assert cluster.to_dict()["transport"] == "cluster"

    def test_binary_cluster_run_is_byte_identical_to_inproc(
        self, fitted_initializer
    ):
        """The binary codec across process boundaries must not change a
        persisted byte: worker gateways default to binary responses and
        the front door's clients speak binary frames both ways."""
        workload = LoadWorkload.from_spec(SMALL)
        inproc = run_load(
            SMALL, fitted_initializer, shards=2, workers=2, workload=workload
        )
        binary = run_load(
            SMALL, fitted_initializer, shards=2, workers=2, workload=workload,
            transport="cluster", wire_codec="binary",
        )
        assert binary.transport == "cluster" and binary.wire_codec == "binary"
        assert binary.oracle_checked and binary.divergences == []
        assert {v: o.fingerprint for v, o in binary.outcomes.items()} == {
            v: o.fingerprint for v, o in inproc.outcomes.items()
        }
        assert "codec binary" in binary.describe()


class TestClusterFailure:
    def test_sigkill_one_shard_reports_and_recovers_byte_exactly(
        self, fitted_initializer, dota2_dataset, tmp_path
    ):
        """SIGKILL a shard worker mid-stream: the supervisor must report
        the death, the survivors must still stop cleanly, and ``repro
        recover`` on the dead shard's own database must finalize to the
        byte-identical dots of an uninterrupted run."""
        base = tmp_path / "cluster.db"
        target = dota2_dataset[2]
        video_id = target.video.video_id
        prefix = list(target.chat_log.messages)[:300]

        supervisor = ShardClusterSupervisor(
            2, backend="sqlite", db_path=base, checkpoint_every=100, boot_timeout=60
        )
        supervisor.start()
        try:
            front = supervisor.front_door()
            victim = front.shard_index(video_id)
            front.start_live(target.video)
            for chunk in _chunks(prefix):
                # Persist the chat: recovery can only replay what the store
                # holds, exactly like the single-gateway kill test.
                front.ingest_chat_batch(video_id, chunk, persist=True)
            front.close()

            worker = supervisor.workers[victim]
            worker.process.send_signal(signal.SIGKILL)
            worker.process.wait()
            deadline = time.monotonic() + 10
            while supervisor.dead_shards() != [victim]:
                assert time.monotonic() < deadline
                time.sleep(0.02)
        finally:
            codes = supervisor.stop()
        # The SIGKILLed worker's code reflects the kill; the survivor
        # drained gracefully.
        assert codes[victim] != 0
        assert all(code == 0 for i, code in enumerate(codes) if i != victim)

        # Recover the dead shard's database exactly as the operator would:
        # the worker ran `serve --shards 1` over shard_db_path(base, victim).
        shard_base = shard_db_path(base, victim)
        assert main(["recover", "--db-path", shard_base, "--shards", "1"]) == 0
        assert main(["recover", "--db-path", shard_base, "--shards", "1", "--end"]) == 0

        oracle = ShardedLightorService.create(1, fitted_initializer)
        oracle.start_live(target.video)
        for chunk in _chunks(prefix):
            oracle.ingest_chat_batch(video_id, chunk)
        expected = oracle.end_live(video_id, target.video.duration)
        oracle.close()

        reopened = SQLiteStore(shard_db_path(shard_base, 0))
        try:
            recovered = reopened.get_red_dots(video_id)
            assert [codecs.red_dot_to_dict(d) for d in recovered] == [
                codecs.red_dot_to_dict(d) for d in expected
            ]
            assert reopened.get_session_snapshots() == {}
        finally:
            reopened.close()


class TestServeReadiness:
    def test_serve_port_zero_prints_listening_line_before_banner(self):
        """``repro serve --port 0`` must report the bound port on a
        machine-readable first line — supervised use depends on it."""
        src_dir = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir if not existing else os.pathsep.join(
            [src_dir, existing]
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline().strip()
            assert line.startswith("listening on ")
            host, _, port_text = line.removeprefix("listening on ").partition(":")
            port = int(port_text)
            assert port > 0
            with LightorClient(host, port, timeout=10) as client:
                assert client.healthz()["status"] == "ok"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            process.stdout.close()
