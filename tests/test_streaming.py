"""Unit tests for the streaming subsystem (events, extractor, sessions)."""

from __future__ import annotations

import pytest

from repro.core.config import LightorConfig
from repro.core.types import (
    ChatMessage,
    Interaction,
    InteractionKind,
    PlayRecord,
    RedDot,
    Video,
    VideoChatLog,
)
from repro.platform.crawler import ChatCrawler
from repro.platform.api import SimulatedStreamingAPI
from repro.platform.service import LightorWebService
from repro.platform.storage import InMemoryStore
from repro.simulation.chat import interleave_live
from repro.streaming import (
    DotEmitted,
    DotRetracted,
    EmitPolicy,
    HighlightRefined,
    StreamOrchestrator,
    StreamingExtractor,
    StreamingInitializer,
)
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError


class TestEmitPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            EmitPolicy(eval_every_messages=0)
        with pytest.raises(ValidationError):
            EmitPolicy(min_score=1.5)


class TestStreamingInitializer:
    def test_requires_fitted_model(self, config):
        from repro.core.initializer.initializer import HighlightInitializer

        with pytest.raises(ValidationError):
            StreamingInitializer.from_initializer(HighlightInitializer(config=config))

    def test_emits_then_retracts(self, fitted_initializer, dota2_dataset):
        chat_log = dota2_dataset[2].chat_log
        streaming = StreamingInitializer.from_initializer(
            fitted_initializer,
            k=3,
            policy=EmitPolicy(eval_every_messages=25, eval_every_seconds=15.0),
        )
        emitted, retracted = 0, 0
        for message in chat_log.messages:
            for event in streaming.ingest(message):
                if isinstance(event, DotEmitted):
                    emitted += 1
                elif isinstance(event, DotRetracted):
                    retracted += 1
        assert emitted > 0
        # k is small and the video has many bursts, so churn must occur.
        assert retracted > 0
        assert emitted - retracted == len(streaming.current_dots())

    def test_ingest_after_finalize_rejected(self, fitted_initializer, dota2_dataset):
        chat_log = dota2_dataset[2].chat_log
        streaming = StreamingInitializer.from_initializer(fitted_initializer, k=3)
        for message in chat_log.messages[:100]:
            streaming.ingest(message)
        streaming.finalize(chat_log.video.duration)
        with pytest.raises(ValidationError):
            streaming.ingest(chat_log.messages[100])

    def test_finalize_before_observed_chat_rejected(
        self, fitted_initializer, dota2_dataset
    ):
        """Closing a stream at a duration the chat already passed must fail
        loudly — the batch engine rejects such logs, and scoring sealed
        windows past the declared end would serve dots beyond the video."""
        chat_log = dota2_dataset[2].chat_log
        streaming = StreamingInitializer.from_initializer(fitted_initializer, k=5)
        for message in chat_log.messages:
            streaming.ingest(message)
        with pytest.raises(ValidationError, match="already observed"):
            streaming.finalize(chat_log.video.duration / 2)

    def test_finalize_is_idempotent(self, fitted_initializer, dota2_dataset):
        chat_log = dota2_dataset[2].chat_log
        streaming = StreamingInitializer.from_initializer(fitted_initializer, k=5)
        for message in chat_log.messages:
            streaming.ingest(message)
        first = streaming.finalize(chat_log.video.duration)
        second = streaming.finalize(chat_log.video.duration)
        assert first == second

    def test_min_score_gates_provisional_not_final(
        self, fitted_initializer, dota2_dataset
    ):
        chat_log = dota2_dataset[2].chat_log
        gated = StreamingInitializer.from_initializer(
            fitted_initializer,
            k=5,
            policy=EmitPolicy(min_score=0.9),
            video_id=chat_log.video.video_id,
        )
        for message in chat_log.messages:
            gated.ingest(message)
        assert all(dot.score >= 0.9 for dot in gated.current_dots())
        final = gated.finalize(chat_log.video.duration)
        assert final == fitted_initializer.propose(chat_log, k=5)

    def test_memory_cap_bounds_summaries(self, fitted_initializer, dota2_dataset):
        chat_log = dota2_dataset[2].chat_log
        bounded = StreamingInitializer.from_initializer(
            fitted_initializer, k=3, max_window_summaries=10
        )
        for message in chat_log.messages:
            bounded.ingest(message)
        assert bounded.window_summary_count <= 10

    def test_token_cache_stays_near_live_edge(self, fitted_initializer, dota2_dataset):
        chat_log = dota2_dataset[2].chat_log
        streaming = StreamingInitializer.from_initializer(fitted_initializer, k=3)
        peak_cache = 0
        for message in chat_log.messages:
            streaming.ingest(message)
            peak_cache = max(peak_cache, len(streaming._state._token_cache))
        # The cache only spans messages the seal frontier hasn't passed —
        # roughly one window of chat, never the whole stream.
        burst_bound = max(
            len(chat_log.messages_between(t, t + 50.0))
            for t in range(0, int(chat_log.video.duration), 25)
        )
        assert peak_cache <= max(burst_bound * 2, 50)
        assert peak_cache < len(chat_log.messages) / 4


def _viewer_round(dot_position: float, n_viewers: int, watch: float = 30.0):
    """Simple engaged viewers: click the dot, watch ``watch`` seconds, stop."""
    interactions = []
    for index in range(n_viewers):
        user = f"viewer_{index}"
        start = dot_position + 0.5 * index
        interactions.append(
            Interaction(timestamp=start, kind=InteractionKind.PLAY, user=user)
        )
        interactions.append(
            Interaction(timestamp=start + watch, kind=InteractionKind.STOP, user=user)
        )
    return interactions


class TestStreamingExtractor:
    def test_play_reconstruction_matches_batch(self):
        from repro.core.extractor.plays import interactions_to_plays

        interactions = [
            Interaction(timestamp=10.0, kind=InteractionKind.PLAY, user="a"),
            Interaction(timestamp=25.0, kind=InteractionKind.SEEK_BACKWARD, user="a", target=5.0),
            Interaction(timestamp=18.0, kind=InteractionKind.STOP, user="a"),
            Interaction(timestamp=40.0, kind=InteractionKind.PLAY, user="b"),
            Interaction(timestamp=55.0, kind=InteractionKind.PAUSE, user="b"),
        ]
        extractor = StreamingExtractor(config=LightorConfig())
        extractor.track(RedDot(position=15.0))
        for interaction in interactions:
            extractor.ingest(interaction)
        extractor.flush()
        batch_plays = interactions_to_plays(interactions)
        accumulator = next(iter(extractor._dots.values()))
        assert sorted(accumulator.plays, key=lambda p: (p.start, p.end)) == [
            play
            for play in batch_plays
            if play.start <= 15.0 + 60.0 and play.end >= 15.0 - 60.0
        ]

    def test_refinement_fires_after_enough_plays(self):
        config = LightorConfig()
        extractor = StreamingExtractor(config=config, min_plays_for_refinement=8)
        dot = RedDot(position=130.0, window=(120.0, 145.0))
        extractor.track(dot)
        events = []
        for interaction in _viewer_round(125.0, n_viewers=12):
            events.extend(extractor.ingest(interaction))
        refinements = [e for e in events if isinstance(e, HighlightRefined)]
        assert refinements, "enough consistent plays must trigger a refinement"
        refined = refinements[-1]
        assert refined.highlight is not None or refined.moved_to is not None
        assert extractor.tracked_dots()[0].position <= dot.position

    def test_ring_buffer_bounds_plays(self):
        extractor = StreamingExtractor(
            config=LightorConfig(),
            min_plays_for_refinement=1000,
            max_plays_per_dot=16,
        )
        extractor.track(RedDot(position=100.0))
        for play_index in range(100):
            extractor.ingest_play(
                PlayRecord(user=f"u{play_index}", start=95.0, end=120.0)
            )
        accumulator = next(iter(extractor._dots.values()))
        assert accumulator.play_count == 16

    def test_untracked_dot_receives_nothing(self):
        extractor = StreamingExtractor(config=LightorConfig())
        dot = RedDot(position=100.0, window=(90.0, 115.0))
        extractor.track(dot)
        extractor.untrack(dot)
        events = extractor.ingest_play(PlayRecord(user="u", start=95.0, end=120.0))
        assert events == []
        assert extractor.tracked_dots() == []


class TestInterleaveLive:
    def test_duplicate_logs_with_equal_timestamps_merge_cleanly(self):
        video = Video(video_id="twin", duration=100.0)
        log = VideoChatLog(
            video=video,
            messages=[ChatMessage(timestamp=10.0, text="gg"),
                      ChatMessage(timestamp=10.0, text="wp")],
        )
        # Identical ids and tied timestamps previously fell through to
        # comparing ChatMessage/iterator heap entries and raised TypeError.
        merged = list(interleave_live([log, log]))
        assert len(merged) == 4
        assert [t for _, m in merged for t in [m.timestamp]] == sorted(
            m.timestamp for _, m in merged
        )


class TestOrchestrator:
    def test_requires_fitted_initializer(self, config):
        from repro.core.initializer.initializer import HighlightInitializer

        with pytest.raises(ValidationError):
            StreamOrchestrator(initializer=HighlightInitializer(config=config))

    def test_multiplexes_channels_with_final_parity(
        self, fitted_initializer, dota2_dataset
    ):
        targets = dota2_dataset[1:4]
        orchestrator = StreamOrchestrator(initializer=fitted_initializer, k=5)
        logs = {t.video.video_id: t.chat_log for t in targets}
        for video_id, message in interleave_live(list(logs.values())):
            orchestrator.ingest_message(video_id, message)
        assert orchestrator.stats()["sessions_live"] == len(targets)
        for video_id, chat_log in logs.items():
            final = orchestrator.close_session(video_id, chat_log.video.duration)
            assert final == fitted_initializer.propose(chat_log, k=5)
        assert orchestrator.stats()["sessions_live"] == 0

    def test_lru_eviction_bounds_sessions(self, fitted_initializer):
        evicted: list[str] = []
        orchestrator = StreamOrchestrator(
            initializer=fitted_initializer,
            max_sessions=3,
            on_evict=lambda video_id, dots: evicted.append(video_id),
        )
        for index in range(6):
            orchestrator.open_session(f"live-{index}")
        assert orchestrator.stats()["sessions_live"] == 3
        assert evicted == ["live-0", "live-1", "live-2"]
        assert orchestrator.sessions_evicted == 3
        # Touching keeps a session alive through further opens.
        orchestrator.open_session("live-3")
        orchestrator.open_session("live-6")
        assert orchestrator.has_session("live-3")
        assert not orchestrator.has_session("live-4")

    def test_close_unknown_session_raises(self, fitted_initializer):
        orchestrator = StreamOrchestrator(initializer=fitted_initializer)
        with pytest.raises(ValidationError):
            orchestrator.close_session("nope")

    def test_session_wires_dots_into_extractor(self, fitted_initializer, dota2_dataset):
        chat_log = dota2_dataset[2].chat_log
        orchestrator = StreamOrchestrator(
            initializer=fitted_initializer,
            k=3,
            policy=EmitPolicy(eval_every_messages=25),
            min_plays_for_refinement=6,
        )
        video_id = chat_log.video.video_id
        refinements = []
        for message in chat_log.messages:
            orchestrator.ingest_message(video_id, message)
            dots = orchestrator.current_dots(video_id)
            if dots and message.timestamp > chat_log.video.duration / 2:
                refinements.extend(
                    orchestrator.ingest_interactions(
                        video_id, _viewer_round(dots[0].position, n_viewers=8)
                    )
                )
                break
        assert any(isinstance(e, HighlightRefined) for e in refinements)
        session = orchestrator.session(video_id)
        assert session.interactions_ingested > 0

    def test_finalize_hands_duration_to_extractor(
        self, fitted_initializer, dota2_dataset
    ):
        chat_log = dota2_dataset[2].chat_log
        orchestrator = StreamOrchestrator(initializer=fitted_initializer, k=3)
        video_id = chat_log.video.video_id
        for message in chat_log.messages:
            orchestrator.ingest_message(video_id, message)
        session = orchestrator.session(video_id)
        # A viewer still playing when the stream ends: their dangling play
        # must be clamped to the final duration, like the batch path does.
        session.ingest_interaction(
            Interaction(
                timestamp=chat_log.video.duration - 5.0,
                kind=InteractionKind.PLAY,
                user="dangler",
            )
        )
        orchestrator.close_session(video_id, chat_log.video.duration)
        assert session.extractor.video_duration == chat_log.video.duration


class TestServiceLiveIngest:
    @pytest.fixture()
    def service(self, fitted_initializer):
        seeds = SeedSequenceFactory(5)
        api = SimulatedStreamingAPI(seeds=seeds)
        store = InMemoryStore()
        crawler = ChatCrawler(api=api, store=store)
        return LightorWebService(
            store=store, crawler=crawler, initializer=fitted_initializer
        )

    def test_live_lifecycle_persists_final_dots(self, service, dota2_dataset):
        labelled = dota2_dataset[2]
        chat_log = labelled.chat_log
        service.start_live(labelled.video)
        events = service.ingest_live_chat(chat_log.video.video_id, chat_log.messages)
        assert any(isinstance(e, DotEmitted) for e in events)
        assert service.live_red_dots(chat_log.video.video_id)
        final = service.end_live(chat_log.video.video_id, chat_log.video.duration)
        assert final == service.initializer.propose(chat_log, k=None)
        # Persisted through the eviction callback:
        assert service.store.get_red_dots(chat_log.video.video_id) == final

    def test_live_interactions_are_also_logged(self, service, dota2_dataset):
        labelled = dota2_dataset[2]
        service.start_live(labelled.video)
        service.ingest_live_chat(
            labelled.video.video_id, labelled.chat_log.messages[:500]
        )
        interactions = _viewer_round(100.0, n_viewers=3)
        service.ingest_live_interactions(labelled.video.video_id, interactions)
        assert len(service.store.get_interactions(labelled.video.video_id)) == len(
            interactions
        )

    def test_ingest_without_start_live_rejected(self, service, dota2_dataset):
        """Unknown channels must not silently open sessions at the service
        surface — an evicted channel reborn with only its chat tail would
        later overwrite the correct stored dots."""
        labelled = dota2_dataset[2]
        with pytest.raises(ValidationError, match="start_live"):
            service.ingest_live_chat(
                labelled.video.video_id, labelled.chat_log.messages[:10]
            )
        with pytest.raises(ValidationError, match="start_live"):
            service.ingest_live_interactions(
                labelled.video.video_id, _viewer_round(100.0, n_viewers=1)
            )

    def test_end_live_is_idempotent_after_close_or_eviction(
        self, service, dota2_dataset
    ):
        labelled = dota2_dataset[2]
        chat_log = labelled.chat_log
        service.start_live(labelled.video)
        service.ingest_live_chat(chat_log.video.video_id, chat_log.messages)
        first = service.end_live(chat_log.video.video_id, chat_log.video.duration)
        # Ending again returns the persisted dots instead of raising, and the
        # channel's provisional view keeps serving them.
        assert service.end_live(chat_log.video.video_id) == first
        assert service.live_red_dots(chat_log.video.video_id) == first
        with pytest.raises(ValidationError):
            service.end_live("never-seen")
