"""Contract test suite every storage backend must pass.

The suite is parametrized over the in-memory reference store and the SQLite
backend (both ``:memory:`` and file-backed), so all implementations are held
to the exact same semantics: idempotent chat ingest, append-only interaction
logs, replace-style red dots, monotonically versioned highlight results and
unknown-id errors.  Backend-specific behaviour (durability across reopen,
WAL mode) is tested separately below.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.core.types import ChatMessage, Highlight, Interaction, InteractionKind, RedDot, Video
from repro.platform.backends import (
    InMemoryStore,
    SQLiteBusyError,
    SQLiteStore,
    StorageBackend,
    create_backend,
)
from repro.utils.validation import ValidationError


def _video(video_id="v1", duration=600.0):
    return Video(video_id=video_id, duration=duration)


@pytest.fixture(params=["memory", "sqlite", "sqlite-file"])
def store(request, tmp_path):
    """One instance of every backend implementation."""
    if request.param == "memory":
        backend = InMemoryStore()
    elif request.param == "sqlite":
        backend = SQLiteStore()
    else:
        backend = SQLiteStore(tmp_path / "contract.db")
    yield backend
    backend.close()


class TestBackendContract:
    def test_implements_contract(self, store):
        assert isinstance(store, StorageBackend)

    # ---------------------------------------------------------------- videos
    def test_video_roundtrip(self, store):
        store.put_video(_video())
        assert store.has_video("v1")
        assert store.get_video("v1").duration == 600.0
        assert not store.has_video("nope")
        with pytest.raises(ValidationError):
            store.get_video("nope")

    def test_put_video_replaces(self, store):
        store.put_video(_video(duration=600.0))
        store.put_video(_video(duration=900.0))
        assert store.get_video("v1").duration == 900.0
        assert store.stats()["videos"] == 1

    def test_video_metadata_preserved(self, store):
        video = Video(
            video_id="rich",
            duration=500.0,
            game="lol",
            channel="chan_3",
            viewer_count=1234,
            highlights=(Highlight(10.0, 40.0, label="teamfight"),),
        )
        store.put_video(video)
        assert store.get_video("rich") == video

    def test_list_videos_sorted_by_id(self, store):
        store.put_video(_video("b"))
        store.put_video(_video("a"))
        store.put_video(_video("c"))
        assert [v.video_id for v in store.list_videos()] == ["a", "b", "c"]

    # ------------------------------------------------------------------ chat
    def test_chat_requires_known_video(self, store):
        with pytest.raises(ValidationError):
            store.put_chat("ghost", [ChatMessage(1.0)])

    def test_chat_roundtrip_sorted(self, store):
        store.put_video(_video())
        count = store.put_chat("v1", [ChatMessage(30.0), ChatMessage(5.0)])
        assert count == 2
        assert store.has_chat("v1")
        assert [m.timestamp for m in store.get_chat("v1")] == [5.0, 30.0]
        assert len(store.get_chat_log("v1")) == 2

    def test_chat_ingest_idempotent(self, store):
        store.put_video(_video())
        store.put_chat("v1", [ChatMessage(1.0, "a", "first crawl")])
        store.put_chat("v1", [ChatMessage(2.0, "b", "second crawl")])
        messages = store.get_chat("v1")
        assert [m.text for m in messages] == ["second crawl"]
        assert store.stats()["chat_messages"] == 1

    def test_chat_preserves_user_and_text(self, store):
        store.put_video(_video())
        message = ChatMessage(12.5, user="gl", text="what a play 🎉")
        store.put_chat("v1", [message])
        (stored,) = store.get_chat("v1")
        assert (stored.timestamp, stored.user, stored.text) == (12.5, "gl", "what a play 🎉")

    def test_empty_chat_is_not_crawled(self, store):
        store.put_video(_video())
        assert store.put_chat("v1", []) == 0
        assert not store.has_chat("v1")
        assert store.get_chat("v1") == []

    def test_append_chat_requires_known_video(self, store):
        with pytest.raises(ValidationError):
            store.append_chat("ghost", [ChatMessage(1.0)])

    def test_append_chat_accumulates_in_arrival_order(self, store):
        store.put_video(_video())
        assert store.append_chat("v1", [ChatMessage(1.0, "a", "one")]) == 1
        assert store.append_chat(
            "v1", [ChatMessage(2.0, "b", "two"), ChatMessage(3.0, "c", "three")]
        ) == 3
        assert [m.text for m in store.get_chat("v1")] == ["one", "two", "three"]
        assert store.has_chat("v1")
        assert store.stats()["chat_messages"] == 3

    def test_append_chat_extends_a_previous_crawl(self, store):
        store.put_video(_video())
        store.put_chat("v1", [ChatMessage(1.0, "a", "crawled")])
        assert store.append_chat("v1", [ChatMessage(2.0, "b", "live")]) == 2
        assert [m.text for m in store.get_chat("v1")] == ["crawled", "live"]
        # put_chat stays idempotent: a re-crawl replaces everything appended.
        store.put_chat("v1", [ChatMessage(5.0, "c", "recrawled")])
        assert [m.text for m in store.get_chat("v1")] == ["recrawled"]

    def test_append_chat_empty_batch_is_a_noop(self, store):
        store.put_video(_video())
        assert store.append_chat("v1", []) == 0
        assert not store.has_chat("v1")

    # ---------------------------------------------------------- interactions
    def test_interactions_require_known_video(self, store):
        with pytest.raises(ValidationError):
            store.log_interactions("ghost", [Interaction(1.0, InteractionKind.PLAY)])

    def test_interaction_log_appends_in_arrival_order(self, store):
        store.put_video(_video())
        store.log_interactions("v1", [Interaction(9.0, InteractionKind.PLAY, "a")])
        total = store.log_interactions(
            "v1",
            [
                Interaction(2.0, InteractionKind.SEEK_BACKWARD, "a", target=1.0),
                Interaction(5.0, InteractionKind.STOP, "a"),
            ],
        )
        assert total == 3
        logged = store.get_interactions("v1")
        # Arrival order, not timestamp order: backward seeks must survive.
        assert [i.timestamp for i in logged] == [9.0, 2.0, 5.0]
        assert logged[1].target == 1.0

    # -------------------------------------------------------------- red dots
    def test_red_dots_require_known_video(self, store):
        with pytest.raises(ValidationError):
            store.put_red_dots("ghost", [RedDot(position=1.0)])

    def test_red_dots_replace_and_sort(self, store):
        store.put_video(_video())
        store.put_red_dots("v1", [RedDot(position=50.0)])
        store.put_red_dots("v1", [RedDot(position=70.0), RedDot(position=20.0)])
        assert [d.position for d in store.get_red_dots("v1")] == [20.0, 70.0]

    def test_red_dot_fields_preserved(self, store):
        store.put_video(_video())
        dot = RedDot(position=33.0, score=0.875, window=(30.0, 60.0), video_id="v1")
        store.put_red_dots("v1", [dot])
        assert store.get_red_dots("v1") == [dot]

    def test_red_dots_empty_when_not_computed(self, store):
        store.put_video(_video())
        assert store.get_red_dots("v1") == []
        assert not store.has_red_dots("v1")

    def test_computed_empty_dots_remembered(self, store):
        # "computed: nothing to show" must not look like "never computed".
        store.put_video(_video())
        store.put_red_dots("v1", [])
        assert store.has_red_dots("v1")
        assert store.get_red_dots("v1") == []
        store.put_red_dots("v1", [RedDot(position=5.0)])
        assert store.has_red_dots("v1")

    # ------------------------------------------------------------ highlights
    def test_highlights_require_known_video(self, store):
        with pytest.raises(ValidationError):
            store.put_highlight("ghost", Highlight(1.0, 2.0))

    def test_highlight_versions_increase(self, store):
        store.put_video(_video())
        first = store.put_highlight("v1", Highlight(10.0, 20.0))
        second = store.put_highlight("v1", Highlight(11.0, 21.0))
        assert (first.version, second.version) == (1, 2)
        assert len(store.highlight_history("v1")) == 2
        # Both refer to the same area, so only the latest is reported.
        assert store.latest_highlights("v1") == [Highlight(11.0, 21.0)]

    def test_highlight_versions_independent_per_video(self, store):
        store.put_video(_video("a"))
        store.put_video(_video("b"))
        store.put_highlight("a", Highlight(10.0, 20.0))
        record = store.put_highlight("b", Highlight(10.0, 20.0))
        assert record.version == 1

    def test_highlight_source_preserved(self, store):
        store.put_video(_video())
        record = store.put_highlight("v1", Highlight(1.0, 2.0), source="streaming")
        assert store.highlight_history("v1")[0] == record
        assert record.source == "streaming"

    # --------------------------------------------------------------- summary
    def test_row_counts_match_materialised_logs(self, store):
        store.put_video(_video())
        assert store.count_chat("v1") == 0
        assert store.count_interactions("v1") == 0
        store.append_chat("v1", [ChatMessage(1.0), ChatMessage(2.0)])
        store.log_interactions(
            "v1",
            [
                Interaction(1.0, InteractionKind.PLAY, "a"),
                Interaction(2.0, InteractionKind.STOP, "a"),
                Interaction(3.0, InteractionKind.PLAY, "b"),
            ],
        )
        assert store.count_chat("v1") == len(store.get_chat("v1")) == 2
        assert store.count_interactions("v1") == len(store.get_interactions("v1")) == 3
        assert store.count_chat("never-seen") == 0

    def test_suffix_reads_match_materialised_slices(self, store):
        store.put_video(_video())
        store.append_chat("v1", [ChatMessage(1.0, "a", "x"), ChatMessage(2.0, "b", "y")])
        interactions = [
            Interaction(1.0, InteractionKind.PLAY, "a"),
            Interaction(2.0, InteractionKind.STOP, "a"),
            Interaction(3.0, InteractionKind.PLAY, "b"),
        ]
        store.log_interactions("v1", interactions)
        for offset in range(4):
            assert store.get_chat_since("v1", offset) == store.get_chat("v1")[offset:]
            assert (
                store.get_interactions_since("v1", offset)
                == store.get_interactions("v1")[offset:]
            )
        assert store.get_chat_since("never-seen", 0) == []

    # ----------------------------------------------------- session snapshots
    def test_session_snapshot_roundtrip_and_replace(self, store):
        store.put_video(_video())
        store.put_session_snapshot("v1", {"version": 1, "chat_persisted": 3})
        assert store.get_session_snapshots() == {"v1": {"version": 1, "chat_persisted": 3}}
        store.put_session_snapshot("v1", {"version": 1, "chat_persisted": 9})
        assert store.get_session_snapshots()["v1"]["chat_persisted"] == 9
        assert store.stats()["session_snapshots"] == 1

    def test_session_snapshot_requires_known_video(self, store):
        with pytest.raises(ValidationError):
            store.put_session_snapshot("ghost", {"version": 1})

    def test_session_snapshot_single_lookup(self, store):
        store.put_video(_video())
        assert store.get_session_snapshot("v1") is None
        store.put_session_snapshot("v1", {"version": 1, "chat_persisted": 4})
        assert store.get_session_snapshot("v1") == {"version": 1, "chat_persisted": 4}

    def test_session_snapshot_delete_is_idempotent(self, store):
        store.put_video(_video())
        store.put_session_snapshot("v1", {"version": 1})
        assert store.delete_session_snapshot("v1") is True
        assert store.delete_session_snapshot("v1") is False
        assert store.delete_session_snapshot("never-checkpointed") is False
        assert store.get_session_snapshots() == {}

    def test_session_snapshot_rejects_non_json_payloads(self, store):
        # The contract requires strict JSON: a snapshot recovery cannot parse
        # must fail at write time, not at recovery time.
        store.put_video(_video())
        with pytest.raises(ValueError):
            store.put_session_snapshot("v1", {"version": 1, "rate": float("inf")})
        with pytest.raises(TypeError):
            store.put_session_snapshot("v1", {"version": 1, "video": _video()})
        assert store.get_session_snapshots() == {}

    def test_session_snapshot_returns_decoupled_copies(self, store):
        store.put_video(_video())
        payload = {"version": 1, "counters": [1, 2]}
        store.put_session_snapshot("v1", payload)
        payload["counters"].append(3)
        fetched = store.get_session_snapshots()["v1"]
        assert fetched["counters"] == [1, 2]
        fetched["counters"].append(4)
        assert store.get_session_snapshots()["v1"]["counters"] == [1, 2]

    def test_stats(self, store):
        store.put_video(_video())
        store.put_chat("v1", [ChatMessage(1.0)])
        stats = store.stats()
        assert stats["videos"] == 1 and stats["chat_messages"] == 1
        assert stats["videos_with_chat"] == 1
        assert stats["interactions"] == stats["red_dots"] == 0
        assert stats["highlight_records"] == 0
        assert stats["session_snapshots"] == 0


class TestSQLiteSpecifics:
    def test_two_handles_on_one_file_version_monotonically(self, tmp_path):
        path = tmp_path / "versions-shared.db"
        a, b = SQLiteStore(path), SQLiteStore(path)
        a.put_video(_video())
        versions = [
            a.put_highlight("v1", Highlight(1.0, 2.0)).version,
            b.put_highlight("v1", Highlight(3.0, 4.0)).version,
            a.put_highlight("v1", Highlight(5.0, 6.0)).version,
        ]
        assert versions == [1, 2, 3]
        assert len(b.highlight_history("v1")) == 3
        a.close(), b.close()

    def test_two_handles_append_chat_without_seq_collisions(self, tmp_path):
        path = tmp_path / "append-shared.db"
        a, b = SQLiteStore(path), SQLiteStore(path)
        a.put_video(_video())
        assert a.append_chat("v1", [ChatMessage(1.0, "a", "x")]) == 1
        assert b.append_chat("v1", [ChatMessage(2.0, "b", "y")]) == 2
        assert a.append_chat("v1", [ChatMessage(3.0, "c", "z")]) == 3
        assert [m.text for m in b.get_chat("v1")] == ["x", "y", "z"]
        a.close(), b.close()

    def test_two_handles_on_one_file_agree_on_log_size(self, tmp_path):
        path = tmp_path / "shared.db"
        a, b = SQLiteStore(path), SQLiteStore(path)
        a.put_video(_video())
        assert a.log_interactions("v1", [Interaction(1.0, InteractionKind.PLAY)] * 10) == 10
        assert b.log_interactions("v1", [Interaction(2.0, InteractionKind.PLAY)] * 5) == 15
        assert a.log_interactions("v1", [Interaction(3.0, InteractionKind.PLAY)]) == 16
        assert len(b.get_interactions("v1")) == 16
        a.close(), b.close()

    def test_durable_across_reopen(self, tmp_path):
        path = tmp_path / "durable.db"
        first = SQLiteStore(path)
        first.put_video(_video())
        first.put_chat("v1", [ChatMessage(5.0, "a", "hello")])
        first.put_red_dots("v1", [RedDot(position=10.0, window=(0.0, 30.0))])
        first.put_highlight("v1", Highlight(8.0, 25.0), source="streaming")
        first.close()

        reopened = SQLiteStore(path)
        assert reopened.get_video("v1").duration == 600.0
        assert reopened.get_chat("v1") == [ChatMessage(5.0, "a", "hello")]
        assert reopened.get_red_dots("v1") == [RedDot(position=10.0, window=(0.0, 30.0))]
        record = reopened.highlight_history("v1")[0]
        assert (record.highlight, record.version, record.source) == (
            Highlight(8.0, 25.0),
            1,
            "streaming",
        )
        reopened.close()

    def test_session_snapshots_survive_reopen(self, tmp_path):
        path = tmp_path / "snapshots.db"
        first = SQLiteStore(path)
        first.put_video(_video())
        first.put_session_snapshot("v1", {"version": 1, "chat_persisted": 7})
        first.close()
        reopened = SQLiteStore(path)
        assert reopened.get_session_snapshots() == {
            "v1": {"version": 1, "chat_persisted": 7}
        }
        reopened.close()

    def test_file_backed_runs_in_wal_mode(self, tmp_path):
        store = SQLiteStore(tmp_path / "wal.db")
        assert store.journal_mode() == "wal"
        store.close()

    def test_highlight_versions_survive_reopen(self, tmp_path):
        path = tmp_path / "versions.db"
        first = SQLiteStore(path)
        first.put_video(_video())
        first.put_highlight("v1", Highlight(1.0, 2.0))
        first.close()
        reopened = SQLiteStore(path)
        assert reopened.put_highlight("v1", Highlight(3.0, 4.0)).version == 2
        reopened.close()


class TestBackendFactory:
    def test_create_memory(self):
        assert isinstance(create_backend("memory"), InMemoryStore)

    def test_create_sqlite(self, tmp_path):
        backend = create_backend("sqlite", tmp_path / "factory.db")
        assert isinstance(backend, SQLiteStore)
        backend.close()

    def test_memory_rejects_path(self, tmp_path):
        with pytest.raises(ValidationError):
            create_backend("memory", tmp_path / "nope.db")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            create_backend("cassandra")

    def test_legacy_import_path_still_works(self):
        from repro.platform.storage import InMemoryStore as LegacyStore
        from repro.platform.storage import StorageBackend as LegacyBackend

        assert LegacyStore is InMemoryStore
        assert issubclass(LegacyStore, LegacyBackend)


class TestBusyContention:
    """Cross-process lock contention surfaces as a typed, named error."""

    def test_busy_writer_raises_typed_error_naming_the_path(self, tmp_path):
        db = tmp_path / "contended.db"
        victim = SQLiteStore(db, busy_timeout_ms=100)
        blocker = sqlite3.connect(db)
        try:
            # A second connection holding the write lock is exactly what two
            # shard workers misconfigured onto one database file look like.
            blocker.execute("BEGIN IMMEDIATE")
            with pytest.raises(SQLiteBusyError) as excinfo:
                victim.put_video(_video())
            error = excinfo.value
            assert str(db) in str(error)
            assert "100" in str(error)
            assert error.path == str(db)
            assert error.timeout_ms == 100
            # Still a sqlite3.OperationalError: existing handlers keep working.
            assert isinstance(error, sqlite3.OperationalError)
        finally:
            blocker.rollback()
            blocker.close()
            victim.close()

    def test_writes_succeed_once_the_lock_clears(self, tmp_path):
        db = tmp_path / "contended.db"
        victim = SQLiteStore(db, busy_timeout_ms=5000)
        blocker = sqlite3.connect(db)
        try:
            blocker.execute("BEGIN IMMEDIATE")
            blocker.rollback()  # release before the victim's timeout
            victim.put_video(_video())
            assert victim.has_video("v1")
        finally:
            blocker.close()
            victim.close()

    def test_negative_busy_timeout_rejected(self):
        with pytest.raises(ValidationError):
            SQLiteStore(busy_timeout_ms=-1)

    def test_every_connection_sets_busy_timeout(self, tmp_path):
        store = SQLiteStore(tmp_path / "t.db")
        try:
            (value,) = store._connection.execute("PRAGMA busy_timeout").fetchone()
            assert value == store.busy_timeout_ms == 5000
        finally:
            store.close()


class TestStorageCodec:
    """The blob row format: binary batches, legacy interop, corruption."""

    def test_append_chat_writes_one_blob_row_per_batch(self, tmp_path):
        store = SQLiteStore(tmp_path / "blob.db")
        store.put_video(_video())
        batch = [ChatMessage(float(i), f"u{i % 3}", f"msg {i}") for i in range(100)]
        assert store.append_chat("v1", batch) == 100
        assert store.append_chat("v1", batch[:7]) == 107
        rows = store._connection.execute(
            "SELECT first_seq, n, payload FROM chat_batches ORDER BY first_seq"
        ).fetchall()
        assert [(r[0], r[1]) for r in rows] == [(0, 100), (100, 7)]
        assert all(isinstance(r[2], bytes) for r in rows)
        assert store._connection.execute(
            "SELECT COUNT(*) FROM chat_messages"
        ).fetchone()[0] == 0
        assert store.get_chat("v1") == batch + batch[:7]
        assert store.count_chat("v1") == 107
        assert store.get_chat_since("v1", 98) == batch[98:] + batch[:7]
        store.close()

    def test_json_storage_codec_writes_text_rows(self, tmp_path):
        store = SQLiteStore(tmp_path / "jsontext.db", storage_codec="json")
        store.put_video(_video())
        store.append_chat("v1", [ChatMessage(1.0, "a", "x")])
        store.put_session_snapshot("v1", {"version": 1})
        payloads = [
            store._connection.execute("SELECT payload FROM chat_batches").fetchone()[0],
            store._connection.execute("SELECT payload FROM session_snapshots").fetchone()[0],
        ]
        assert all(isinstance(p, str) for p in payloads)
        assert store.get_chat("v1") == [ChatMessage(1.0, "a", "x")]
        assert store.get_session_snapshot("v1") == {"version": 1}
        store.close()

    def test_binary_and_json_codecs_read_back_identically(self, tmp_path):
        batch = [ChatMessage(float(i) + 0.5, f"user{i}", f"text {i} Pog") for i in range(50)]
        snapshot = {"version": 3, "windows": [{"start": 1.5, "counts": [1, 2, 3]}]}
        results = {}
        for codec in ("json", "binary"):
            store = SQLiteStore(tmp_path / f"{codec}.db", storage_codec=codec)
            store.put_video(_video())
            store.append_chat("v1", batch)
            store.put_session_snapshot("v1", snapshot)
            results[codec] = (store.get_chat("v1"), store.get_session_snapshot("v1"))
            store.close()
        assert results["json"] == results["binary"]

    def test_legacy_text_rows_interoperate_with_blob_batches(self, tmp_path):
        # A database written by a pre-codec version holds per-message text
        # rows; new appends must continue its seq space and reads must merge.
        import json as jsonlib

        from repro.platform import codecs as plat_codecs

        path = tmp_path / "legacy.db"
        store = SQLiteStore(path)
        store.put_video(_video())
        legacy = [ChatMessage(float(i), "old", f"legacy {i}") for i in range(5)]
        with store._connection:
            store._connection.executemany(
                "INSERT INTO chat_messages (video_id, seq, payload) VALUES (?, ?, ?)",
                [
                    (
                        "v1",
                        seq,
                        jsonlib.dumps(plat_codecs.chat_message_to_dict(message)),
                    )
                    for seq, message in enumerate(legacy)
                ],
            )
        fresh = [ChatMessage(10.0 + i, "new", f"fresh {i}") for i in range(3)]
        assert store.append_chat("v1", fresh) == 8
        assert store.get_chat("v1") == legacy + fresh
        assert store.count_chat("v1") == 8
        assert store.get_chat_since("v1", 4) == legacy[4:] + fresh
        assert store.has_chat("v1")
        assert store.stats()["chat_messages"] == 8
        assert store.stats()["videos_with_chat"] == 1
        store.close()

    def test_legacy_json_snapshot_reads_back(self, tmp_path):
        import json as jsonlib

        store = SQLiteStore(tmp_path / "legacysnap.db")
        store.put_video(_video())
        with store._connection:
            store._connection.execute(
                "INSERT INTO session_snapshots (video_id, payload) VALUES (?, ?)",
                ("v1", jsonlib.dumps({"version": 1, "chat_persisted": 7})),
            )
        assert store.get_session_snapshot("v1") == {"version": 1, "chat_persisted": 7}
        assert store.get_session_snapshots()["v1"]["chat_persisted"] == 7
        store.close()

    def test_corrupt_blob_raises_typed_error_not_garbage(self, tmp_path):
        from repro.platform import wire

        store = SQLiteStore(tmp_path / "corrupt.db")
        store.put_video(_video())
        store.append_chat("v1", [ChatMessage(1.0, "a", "x"), ChatMessage(2.0, "b", "y")])
        with store._connection:
            row = store._connection.execute(
                "SELECT payload FROM chat_batches WHERE video_id = 'v1'"
            ).fetchone()
            damaged = bytearray(row[0])
            damaged[len(damaged) // 2] ^= 0xFF
            store._connection.execute(
                "UPDATE chat_batches SET payload = ? WHERE video_id = 'v1'",
                (bytes(damaged),),
            )
        with pytest.raises(wire.CodecError):
            store.get_chat("v1")
        store.close()

    def test_put_chat_replaces_both_row_shapes(self, tmp_path):
        store = SQLiteStore(tmp_path / "replace.db")
        store.put_video(_video())
        store.append_chat("v1", [ChatMessage(1.0, "a", "old")])
        replacement = [ChatMessage(2.0, "b", "new"), ChatMessage(3.0, "c", "er")]
        assert store.put_chat("v1", replacement) == 2
        assert store.get_chat("v1") == replacement
        assert store.count_chat("v1") == 2
        # And appends continue cleanly after the replace.
        assert store.append_chat("v1", [ChatMessage(4.0, "d", "more")]) == 3
        store.close()

    def test_snapshot_rejects_non_finite_on_both_codecs(self, tmp_path):
        for codec in ("json", "binary"):
            store = SQLiteStore(tmp_path / f"nan-{codec}.db", storage_codec=codec)
            store.put_video(_video())
            with pytest.raises(ValueError):
                store.put_session_snapshot("v1", {"x": float("nan")})
            # The rejected write stored nothing.
            assert store.get_session_snapshot("v1") is None
            store.close()

    def test_storage_format_version_stamped(self, tmp_path):
        store = SQLiteStore(tmp_path / "meta.db")
        assert store.get_meta(SQLiteStore.STORAGE_FORMAT_KEY) == (
            SQLiteStore.STORAGE_FORMAT_VERSION
        )
        store.close()

    def test_unknown_storage_codec_rejected(self):
        with pytest.raises(ValidationError, match="unknown storage codec"):
            SQLiteStore(storage_codec="pickle")
