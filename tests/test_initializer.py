"""Tests for the Highlight Initializer (windows, features, predictor, adjustment)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LightorConfig
from repro.core.initializer.adjustment import PeakAdjuster, learn_adjustment_constant, reward
from repro.core.initializer.features import FEATURE_NAMES, WindowFeatureExtractor
from repro.core.initializer.initializer import HighlightInitializer
from repro.core.initializer.predictor import FeatureSet, WindowPredictor
from repro.core.initializer.windows import SlidingWindow, build_sliding_windows, window_for_timestamp
from repro.core.types import ChatMessage, Highlight, Video, VideoChatLog
from repro.utils.validation import ValidationError


def _chat_log(duration=600.0, timestamps=(), texts=None):
    video = Video(video_id="unit", duration=duration)
    texts = texts or ["gg"] * len(timestamps)
    messages = [ChatMessage(timestamp=t, text=text) for t, text in zip(timestamps, texts)]
    return VideoChatLog(video=video, messages=messages)


class TestSlidingWindows:
    def test_non_overlapping_cover(self):
        log = _chat_log(timestamps=[10.0, 40.0, 70.0, 580.0])
        windows = build_sliding_windows(log, window_size=25.0)
        assert all(w.duration <= 25.0 for w in windows)
        assert all(w.message_count >= 1 for w in windows)

    def test_overlap_resolution_keeps_denser_window(self):
        timestamps = [100.0 + i for i in range(10)] + [112.0 + i for i in range(3)]
        log = _chat_log(timestamps=sorted(timestamps))
        windows = build_sliding_windows(log, window_size=25.0, stride=12.5)
        for a in windows:
            for b in windows:
                if a is not b:
                    assert not a.overlaps(b)

    def test_min_messages_filter(self):
        log = _chat_log(timestamps=[10.0])
        assert build_sliding_windows(log, window_size=25.0, min_messages=2) == []

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError):
            SlidingWindow(start=10.0, end=10.0)

    def test_peak_timestamp_finds_burst(self):
        burst = [100.0 + 0.2 * i for i in range(20)]
        sparse = [85.0, 90.0]
        log = _chat_log(timestamps=sorted(sparse + burst))
        windows = build_sliding_windows(log, window_size=25.0)
        window = window_for_timestamp(windows, 100.0)
        assert window is not None
        assert 99.0 <= window.peak_timestamp() <= 104.0

    def test_peak_of_empty_window_is_start(self):
        window = SlidingWindow(start=10.0, end=35.0, messages=[])
        assert window.peak_timestamp() == 10.0

    def test_window_for_timestamp_miss(self):
        log = _chat_log(timestamps=[10.0])
        windows = build_sliding_windows(log, window_size=25.0)
        assert window_for_timestamp(windows, 599.0) is None

    @given(st.lists(st.floats(min_value=0, max_value=599), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_every_message_lands_in_at_most_one_window(self, timestamps):
        log = _chat_log(timestamps=sorted(timestamps))
        windows = build_sliding_windows(log, window_size=25.0, stride=12.5)
        for timestamp in timestamps:
            containing = [w for w in windows if w.contains(timestamp)]
            assert len(containing) <= 1


class TestFeatures:
    def test_feature_names_order(self):
        assert FEATURE_NAMES == ("message_number", "message_length", "message_similarity")

    def test_raw_features_reflect_content(self):
        extractor = WindowFeatureExtractor()
        reaction = SlidingWindow(
            start=0.0,
            end=25.0,
            messages=[ChatMessage(float(i), text="rampage!!") for i in range(10)],
        )
        chatter = SlidingWindow(
            start=25.0,
            end=50.0,
            messages=[
                ChatMessage(26.0, text="what item should he build next though"),
                ChatMessage(30.0, text="anyone know when the next major starts"),
            ],
        )
        reaction_features = extractor.raw_features(reaction)
        chatter_features = extractor.raw_features(chatter)
        assert reaction_features.message_number > chatter_features.message_number
        assert reaction_features.message_length < chatter_features.message_length
        assert reaction_features.message_similarity > chatter_features.message_similarity

    def test_feature_matrix_normalised_range(self):
        extractor = WindowFeatureExtractor()
        windows = [
            SlidingWindow(0.0, 25.0, [ChatMessage(1.0, text="gg")]),
            SlidingWindow(25.0, 50.0, [ChatMessage(26.0, text="gg gg"), ChatMessage(27.0, text="gg")]),
        ]
        matrix = extractor.feature_matrix(windows)
        assert matrix.shape == (2, 3)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_feature_matrix_empty_rejected(self):
        with pytest.raises(ValidationError):
            WindowFeatureExtractor().feature_matrix([])

    def test_label_windows_uses_discussion_period(self):
        extractor = WindowFeatureExtractor()
        windows = [SlidingWindow(0.0, 25.0), SlidingWindow(50.0, 75.0), SlidingWindow(200.0, 225.0)]
        highlights = [Highlight(start=30.0, end=40.0)]
        labels = extractor.label_windows(windows, highlights, reaction_delay=30.0)
        # Window [50, 75) overlaps [30, 70] discussion period; the others do not.
        assert labels.tolist() == [0, 1, 0]


class TestAdjustment:
    def test_reward_definition(self):
        highlight = Highlight(start=100.0, end=120.0)
        assert reward(95.0, highlight) == 1          # within 10s before start
        assert reward(120.0, highlight) == 1         # at the end
        assert reward(121.0, highlight) == 0         # after the end
        assert reward(89.0, highlight) == 0          # too early

    def test_learn_constant_recovers_shared_delay(self):
        highlights = [Highlight(start=100.0 * i, end=100.0 * i + 30.0) for i in range(1, 6)]
        peaks = [h.start + 22.0 for h in highlights]
        constant = learn_adjustment_constant(peaks, highlights)
        assert 12.0 <= constant <= 32.0
        assert all(reward(p - constant, h) == 1 for p, h in zip(peaks, highlights))

    def test_learn_constant_requires_examples(self):
        with pytest.raises(ValidationError):
            learn_adjustment_constant([], [])

    def test_learn_constant_length_mismatch(self):
        with pytest.raises(ValidationError):
            learn_adjustment_constant([1.0], [])

    def test_adjuster_fit_and_adjust(self, dota2_dataset, config):
        adjuster = PeakAdjuster(config=config)
        adjuster.fit([dota2_dataset[0].training_pair])
        assert adjuster.training_pairs_ > 0
        assert 5.0 <= adjuster.constant <= 50.0
        assert adjuster.adjust(100.0) == pytest.approx(100.0 - adjuster.constant)
        assert adjuster.adjust(0.5) == 0.0

    def test_adjuster_unfitted_raises(self):
        with pytest.raises(ValidationError):
            PeakAdjuster().constant


class TestPredictor:
    def test_fit_requires_training_data(self, config):
        with pytest.raises(ValidationError):
            WindowPredictor(config=config).fit([])

    def test_top_k_respects_spacing(self, fitted_initializer, dota2_dataset, config):
        labelled = dota2_dataset[2]
        windows = fitted_initializer.model.predictor.top_k_windows(labelled.chat_log, k=8)
        peaks = [w.peak_timestamp() for w in windows]
        for i, a in enumerate(peaks):
            for b in peaks[i + 1 :]:
                assert abs(a - b) > config.min_dot_spacing

    def test_scores_are_probabilities(self, fitted_initializer, dota2_dataset):
        labelled = dota2_dataset[3]
        windows = fitted_initializer.model.predictor.score_windows(labelled.chat_log)
        assert windows
        assert all(0.0 <= (w.score or 0.0) <= 1.0 for w in windows)

    def test_feature_set_column_indices(self):
        assert FeatureSet.MSG_NUM.column_indices == [0]
        assert FeatureSet.MSG_NUM_LEN.column_indices == [0, 1]
        assert FeatureSet.ALL.column_indices == [0, 1, 2]

    def test_unfitted_predictor_raises(self, config, dota2_dataset):
        with pytest.raises(ValidationError):
            WindowPredictor(config=config).score_windows(dota2_dataset[0].chat_log)

    def test_invalid_k_rejected(self, fitted_initializer, dota2_dataset):
        with pytest.raises(ValidationError):
            fitted_initializer.model.predictor.top_k_windows(dota2_dataset[0].chat_log, k=0)


class TestHighlightInitializer:
    def test_propose_returns_sorted_dots(self, fitted_initializer, dota2_dataset):
        labelled = dota2_dataset[2]
        dots = fitted_initializer.propose(labelled.chat_log, k=5)
        assert 1 <= len(dots) <= 5
        positions = [dot.position for dot in dots]
        assert positions == sorted(positions)
        assert all(dot.video_id == labelled.video.video_id for dot in dots)

    def test_most_dots_are_good(self, fitted_initializer, dota2_dataset, config):
        from repro.eval.matching import is_good_red_dot

        labelled = dota2_dataset[2]
        dots = fitted_initializer.propose(labelled.chat_log, k=5)
        good = sum(
            is_good_red_dot(d.position, labelled.highlights, config.start_tolerance) for d in dots
        )
        assert good >= len(dots) * 0.6

    def test_unfitted_propose_raises(self, config, dota2_dataset):
        with pytest.raises(ValidationError):
            HighlightInitializer(config=config).propose(dota2_dataset[0].chat_log)

    def test_model_exposes_weights_and_constant(self, fitted_initializer):
        weights = fitted_initializer.model.feature_weights
        assert set(weights) == set(FeatureSet.ALL.value)
        assert fitted_initializer.model.adjustment_constant > 0

    def test_applicability_threshold(self, fitted_initializer, config):
        quiet_video = Video(video_id="quiet", duration=3600.0)
        quiet_log = VideoChatLog(
            video=quiet_video, messages=[ChatMessage(float(i * 30)) for i in range(10)]
        )
        assert not fitted_initializer.is_applicable(quiet_log)

    def test_training_on_lol_generalises_to_dota(self, config, lol_dataset, dota2_dataset):
        from repro.eval.metrics import video_precision_start_at_k

        initializer = HighlightInitializer(config=config)
        initializer.fit([lol_dataset[0].training_pair])
        labelled = dota2_dataset[2]
        dots = initializer.propose(labelled.chat_log, k=5)
        precision = video_precision_start_at_k(
            [dot.position for dot in dots], labelled.highlights, k=5
        )
        assert precision >= 0.4
