"""R001 good: the compliant twins of every bad pattern."""

import asyncio
import sqlite3
import time


class Gateway:
    async def handle(self):
        await asyncio.sleep(0.1)  # the async twin is fine
        loop = asyncio.get_running_loop()
        # Shard-tier calls offloaded to the pool — the gateway's _execute idiom.
        return await loop.run_in_executor(self.pool, self.service.get_video, "v1")

    def warm_cache(self):
        # Sync method: blocking is fine off the loop.
        time.sleep(0.1)
        with sqlite3.connect(":memory:") as connection:
            connection.execute("SELECT 1")

    async def spawn_worker(self):
        def work():
            # Nested *sync* def runs wherever it is submitted (the pool),
            # so blocking inside it is legal.
            time.sleep(0.1)

        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self.pool, work)
