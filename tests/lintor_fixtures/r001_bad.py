"""R001 bad: blocking calls inside async def bodies."""

import sqlite3
import time
from time import sleep


class Gateway:
    async def handle(self):
        time.sleep(0.1)  # line 10: module-qualified blocking call
        sleep(0.1)  # line 11: from-imported blocking call
        connection = sqlite3.connect(":memory:")  # line 12: blocking connect
        connection.close()
        return self.service.get_video("v1")  # line 14: shard-tier call on the loop

    async def read_config(self):
        with open("config.json") as handle:  # line 17: file I/O on the loop
            return handle.read()
