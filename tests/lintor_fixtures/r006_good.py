"""R006 good: every format constant has a matching decode-time rejection."""

from repro.utils.validation import ValidationError

MAGIC = b"XXF1"
TRACE_VERSION = 7


def decode_frame(blob):
    if blob[:4] != MAGIC:
        raise ValidationError("not a frame")
    version = blob[4]
    if version != TRACE_VERSION:
        raise ValidationError(f"unknown frame version {version}")
    return blob[5:]


class Store:
    STORAGE_FORMAT_VERSION = "3"

    def open(self, stored):
        if int(stored) > int(self.STORAGE_FORMAT_VERSION):
            raise ValidationError("written by a newer format")
        return stored
