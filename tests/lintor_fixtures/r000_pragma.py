"""R000 bad: malformed lintor pragmas (and one valid suppression)."""

import json


def fingerprint(payload):
    return json.dumps(payload)  # lintor: disable=R003


def encode(payload):
    return json.dumps(payload)  # lintor: disable=R003 reason=


def annotate(payload):
    return json.dumps(payload)  # lintor: disable=bogus reason=not a rule code


def suppressed(payload):
    return json.dumps(payload)  # lintor: disable=R003 reason=payload is a finite fingerprint
