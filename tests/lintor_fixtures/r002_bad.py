"""R002 bad: guarded attributes touched outside their guard."""

import threading


class Counters:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._pending = 0  # guarded-by: event-loop

    def record(self):
        self._hits += 1  # line 13: lock-guarded attr without the lock

    def snapshot(self):
        with self._other_lock:
            return self._hits  # line 17: wrong lock held

    def poll(self):
        return self._pending  # line 20: loop-confined attr in unmarked sync def

    async def admit(self):
        self._pending += 1  # fine: coroutines run on the loop

    def publish(self):  # runs-on: event-loop
        return self._pending  # fine: marked loop-confined ...

    def start(self, pool):
        pool.submit(self.publish)  # line 29: ... but then offloaded to a pool
