"""R005 bad: acquired handles nobody closes."""

import socket
import sqlite3


def read_config(path):
    handle = open(path)  # line 8: never closed
    return handle.read()


def count_rows(path):
    connection = sqlite3.connect(path)  # line 13: never closed
    return connection.execute("SELECT COUNT(*) FROM t").fetchone()


def probe(host, port):
    sock = socket.create_connection((host, port))  # line 18: never closed
    sock.sendall(b"ping")
