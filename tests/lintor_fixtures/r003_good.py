"""R003 good: strict dumps everywhere, loads confined to decode helpers."""

import json


def fingerprint(payload):
    return json.dumps(payload, sort_keys=True, allow_nan=False)


def decode_body(data):
    # Decode helpers are the sanctioned chokepoint for wire loads.
    return json.loads(data)


def _decode_response(data):
    return json.loads(data)


def loads(text):
    return json.loads(text)
