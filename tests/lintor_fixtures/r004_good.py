"""R004 good: typed raises; broad catches either handle or re-raise."""

from repro.utils.validation import ValidationError


def validate(value):
    if value < 0:
        raise ValidationError("negative")


def ingest(batch):
    try:
        batch.apply()
    except Exception as error:  # broad, but *handled* — the wire needs an answer
        return {"error": str(error)}


def drain(queue):
    try:
        queue.flush()
    except OSError:
        pass  # narrow typed catch may pass: the contract targets blanket swallows
