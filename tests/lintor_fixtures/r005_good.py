"""R005 good: every sanctioned ownership pattern."""

import socket
import sqlite3


def read_config(path):
    with open(path) as handle:
        return handle.read()


def count_rows(path):
    connection = sqlite3.connect(path)
    try:
        return connection.execute("SELECT COUNT(*) FROM t").fetchone()
    finally:
        connection.close()


def open_store(path):
    # Ownership transfer: the caller closes what we return.
    return sqlite3.connect(path)


class Client:
    def __init__(self, host, port):
        # Instance-owned: the owner's close() is responsible.
        self._sock = socket.create_connection((host, port))

    def close(self):
        self._sock.close()
