"""R006 bad: format constants with no decode-time rejection."""

MAGIC = b"XXF1"  # line 3: declared ...
TRACE_VERSION = 7  # line 4: ... but nothing ever rejects a mismatch


def decode_frame(blob):
    # Reads the header and trusts it blindly — exactly the bug R006 exists
    # to catch: a v8 file would half-parse instead of failing loudly.
    return blob[len(MAGIC) :]


class Store:
    STORAGE_FORMAT_VERSION = "3"  # line 14: class-level constant, same gap

    def load(self, row):
        return row
