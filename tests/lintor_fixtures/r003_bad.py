"""R003 bad: lax json.dumps, and raw wire loads outside a decode helper.

Analyzed under a wire-facing relpath (``platform/client.py``) in the tests
so the loads clause applies.
"""

import json
from json import dumps


def fingerprint(payload):
    return json.dumps(payload, sort_keys=True)  # line 12: no allow_nan=False


def encode(payload):
    return dumps(payload)  # line 16: from-imported alias, still lax


def relaxed(payload):
    return json.dumps(payload, allow_nan=True)  # line 20: explicitly lax


def handle_response(data):
    return json.loads(data)  # line 24: raw wire loads outside a decode helper
