"""R004 bad: untyped raises and swallowed exceptions.

Analyzed under a ``platform/`` relpath in the tests so the rule applies.
"""


def validate(value):
    if value < 0:
        raise ValueError("negative")  # line 9: bare ValueError, not the typed hierarchy


def ingest(batch):
    try:
        batch.apply()
    except Exception:  # line 15: swallowed wholesale
        pass


def drain(queue):
    try:
        queue.flush()
    except:  # noqa: E722 - line 22: bare except, swallowed
        pass
