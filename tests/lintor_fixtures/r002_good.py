"""R002 good: every access path the guard discipline allows."""

import threading


class Counters:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._pending = 0  # guarded-by: event-loop
        self._hits = 0  # __init__ may touch guarded attrs lock-free

    def record(self):
        with self._lock:
            self._hits += 1

    def snapshot(self):
        with self._lock:
            hits = self._hits
        return hits

    async def admit(self):
        self._pending += 1

    def health(self):  # runs-on: event-loop
        return self._pending
