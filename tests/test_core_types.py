"""Tests for the core value objects and configuration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LightorConfig
from repro.core.types import (
    ChatMessage,
    Highlight,
    Interaction,
    InteractionKind,
    PlayRecord,
    RedDot,
    Video,
    VideoChatLog,
)
from repro.utils.validation import ValidationError


class TestChatMessage:
    def test_word_count(self):
        assert ChatMessage(timestamp=1.0, text="what a play").word_count == 3

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValidationError):
            ChatMessage(timestamp=-1.0)

    def test_ordering_by_timestamp(self):
        assert ChatMessage(timestamp=1.0) < ChatMessage(timestamp=2.0)


class TestHighlight:
    def test_duration_and_midpoint(self):
        highlight = Highlight(start=10.0, end=30.0)
        assert highlight.duration == 20.0
        assert highlight.midpoint == 20.0

    def test_contains(self):
        highlight = Highlight(start=10.0, end=30.0)
        assert highlight.contains(10.0) and highlight.contains(30.0)
        assert not highlight.contains(9.9)

    def test_overlaps(self):
        assert Highlight(0, 10).overlaps(Highlight(10, 20))
        assert not Highlight(0, 10).overlaps(Highlight(11, 20))

    def test_end_before_start_rejected(self):
        with pytest.raises(ValidationError):
            Highlight(start=10.0, end=5.0)

    def test_shifted_clamps_at_zero(self):
        shifted = Highlight(start=5.0, end=10.0).shifted(-8.0)
        assert shifted.start == 0.0 and shifted.end == 2.0

    @given(st.floats(min_value=0, max_value=1e4), st.floats(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_shift_preserves_duration_when_not_clamped(self, start, length):
        highlight = Highlight(start=start + 200, end=start + 200 + length)
        shifted = highlight.shifted(-100)
        assert shifted.duration == pytest.approx(highlight.duration)


class TestRedDot:
    def test_moved_to_clamps(self):
        assert RedDot(position=5.0).moved_to(-3.0).position == 0.0

    def test_negative_position_rejected(self):
        with pytest.raises(ValidationError):
            RedDot(position=-1.0)


class TestInteraction:
    def test_seek_requires_target(self):
        with pytest.raises(ValidationError):
            Interaction(timestamp=1.0, kind=InteractionKind.SEEK_BACKWARD)

    def test_play_does_not_require_target(self):
        event = Interaction(timestamp=1.0, kind=InteractionKind.PLAY)
        assert event.target is None


class TestPlayRecord:
    def test_duration(self):
        assert PlayRecord(user="a", start=10.0, end=25.0).duration == 15.0

    def test_overlaps_and_covers(self):
        play = PlayRecord(user="a", start=10.0, end=20.0)
        assert play.overlaps(PlayRecord(user="b", start=20.0, end=30.0))
        assert not play.overlaps(PlayRecord(user="b", start=21.0, end=30.0))
        assert play.covers(15.0) and not play.covers(21.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValidationError):
            PlayRecord(user="a", start=10.0, end=5.0)


class TestVideo:
    def test_highlight_outside_duration_rejected(self):
        with pytest.raises(ValidationError):
            Video(video_id="v", duration=100.0, highlights=(Highlight(90.0, 120.0),))

    def test_with_highlights(self):
        video = Video(video_id="v", duration=100.0)
        updated = video.with_highlights([Highlight(10.0, 20.0)])
        assert updated.n_highlights == 1 and video.n_highlights == 0

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValidationError):
            Video(video_id="v", duration=0.0)


class TestVideoChatLog:
    def test_sorts_messages(self):
        video = Video(video_id="v", duration=100.0)
        log = VideoChatLog(video=video, messages=[ChatMessage(50.0), ChatMessage(10.0)])
        assert log.timestamps() == [10.0, 50.0]

    def test_message_past_duration_rejected(self):
        video = Video(video_id="v", duration=100.0)
        with pytest.raises(ValidationError):
            VideoChatLog(video=video, messages=[ChatMessage(150.0)])

    def test_messages_between_half_open(self):
        video = Video(video_id="v", duration=100.0)
        log = VideoChatLog(video=video, messages=[ChatMessage(10.0), ChatMessage(20.0)])
        assert len(log.messages_between(10.0, 20.0)) == 1

    def test_messages_per_hour(self):
        video = Video(video_id="v", duration=1800.0)
        log = VideoChatLog(video=video, messages=[ChatMessage(float(i)) for i in range(50)])
        assert log.messages_per_hour == pytest.approx(100.0)

    def test_from_pairs(self):
        video = Video(video_id="v", duration=100.0)
        log = VideoChatLog.from_pairs(video, [(5.0, "gg"), (1.0, "wp")])
        assert len(log) == 2 and log.messages[0].text == "wp"


class TestLightorConfig:
    def test_paper_defaults(self):
        config = LightorConfig.paper_defaults()
        assert config.window_size == 25.0
        assert config.min_dot_spacing == 120.0
        assert config.play_radius == 60.0
        assert config.start_tolerance == 10.0

    def test_with_overrides(self):
        config = LightorConfig().with_overrides(top_k=3)
        assert config.top_k == 3 and LightorConfig().top_k == 10

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            LightorConfig(window_size=0.0)
        with pytest.raises(ValidationError):
            LightorConfig(top_k=0)
        with pytest.raises(ValueError):
            LightorConfig(min_play_duration=10.0, max_play_duration=5.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            LightorConfig().top_k = 5  # type: ignore[misc]
