"""EXP-F10 benchmark: regenerate Figure 10 (LIGHTOR vs Chat-LSTM by training size).

Expected shapes: LIGHTOR trained on a single labelled video beats Chat-LSTM
trained on a single video (panel a) and remains at least competitive with
Chat-LSTM trained on the large training set (panel b), while Chat-LSTM's
training time is orders of magnitude larger than LIGHTOR's.
"""

import numpy as np

from benchmarks.conftest import run_and_report


def _mean(curve: dict) -> float:
    return float(np.mean(list(curve.values())))


def test_fig10_chat_lstm(benchmark, bench_scale):
    results = run_and_report(benchmark, "fig10", bench_scale)

    panel_a = results["panel_a"]
    lightor = _mean(panel_a["lightor (1 video)"])
    lstm_single = _mean(panel_a["chat-lstm (1 video)"])
    assert lightor >= lstm_single

    panel_b = results["panel_b"]
    lstm_many_key = [key for key in panel_b if key.startswith("chat-lstm")][0]
    lstm_many = _mean(panel_b[lstm_many_key])
    assert lightor >= lstm_many - 0.05
    assert lightor >= 0.5
