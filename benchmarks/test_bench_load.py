"""BENCH-LOAD — batched-ingest scaling study over the sharded service tier.

Drives one deterministic soak workload (a Zipf fleet of marathon channels:
chat firehoses, viewer-play firehoses, staggered lifecycles) through the
sharded service at every point of a batch-size × shard-count grid and
records wall-clock events/sec plus the per-stage breakdown in
``BENCH_load.json`` at the repo root, so successive PRs can track the
trajectory.

Two gates encode the PR's claims:

* **batched ingest pays**: at full size, batch 512 must be at least 5x the
  per-event (batch 1) throughput on the memory backend — per-event serving
  re-scores the provisional dots against an ever-growing window history,
  which the batch boundary amortises;
* **sharded + concurrent is still correct**: the oracle spot-check (a
  sequential single-shard replay of the byte-identical batches) must report
  zero divergences.

Sizes shrink via the ``LIGHTOR_BENCH_LOAD_*`` environment variables; the CI
smoke job runs tiny sizes (where the 5x gate relaxes to a sanity bound —
the quadratic per-event re-score bill only dominates on long streams).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.config import LightorConfig
from repro.core.initializer.initializer import HighlightInitializer
from repro.datasets import DatasetSpec, build_dataset
from repro.loadgen import LoadWorkload, WorkloadSpec, run_load
from repro.platform import codecs, wire

CHANNELS = int(os.environ.get("LIGHTOR_BENCH_LOAD_CHANNELS", "12"))
VIEWERS = int(os.environ.get("LIGHTOR_BENCH_LOAD_VIEWERS", "1200"))
DURATION = float(os.environ.get("LIGHTOR_BENCH_LOAD_DURATION", "28800"))
WORKERS = int(os.environ.get("LIGHTOR_BENCH_LOAD_WORKERS", "8"))
SEED = int(os.environ.get("LIGHTOR_BENCH_LOAD_SEED", "7"))

BATCH_SIZES = (1, 64, 512)
SHARD_COUNTS = (1, 4)
# The 5x gate only holds at full size (the per-event re-score bill needs
# long streams to dominate); any size override relaxes it to a sanity bound.
FULL_SIZE = not any(
    f"LIGHTOR_BENCH_LOAD_{knob}" in os.environ
    for knob in ("CHANNELS", "VIEWERS", "DURATION", "WORKERS", "SEED")
)
SPEEDUP_GATE = 5.0 if FULL_SIZE else 1.2

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_load.json"


@pytest.fixture(scope="module")
def fitted_initializer():
    dataset = build_dataset(DatasetSpec.dota2(size=1, seed=2020))
    initializer = HighlightInitializer(config=LightorConfig())
    initializer.fit([dataset[0].training_pair])
    return initializer


@pytest.fixture(scope="module")
def workload():
    """One synthesised soak fleet, re-chunked per grid point."""
    spec = WorkloadSpec(
        channels=CHANNELS,
        viewers=VIEWERS,
        duration=DURATION,
        batch_size=1,
        seed=SEED,
        stretch=True,
    )
    return LoadWorkload.from_spec(spec)


def _save(payload: dict) -> None:
    signature = (
        f"channels{CHANNELS}-viewers{VIEWERS}-duration{int(DURATION)}-workers{WORKERS}"
    )
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    section = results.setdefault("load_scaling", {})
    entry = section.get(signature)
    if not isinstance(entry, dict):
        entry = {}
    entry.update(payload)
    entry["config"] = {
        "channels": CHANNELS,
        "viewers": VIEWERS,
        "duration": DURATION,
        "workers": WORKERS,
        "batch_sizes": list(BATCH_SIZES),
        "shard_counts": list(SHARD_COUNTS),
        "seed": SEED,
    }
    section[signature] = entry
    # allow_nan=False keeps the file spec-valid JSON: a non-finite rate
    # anywhere in the report fails the bench loudly instead of writing a
    # file most parsers reject.
    RESULTS_PATH.write_text(
        json.dumps(results, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


def test_bench_load_scaling(fitted_initializer, workload):
    print()
    print(
        f"soak fleet: {workload.spec.channels} channels, "
        f"{workload.total_chat:,} chat + {workload.total_plays:,} play events"
    )
    grid: dict[str, dict[str, dict]] = {}
    throughput: dict[tuple[int, int], float] = {}
    for n_shards in SHARD_COUNTS:
        row: dict[str, dict] = {}
        for batch_size in BATCH_SIZES:
            report = run_load(
                workload.spec,
                fitted_initializer,
                shards=n_shards,
                workers=WORKERS,
                backend="memory",
                oracle=False,
                workload=workload.rebatched(batch_size),
            )
            throughput[(n_shards, batch_size)] = report.events_per_sec
            row[str(batch_size)] = report.to_dict()
            print(
                f"  shards={n_shards} batch={batch_size:<4d} "
                f"{report.events_per_sec:>12,.0f} events/s"
            )
        grid[str(n_shards)] = row

    ratios = {
        n_shards: throughput[(n_shards, 512)] / throughput[(n_shards, 1)]
        for n_shards in SHARD_COUNTS
    }
    for n_shards, ratio in ratios.items():
        print(f"  shards={n_shards}: batch 512 vs per-event speedup {ratio:.2f}x")
    _save({"grid": grid, "speedups_512_vs_1": {str(k): round(v, 2) for k, v in ratios.items()}})

    best = max(ratios.values())
    assert best >= SPEEDUP_GATE, (
        f"batched ingest speedup {best:.2f}x at batch 512 fell below the "
        f"{SPEEDUP_GATE}x gate (throughput: {throughput})"
    )


def test_bench_load_oracle_spot_check(fitted_initializer, workload):
    """The sharded concurrent run must match the sequential oracle exactly."""
    report = run_load(
        workload.spec,
        fitted_initializer,
        shards=SHARD_COUNTS[-1],
        workers=WORKERS,
        backend="memory",
        oracle=True,
        workload=workload.rebatched(64),
    )
    print()
    print(report.describe())
    _save({"oracle": {"channels": len(report.outcomes), "divergences": report.divergences}})
    assert report.oracle_checked
    assert report.divergences == [], f"oracle divergences: {report.divergences}"


# ---------------------------------------------------------------------------
# Cluster (multi-process) scaling
# ---------------------------------------------------------------------------

# The whole point of the process cluster is escaping the GIL, so the scaling
# gate is conditional on the hardware actually having cores to scale onto:
# on fewer than 4 usable CPUs a 4-worker fleet time-slices one core and the
# honest measurement is recorded without asserting a speedup it cannot show.
CPUS = len(os.sched_getaffinity(0))
CLUSTER_BATCH = 512
CLUSTER_SPEEDUP_GATE = 2.0


def test_bench_cluster_scaling(fitted_initializer, workload):
    """Shard *processes* vs one process, same workload, batch 512.

    Records the ``transport="cluster"`` grid (and the host's usable CPU
    count) in ``BENCH_load.json``.  The ≥2x gate applies at full size on
    hosts with at least 4 usable cores — exactly the configurations where
    the flat in-process shard curve was the bug being fixed.
    """
    print()
    grid: dict[str, dict] = {}
    throughput: dict[int, float] = {}
    for n_shards in SHARD_COUNTS:
        report = run_load(
            workload.spec,
            fitted_initializer,
            shards=n_shards,
            workers=WORKERS,
            backend="memory",
            oracle=False,
            workload=workload.rebatched(CLUSTER_BATCH),
            transport="cluster",
        )
        throughput[n_shards] = report.events_per_sec
        grid[str(n_shards)] = report.to_dict()
        print(
            f"  cluster shards={n_shards} batch={CLUSTER_BATCH} "
            f"{report.events_per_sec:>12,.0f} events/s"
        )
    speedup = throughput[SHARD_COUNTS[-1]] / throughput[SHARD_COUNTS[0]]
    print(
        f"  cluster {SHARD_COUNTS[-1]} vs {SHARD_COUNTS[0]} process(es): "
        f"{speedup:.2f}x on {CPUS} usable CPU(s)"
    )
    _save(
        {
            "cluster": {
                "batch_size": CLUSTER_BATCH,
                "grid": grid,
                "speedup_4_vs_1": round(speedup, 2),
                "cpus": CPUS,
                "gated": FULL_SIZE and CPUS >= 4,
            }
        }
    )
    if FULL_SIZE and CPUS >= 4:
        assert speedup >= CLUSTER_SPEEDUP_GATE, (
            f"process-shard speedup {speedup:.2f}x at batch {CLUSTER_BATCH} fell "
            f"below the {CLUSTER_SPEEDUP_GATE}x gate on {CPUS} CPUs "
            f"(throughput: {throughput})"
        )
    else:
        # Still a bug bar even unscaled: a fleet must never be pathologically
        # slower than one worker (routing overhead is per-batch, not per-event).
        assert speedup > 0.5, (
            f"cluster fleet collapsed: {speedup:.2f}x vs one worker "
            f"(throughput: {throughput})"
        )


# ---------------------------------------------------------------------------
# Wire codec axis (JSON vs binary frames)
# ---------------------------------------------------------------------------

CODEC_BATCH = 512
# Binary frames trade CPU for bytes; the size win only needs real 512-event
# batches, but the events/sec win additionally needs cores that aren't
# already saturated time-slicing the shard fleet — same honesty rule as the
# cluster gate above.
BYTES_GATE = 0.5
CODEC_SPEEDUP_GATE = 1.3


def _codec_payloads(workload: LoadWorkload) -> list[dict]:
    """The exact request bodies the wire carries at batch ``CODEC_BATCH``."""
    payloads = []
    for batch in workload.rebatched(CODEC_BATCH).batches():
        if batch.kind == "chat":
            payloads.append(
                {
                    "messages": [codecs.chat_message_to_dict(m) for m in batch.events],
                    "persist": False,
                }
            )
        else:
            payloads.append(
                {"interactions": [codecs.interaction_to_dict(i) for i in batch.events]}
            )
    return payloads


def test_bench_codec_bytes_and_cpu(workload):
    """Micro-bench both codecs over the real wire payloads: bytes/event and
    encode/decode CPU seconds, recorded per codec in ``BENCH_load.json``.

    The ≤0.5x bytes/event gate arms at full size (tiny smoke fleets produce
    under-filled batches that compress worse); any size still has to beat
    plain JSON or the codec is pointless.
    """
    payloads = _codec_payloads(workload)
    events = sum(
        len(p.get("messages") or p.get("interactions")) for p in payloads
    )
    assert events > 0
    stats: dict[str, dict] = {}
    for codec in wire.WIRE_CODECS:
        if codec == "binary":
            encode = wire.encode_frame
            decode = wire.decode_frame
        else:
            encode = lambda value: json.dumps(value).encode("utf-8")
            decode = lambda blob: json.loads(blob.decode("utf-8"))
        t0 = time.process_time()
        blobs = [encode(p) for p in payloads]
        encode_cpu = time.process_time() - t0
        t0 = time.process_time()
        decoded = [decode(b) for b in blobs]
        decode_cpu = time.process_time() - t0
        assert decoded == [json.loads(json.dumps(p)) for p in payloads]
        total = sum(len(b) for b in blobs)
        stats[codec] = {
            "bytes_total": total,
            "bytes_per_event": round(total / events, 2),
            "encode_cpu_s": round(encode_cpu, 4),
            "decode_cpu_s": round(decode_cpu, 4),
        }
    ratio = stats["binary"]["bytes_per_event"] / stats["json"]["bytes_per_event"]
    print()
    for codec, row in stats.items():
        print(
            f"  codec={codec:<6s} {row['bytes_per_event']:>8,.1f} bytes/event "
            f"(encode {row['encode_cpu_s']:.3f}s, decode {row['decode_cpu_s']:.3f}s "
            f"over {events:,} events)"
        )
    print(f"  binary/json size ratio {ratio:.3f}x (gate ≤{BYTES_GATE}x at full size)")
    _save(
        {
            "codec_micro": {
                "batch_size": CODEC_BATCH,
                "events": events,
                "per_codec": stats,
                "bytes_ratio": round(ratio, 4),
                "gated": FULL_SIZE,
            }
        }
    )
    if FULL_SIZE:
        assert ratio <= BYTES_GATE, (
            f"binary frames are {ratio:.3f}x the JSON bytes/event — "
            f"over the {BYTES_GATE}x gate ({stats})"
        )
    else:
        assert ratio < 1.0, (
            f"binary frames are no smaller than JSON ({ratio:.3f}x) even at "
            f"smoke size ({stats})"
        )


def test_bench_codec_wire_throughput(fitted_initializer, workload):
    """End-to-end events/sec over HTTP at batch 512, JSON vs binary.

    Fingerprint equality across codecs is asserted by the tier-1 suites;
    this bench records the throughput axis. The ≥1.3x gate arms at full
    size on ≥4 usable cores (below that the wire run is CPU-starved and the
    codec swap can't show its win); the honest measurement and the
    ``gated`` flag are recorded either way.
    """
    print()
    throughput: dict[str, float] = {}
    grid: dict[str, dict] = {}
    for codec in wire.WIRE_CODECS:
        report = run_load(
            workload.spec,
            fitted_initializer,
            shards=SHARD_COUNTS[-1],
            workers=WORKERS,
            backend="memory",
            oracle=False,
            workload=workload.rebatched(CODEC_BATCH),
            transport="http",
            wire_codec=codec,
        )
        throughput[codec] = report.events_per_sec
        grid[codec] = report.to_dict()
        print(
            f"  http codec={codec:<6s} batch={CODEC_BATCH} "
            f"{report.events_per_sec:>12,.0f} events/s"
        )
    speedup = throughput["binary"] / throughput["json"]
    gated = FULL_SIZE and CPUS >= 4
    print(f"  binary vs json over http: {speedup:.2f}x on {CPUS} usable CPU(s)")
    _save(
        {
            "codec_wire": {
                "batch_size": CODEC_BATCH,
                "transport": "http",
                "grid": grid,
                "speedup_binary_vs_json": round(speedup, 2),
                "cpus": CPUS,
                "gated": gated,
            }
        }
    )
    if gated:
        assert speedup >= CODEC_SPEEDUP_GATE, (
            f"binary wire speedup {speedup:.2f}x at batch {CODEC_BATCH} fell "
            f"below the {CODEC_SPEEDUP_GATE}x gate on {CPUS} CPUs "
            f"(throughput: {throughput})"
        )
    else:
        assert speedup > 0.5, (
            f"binary wire collapsed: {speedup:.2f}x vs JSON "
            f"(throughput: {throughput})"
        )


# ---------------------------------------------------------------------------
# Online reshard axis (migration pause under live load)
# ---------------------------------------------------------------------------

RESHARD_BATCH = 64
# The per-channel migration pause is a *correctness-adjacent* latency: the
# whole point of online resharding is that only the moving channel stalls,
# and only briefly.  The cap arms under the same honesty rule as the other
# wire benches — full size on ≥4 usable cores — because a starved host
# stretches the checkpoint/export/import critical section arbitrarily.
RESHARD_PAUSE_GATE_MS = 5000.0


def test_bench_reshard_pause(fitted_initializer, workload):
    """Grow and shrink the tier mid-soak, on both transports, and record the
    per-channel migration pause p99 in the ``reshard`` axis of
    ``BENCH_load.json``.

    Byte-equality against the undisturbed sequential oracle is asserted
    unconditionally (``run_reshard`` replays the identical workload into a
    single-shard tier and fingerprints every channel); the pause cap arms
    only where the honest measurement can mean something.
    """
    from repro.loadgen import run_reshard

    rebatched = workload.rebatched(RESHARD_BATCH)
    reshard_after = max(2, len(rebatched.batches()) // 3)
    gated = FULL_SIZE and CPUS >= 4
    print()
    grid: dict[str, dict] = {}
    for transport in ("inproc", "cluster"):
        for old_shards, new_shards in ((2, 3), (3, 2)):
            report = run_reshard(
                workload.spec,
                fitted_initializer,
                shards=old_shards,
                to_shards=new_shards,
                reshard_after=reshard_after,
                workers=WORKERS,
                backend="memory",
                transport=transport,
                workload=rebatched,
            )
            key = f"{transport}:{old_shards}->{new_shards}"
            grid[key] = report.to_dict()
            print(
                f"  reshard {key:<14s} moved {report.channels_moved}/"
                f"{report.channels} channel(s), pause p99 "
                f"{report.pause_p99_ms:>8,.1f} ms"
            )
            assert report.ok, f"{key}: divergences {report.divergences}"
            assert report.new_shards == new_shards and report.epoch > 0
    worst = max(row["pause_p99_ms"] for row in grid.values())
    print(f"  worst pause p99 {worst:,.1f} ms on {CPUS} usable CPU(s)")
    _save(
        {
            "reshard": {
                "batch_size": RESHARD_BATCH,
                "reshard_after": reshard_after,
                "grid": grid,
                "pause_p99_ms_worst": round(worst, 3),
                "cpus": CPUS,
                "gated": gated,
            }
        }
    )
    if gated:
        assert worst <= RESHARD_PAUSE_GATE_MS, (
            f"migration pause p99 {worst:,.1f} ms blew the "
            f"{RESHARD_PAUSE_GATE_MS:,.0f} ms cap (grid: {grid})"
        )


def test_bench_entries_record_honest_gating():
    """PR-6 follow-on: every core-gated BENCH entry must record the CPU
    count it actually measured on and whether its gate armed — a 1-CPU CI
    box must never write ``gated: true``."""
    if not RESULTS_PATH.exists():
        pytest.skip("no BENCH_load.json yet")
    signature = (
        f"channels{CHANNELS}-viewers{VIEWERS}-duration{int(DURATION)}-workers{WORKERS}"
    )
    entry = json.loads(RESULTS_PATH.read_text())["load_scaling"].get(signature)
    if entry is None:
        pytest.skip("no entry for this size signature yet")
    core_gated = FULL_SIZE and CPUS >= 4
    for key, expect_gated in (
        ("cluster", core_gated),
        ("codec_wire", core_gated),
        ("codec_micro", FULL_SIZE),
        ("reshard", core_gated),
    ):
        section = entry.get(key)
        if section is None:
            continue
        if "cpus" in section:
            assert section["cpus"] == CPUS, (key, section["cpus"], CPUS)
        assert section["gated"] == expect_gated, (key, section["gated"], expect_gated)


def test_bench_cluster_oracle_spot_check(fitted_initializer, workload):
    """The concurrent multi-process run must match the sequential oracle —
    the same byte-equivalence bar the in-process tier is held to."""
    report = run_load(
        workload.spec,
        fitted_initializer,
        shards=SHARD_COUNTS[-1],
        workers=WORKERS,
        backend="memory",
        oracle=True,
        workload=workload.rebatched(64),
        transport="cluster",
    )
    print()
    print(report.describe())
    _save(
        {
            "cluster_oracle": {
                "channels": len(report.outcomes),
                "divergences": report.divergences,
            }
        }
    )
    assert report.oracle_checked and report.transport == "cluster"
    assert report.divergences == [], f"oracle divergences: {report.divergences}"
