"""EXP-F6 benchmark: regenerate Figure 6 (prediction stage of the Initializer).

Expected shapes: the full three-feature model matches or beats the
message-number-only model at every k and clearly beats it at the largest k
(panel a); Chat Precision@10 stays essentially flat as the training set
shrinks to a single video (panel b).
"""

from benchmarks.conftest import run_and_report


def test_fig6_prediction(benchmark, bench_scale):
    results = run_and_report(benchmark, "fig6", bench_scale)
    ablation = results["ablation"]
    ks = results["ks"]
    largest_k = max(ks)

    # Panel (a): richer features never hurt, and win at the largest k.
    for k in ks:
        assert ablation["msg_num+len+sim"][k] >= ablation["msg_num"][k] - 0.05
    assert ablation["msg_num+len+sim"][largest_k] >= ablation["msg_num"][largest_k]
    assert ablation["msg_num+len+sim"][largest_k] >= 0.6

    # Panel (b): one training video is already enough (flat curve).
    curve = results["training_curve"]
    assert max(curve.values()) - min(curve.values()) <= 0.15
    assert curve[min(curve)] >= 0.6
