"""EXP-T1 benchmark: regenerate Table I (end-to-end LIGHTOR vs Joint-LSTM).

Expected shapes: LIGHTOR (trained on one labelled video, refined through the
crowd simulator) achieves clearly higher Video Precision@5 for both start and
end positions than Joint-LSTM (trained on the large LoL set), and its
training time is orders of magnitude smaller.
"""

from benchmarks.conftest import run_and_report


def test_table1_end_to_end(benchmark, bench_scale):
    results = run_and_report(benchmark, "table1", bench_scale)
    lightor = results["lightor"]
    joint = results["joint_lstm"]

    assert lightor["start_precision"] >= joint["start_precision"]
    assert lightor["end_precision"] >= joint["end_precision"] - 0.05
    assert lightor["start_precision"] >= 0.6

    # Training-cost gap: LIGHTOR fits three-feature logistic regression in
    # seconds; the deep baseline's character LSTM takes far longer even on
    # the scaled-down offline substitute.
    assert lightor["training_seconds"] * 5.0 <= joint["training_seconds"]
    assert lightor["training_videos"] == 1
    assert joint["training_videos"] >= 1
