"""BENCH-SCENARIOS — adversarial traffic shapes under the load harness.

Runs every scenario in :data:`repro.loadgen.scenarios.SCENARIOS` (flash
crowd, chat flood, reconnect storm, multi-tenant fairness) through the
sharded tier, asserts each scenario's declared oracle, and records the
per-scenario throughput and verdicts under ``scenarios`` in
``BENCH_load.json`` so successive PRs can track how the adversarial
shapes move relative to the steady fleet.

The ``fairness`` scenario additionally runs over HTTP with the tightest
per-channel admission budget (``--max-pending-per-channel 1``): the
harness keeps one driver worker per channel, so a budget of 1 must never
refuse the drive itself — the run completing clean *is* the assertion
that per-channel accounting refuses only concurrent excess.

Sizes shrink via the ``LIGHTOR_BENCH_SCENARIO_*`` environment variables
(the CI smoke job runs tiny sizes); ``cpus`` and ``gated`` are recorded
honestly either way — the oracle gates here are correctness bars and arm
at every size.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.config import LightorConfig
from repro.core.initializer.initializer import HighlightInitializer
from repro.datasets import DatasetSpec, build_dataset
from repro.loadgen import SCENARIOS, WorkloadSpec, run_scenario

CHANNELS = int(os.environ.get("LIGHTOR_BENCH_SCENARIO_CHANNELS", "6"))
VIEWERS = int(os.environ.get("LIGHTOR_BENCH_SCENARIO_VIEWERS", "240"))
DURATION = float(os.environ.get("LIGHTOR_BENCH_SCENARIO_DURATION", "3600"))
WORKERS = int(os.environ.get("LIGHTOR_BENCH_SCENARIO_WORKERS", "4"))
SEED = int(os.environ.get("LIGHTOR_BENCH_SCENARIO_SEED", "7"))

SHARDS = 2
FULL_SIZE = not any(
    f"LIGHTOR_BENCH_SCENARIO_{knob}" in os.environ
    for knob in ("CHANNELS", "VIEWERS", "DURATION", "WORKERS", "SEED")
)
CPUS = len(os.sched_getaffinity(0))

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_load.json"
SPEC = WorkloadSpec(
    channels=CHANNELS,
    viewers=VIEWERS,
    duration=DURATION,
    batch_size=64,
    seed=SEED,
)


@pytest.fixture(scope="module")
def fitted_initializer():
    dataset = build_dataset(DatasetSpec.dota2(size=1, seed=2020))
    initializer = HighlightInitializer(config=LightorConfig())
    initializer.fit([dataset[0].training_pair])
    return initializer


def _save(name: str, payload: dict) -> None:
    signature = (
        f"channels{CHANNELS}-viewers{VIEWERS}-duration{int(DURATION)}-workers{WORKERS}"
    )
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    section = results.setdefault("scenarios", {})
    entry = section.setdefault(signature, {})
    entry[name] = payload
    entry["config"] = {
        "channels": CHANNELS,
        "viewers": VIEWERS,
        "duration": DURATION,
        "workers": WORKERS,
        "shards": SHARDS,
        "seed": SEED,
        "cpus": CPUS,
        # Oracle gates are correctness bars: they arm at every size, so a
        # tiny smoke entry is exactly as "gated" as a full-size one.
        "gated": True,
        "full_size": FULL_SIZE,
    }
    RESULTS_PATH.write_text(
        json.dumps(results, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_bench_scenario_oracles(name, fitted_initializer):
    """Every scenario, inproc: drive it and assert its declared oracle."""
    result = run_scenario(
        name, SPEC, fitted_initializer, shards=SHARDS, workers=WORKERS
    )
    print()
    print(result.describe())
    report = result.report
    _save(
        name,
        {
            "oracle": result.oracle,
            "events": report.total_events,
            "events_per_sec": round(report.events_per_sec, 1),
            "divergences": report.divergences,
            "baseline_divergences": result.baseline_divergences,
        },
    )
    assert report.events_per_sec > 0
    assert result.ok, (
        f"scenario {name} oracle failed: divergences={report.divergences} "
        f"baseline={result.baseline_divergences}"
    )


def test_bench_fairness_under_per_channel_budget(fitted_initializer):
    """The fairness scenario over HTTP at the tightest per-channel budget."""
    result = run_scenario(
        "fairness",
        SPEC,
        fitted_initializer,
        shards=SHARDS,
        workers=WORKERS,
        transport="http",
        per_channel_pending=1,
    )
    print()
    print(result.describe())
    report = result.report
    _save(
        "fairness-budgeted",
        {
            "oracle": result.oracle,
            "transport": "http",
            "per_channel_pending": 1,
            "events": report.total_events,
            "events_per_sec": round(report.events_per_sec, 1),
            "divergences": report.divergences,
        },
    )
    assert report.events_per_sec > 0
    assert result.ok, f"budgeted fairness run diverged: {report.divergences}"
