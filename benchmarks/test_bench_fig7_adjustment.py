"""EXP-F7 benchmark: regenerate Figure 7 (adjustment stage of the Initializer).

Expected shapes: LIGHTOR's red dots are several times more precise than
Toretter's burst positions and close to the Ideal bound (panel a); the
learned adjustment constant stays within a narrow band as the training size
varies (panel b).
"""

from benchmarks.conftest import run_and_report


def test_fig7_adjustment(benchmark, bench_scale):
    results = run_and_report(benchmark, "fig7", bench_scale)
    curves = results["curves"]
    ks = results["ks"]
    mid_k = 5 if 5 in ks else ks[len(ks) // 2]

    # Panel (a): LIGHTOR >> Toretter, and LIGHTOR close to the Ideal bound.
    assert curves["lightor"][mid_k] >= 2.0 * max(curves["toretter"][mid_k], 0.05)
    assert curves["lightor"][mid_k] >= 0.6
    assert curves["ideal"][mid_k] >= curves["lightor"][mid_k] - 0.05

    # Panel (b): the constant is stable within a ~10 s band.
    constants = list(results["constants"].values())
    assert max(constants) - min(constants) <= 10.0
    assert all(10.0 <= value <= 40.0 for value in constants)
