"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure of the paper: it runs the
corresponding experiment (at the ``small`` scale unless the
``LIGHTOR_BENCH_SCALE`` environment variable says otherwise), prints the
rows/series the paper reports, and records the wall-clock through
pytest-benchmark (one round — these are experiment harnesses, not
micro-benchmarks).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

BENCH_SCALE = os.environ.get("LIGHTOR_BENCH_SCALE", "small")

_BENCH_DIR = Path(__file__).parent.resolve()


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench``.

    The tier-1 gate runs ``-m "not bench"`` so the (slower) experiment
    harnesses stay out of it while remaining one plain ``pytest`` away.
    """
    for item in items:
        try:
            in_bench_dir = Path(str(item.fspath)).resolve().is_relative_to(_BENCH_DIR)
        except AttributeError:  # pragma: no cover - Python < 3.9 fallback
            in_bench_dir = str(_BENCH_DIR) in str(item.fspath)
        if in_bench_dir:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Evaluation scale used by all benchmarks (small | medium | paper)."""
    return BENCH_SCALE


def run_and_report(benchmark, experiment_id: str, scale: str, **kwargs):
    """Run ``experiment_id`` once under pytest-benchmark and print its report."""
    from repro.experiments import run_experiment

    def once():
        return run_experiment(experiment_id, scale=scale, **kwargs)

    results, report = benchmark.pedantic(once, rounds=1, iterations=1)
    print()
    print(report)
    return results
