"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure of the paper: it runs the
corresponding experiment (at the ``small`` scale unless the
``LIGHTOR_BENCH_SCALE`` environment variable says otherwise), prints the
rows/series the paper reports, and records the wall-clock through
pytest-benchmark (one round — these are experiment harnesses, not
micro-benchmarks).
"""

from __future__ import annotations

import os

import pytest

BENCH_SCALE = os.environ.get("LIGHTOR_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Evaluation scale used by all benchmarks (small | medium | paper)."""
    return BENCH_SCALE


def run_and_report(benchmark, experiment_id: str, scale: str, **kwargs):
    """Run ``experiment_id`` once under pytest-benchmark and print its report."""
    from repro.experiments import run_experiment

    def once():
        return run_experiment(experiment_id, scale=scale, **kwargs)

    results, report = benchmark.pedantic(once, rounds=1, iterations=1)
    print()
    print(report)
    return results
