"""EXP-F9 benchmark: regenerate Figure 9 (applicability on a Twitch-like platform).

Expected shape: well over 80 % of popular recorded videos clear the
500-messages-per-hour threshold the Initializer needs, and every one of them
clears the 100-viewer threshold the Extractor needs.
"""

from benchmarks.conftest import run_and_report


def test_fig9_applicability(benchmark, bench_scale):
    results = run_and_report(benchmark, "fig9", bench_scale)
    fraction_chat_ok = 1.0 - results["fraction_below_chat_threshold"]
    fraction_viewers_ok = 1.0 - results["fraction_below_viewer_threshold"]
    assert fraction_chat_ok >= 0.8
    assert fraction_viewers_ok == 1.0
    assert results["n_videos"] >= 10
