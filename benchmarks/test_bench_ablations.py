"""Extension benchmark: ablations of the design choices DESIGN.md calls out.

Expected shapes: removing the adjustment stage (raw chat peak instead of
peak minus the learned constant) hurts start precision, and the full
filtering → classification → aggregation dataflow is at least as good as
either degraded variant.
"""

from benchmarks.conftest import run_and_report


def test_ablations(benchmark, bench_scale):
    results = run_and_report(benchmark, "ablations", bench_scale)
    initializer = results["initializer"]
    extractor = results["extractor"]

    # The adjustment stage is the point of Section IV-C: without it, dots sit
    # on the (delayed) chat peak and precision collapses.
    assert initializer["with_adjustment"] >= initializer["without_adjustment"] + 0.1

    # The full extractor dataflow is not worse than the degraded variants.
    assert extractor["full_dataflow"] >= extractor["no_play_filter"] - 0.05
    assert extractor["full_dataflow"] >= extractor["no_type_classifier"] - 0.05
