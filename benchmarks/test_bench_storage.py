"""BENCH-STORAGE — backend write/read throughput and shard scaling.

The storage refactor introduced pluggable backends (memory, SQLite) and a
sharded service tier; this bench starts their performance trajectory.  It
measures, per backend, the write and read throughput of the four row
families (chat, interactions, red dots, highlight records), then measures
how concurrent interaction logging scales with the shard count through the
sharded front door.

Results are printed and appended to ``BENCH_storage.json`` at the repo root
so successive PRs can track the trajectory.  Sizes shrink via the
``LIGHTOR_BENCH_STORAGE_*`` environment variables (the CI smoke job runs
tiny sizes to keep the bench from rotting).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.initializer.initializer import HighlightInitializer
from repro.core.types import ChatMessage, Highlight, Interaction, InteractionKind, RedDot, Video
from repro.platform.backends import SQLiteStore, create_backend
from repro.platform.sharding import ShardedLightorService

N_VIDEOS = int(os.environ.get("LIGHTOR_BENCH_STORAGE_VIDEOS", "8"))
MESSAGES_PER_VIDEO = int(os.environ.get("LIGHTOR_BENCH_STORAGE_MESSAGES", "2000"))
INTERACTIONS_PER_VIDEO = int(os.environ.get("LIGHTOR_BENCH_STORAGE_INTERACTIONS", "2000"))
INTERACTION_BATCH = 50
SHARD_COUNTS = (1, 2, 4)
WRITER_THREADS = int(os.environ.get("LIGHTOR_BENCH_STORAGE_WRITERS", "4"))

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_storage.json"

VIDEO_DURATION = 7200.0


def _videos():
    return [Video(video_id=f"bench-{i:04d}", duration=VIDEO_DURATION) for i in range(N_VIDEOS)]


def _chat(video_id: str):
    step = VIDEO_DURATION / (MESSAGES_PER_VIDEO + 1)
    return [
        ChatMessage(timestamp=i * step, user=f"u{i % 100}", text="PogChamp gg")
        for i in range(MESSAGES_PER_VIDEO)
    ]


def _interactions():
    step = VIDEO_DURATION / (INTERACTIONS_PER_VIDEO + 1)
    return [
        Interaction(i * step, InteractionKind.PLAY, user=f"u{i % 100}")
        for i in range(INTERACTIONS_PER_VIDEO)
    ]


def _save(section: str, payload) -> None:
    config = {
        "videos": N_VIDEOS,
        "messages_per_video": MESSAGES_PER_VIDEO,
        "interactions_per_video": INTERACTIONS_PER_VIDEO,
        "writer_threads": WRITER_THREADS,
    }
    # Sections are keyed by the run's sizes, so a tiny CI-smoke run records
    # its own entry instead of clobbering the tracked full-size trajectory.
    signature = (
        f"videos{N_VIDEOS}-msgs{MESSAGES_PER_VIDEO}"
        f"-ints{INTERACTIONS_PER_VIDEO}-writers{WRITER_THREADS}"
    )
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    section_data = results.setdefault(section, {})
    entry = section_data.get(signature)
    if not isinstance(entry, dict):
        entry = {}
    entry.update(payload)
    entry["config"] = config
    section_data[signature] = entry
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def _timed(operation) -> tuple[float, int]:
    started = time.perf_counter()
    count = operation()
    return time.perf_counter() - started, count


@pytest.mark.parametrize("kind", ["memory", "sqlite-memory", "sqlite-file"])
def test_bench_backend_throughput(benchmark, kind, tmp_path):
    videos = _videos()
    interactions = _interactions()
    chats = {video.video_id: _chat(video.video_id) for video in videos}

    def build_store():
        if kind == "memory":
            return create_backend("memory")
        if kind == "sqlite-memory":
            return create_backend("sqlite")
        return SQLiteStore(tmp_path / "bench.db")

    def run_matrix():
        store = build_store()
        rows = {}

        def write_chat():
            total = 0
            for video in videos:
                store.put_video(video)
                total += store.put_chat(video.video_id, chats[video.video_id])
            return total

        def read_chat():
            return sum(len(store.get_chat(v.video_id)) for v in videos)

        def write_interactions():
            total = 0
            for video in videos:
                for start in range(0, len(interactions), INTERACTION_BATCH):
                    batch = interactions[start : start + INTERACTION_BATCH]
                    store.log_interactions(video.video_id, batch)
                    total += len(batch)
            return total

        def read_interactions():
            return sum(len(store.get_interactions(v.video_id)) for v in videos)

        def write_dots_and_highlights():
            total = 0
            for video in videos:
                dots = [RedDot(position=p * 600.0, score=p, window=(p * 600.0, p * 600.0 + 30.0))
                        for p in range(10)]
                store.put_red_dots(video.video_id, dots)
                store.put_highlight(video.video_id, Highlight(10.0, 40.0))
                total += len(dots) + 1
            return total

        for name, op in (
            ("chat_write", write_chat),
            ("chat_read", read_chat),
            ("interaction_write", write_interactions),
            ("interaction_read", read_interactions),
            ("dots_highlights_write", write_dots_and_highlights),
        ):
            seconds, count = _timed(op)
            rows[name] = {
                "rows": count,
                "seconds": round(seconds, 6),
                "rows_per_sec": round(count / seconds, 1) if seconds > 0 else float("inf"),
            }
        stats = store.stats()
        store.close()
        return rows, stats

    rows, stats = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    print()
    print(f"backend {kind}: {stats['chat_messages']:,} chat rows, "
          f"{stats['interactions']:,} interaction rows")
    for name, row in rows.items():
        print(f"  {name:22s} {row['rows']:>9,} rows in {row['seconds']:8.3f}s "
              f"({row['rows_per_sec']:>12,.0f} rows/s)")
    _save("backends", {kind: rows})

    assert stats["chat_messages"] == N_VIDEOS * MESSAGES_PER_VIDEO
    assert stats["interactions"] == N_VIDEOS * INTERACTIONS_PER_VIDEO


def test_bench_shard_scaling():
    videos = _videos()
    interactions = _interactions()
    batches = [
        interactions[start : start + INTERACTION_BATCH]
        for start in range(0, len(interactions), INTERACTION_BATCH)
    ]
    scaling = {}

    for n_shards in SHARD_COUNTS:
        # The interaction-log path never touches the models, so an unfitted
        # initializer keeps the bench about storage, not inference.
        service = ShardedLightorService.create(n_shards, HighlightInitializer())
        for video in videos:
            service.register_video(video)

        def log_all(video):
            for batch in batches:
                service.log_interactions(video.video_id, batch)
            return len(interactions)

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=WRITER_THREADS) as pool:
            total = sum(pool.map(log_all, videos))
        seconds = time.perf_counter() - started
        service.close()

        scaling[str(n_shards)] = {
            "interactions": total,
            "seconds": round(seconds, 6),
            "rows_per_sec": round(total / seconds, 1) if seconds > 0 else float("inf"),
        }

    print()
    print(f"shard scaling ({WRITER_THREADS} writer threads, memory backend):")
    for n_shards, row in scaling.items():
        print(f"  {n_shards} shard(s): {row['interactions']:>9,} interactions in "
              f"{row['seconds']:8.3f}s ({row['rows_per_sec']:>12,.0f} rows/s)")
    _save("shard_scaling", scaling)

    assert all(row["interactions"] == N_VIDEOS * INTERACTIONS_PER_VIDEO for row in scaling.values())
