"""EXP-F8 benchmark: regenerate Figure 8 (extractor over crowd iterations).

Expected shapes: LIGHTOR's start and end precision at the final iteration is
at least as good as at the first iteration and beats the non-iterative
SocialSkip and MOOCer baselines; the Type I/II classifier is clearly better
than chance.
"""

from benchmarks.conftest import run_and_report


def test_fig8_extractor(benchmark, bench_scale):
    results = run_and_report(benchmark, "fig8", bench_scale)
    iterations = results["iterations"]
    first, last = iterations[0], iterations[-1]

    lightor_start = results["start"]["lightor"]
    lightor_end = results["end"]["lightor"]
    assert lightor_start[last] >= lightor_start[first] - 0.1
    assert lightor_start[last] >= 0.6
    assert lightor_end[last] >= 0.6

    # LIGHTOR's final iteration beats both non-iterative baselines on the
    # combined start+end quality.
    lightor_total = lightor_start[last] + lightor_end[last]
    socialskip_total = results["start"]["socialskip"][last] + results["end"]["socialskip"][last]
    moocer_total = results["start"]["moocer"][last] + results["end"]["moocer"][last]
    assert lightor_total >= socialskip_total
    assert lightor_total >= moocer_total

    assert results["type_classification_accuracy"] >= 0.6
