"""EXP-F2 benchmark: regenerate Figure 2 (chat analysis of one video).

Expected shape: a clearly positive start→peak chat delay (tens of seconds)
and separated feature distributions (highlight windows: more messages,
shorter messages, higher similarity).
"""

from benchmarks.conftest import run_and_report


def test_fig2_chat_analysis(benchmark, bench_scale):
    results = run_and_report(benchmark, "fig2", bench_scale)
    assert results["mean_chat_delay"] > 5.0
    stats = results["feature_stats"]
    assert stats["message_number"]["highlight_mean"] > stats["message_number"]["non_highlight_mean"]
    assert stats["message_length"]["highlight_mean"] < stats["message_length"]["non_highlight_mean"]
    assert (
        stats["message_similarity"]["highlight_mean"]
        > stats["message_similarity"]["non_highlight_mean"]
    )
