"""EXP-F3 benchmark: regenerate Figure 3 (play start-offset distributions).

Expected shape: Type I offsets are diffuse (large spread), Type II offsets
are concentrated with a small median — the observation that motivates the
Extractor's two aggregation strategies.
"""

from benchmarks.conftest import run_and_report


def test_fig3_play_offsets(benchmark, bench_scale):
    results = run_and_report(benchmark, "fig3", bench_scale)
    type_i = results["type_i"]
    type_ii = results["type_ii"]
    assert type_i["count"] > 0 and type_ii["count"] > 0
    # Concentration: Type II spread is well below Type I spread.
    assert type_ii["std"] < type_i["std"]
    assert type_ii["iqr"] < type_i["iqr"]
    # Type II median offset is small (viewers see the highlight right away).
    assert abs(type_ii["median"]) <= 15.0
