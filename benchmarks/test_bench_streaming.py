"""BENCH-STREAM — throughput of the streaming engine vs per-message batch.

The streaming engine's reason to exist is that ``LightorPipeline.propose``
pays O(video) work per call: re-windowing, re-tokenizing and re-featurising
the entire chat log.  Serving a live channel by re-running the batch
Initializer after every message is therefore O(video) *per message*; the
streaming engine folds a message in with O(1) amortised work and defers
scoring to sealed-window summaries.

This bench ingests a 10k-message synthetic log through the streaming engine,
reports messages/sec and the p50/p99 per-message ingest latency, measures
the batch Initializer's per-call cost on prefixes of the same log, and
asserts the incremental path is at least 10x cheaper per message — the
ISSUE's acceptance bar (in practice the gap is several orders of magnitude).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.config import LightorConfig
from repro.core.initializer.initializer import HighlightInitializer
from repro.core.types import ChatMessage, Video, VideoChatLog
from repro.datasets.generate import DatasetSpec, build_dataset
from repro.datasets.loaders import training_pairs
from repro.streaming import EmitPolicy, StreamingInitializer

N_MESSAGES = 10_000
VIDEO_DURATION = 7_200.0
REQUIRED_SPEEDUP = 10.0
# How many propose() calls to sample when estimating the per-message cost of
# the batch-per-message strategy (running all 10k would take hours — which is
# the point of this bench).
BATCH_SAMPLES = (2_500, 5_000, 10_000)


def _synthetic_log(n_messages: int = N_MESSAGES) -> VideoChatLog:
    """A dense, bursty 10k-message chat log (deterministic)."""
    rng = np.random.default_rng(1234)
    video = Video(video_id="bench-live", duration=VIDEO_DURATION)
    phrases = ("gg", "rampage!!", "PogChamp", "what a play", "clip it", "lol no way")
    timestamps = np.sort(rng.uniform(0.0, VIDEO_DURATION - 1.0, size=n_messages))
    messages = [
        ChatMessage(
            timestamp=float(t),
            user=f"viewer_{int(rng.integers(0, 500))}",
            text=str(rng.choice(phrases)),
        )
        for t in timestamps
    ]
    return VideoChatLog(video=video, messages=messages)


@pytest.fixture(scope="module")
def fitted_for_bench():
    dataset = build_dataset(DatasetSpec.dota2(size=2))
    initializer = HighlightInitializer(config=LightorConfig())
    initializer.fit(training_pairs(dataset[:1]))
    return initializer


def test_bench_streaming_throughput(benchmark, fitted_for_bench):
    chat_log = _synthetic_log()

    def ingest_stream():
        streaming = StreamingInitializer.from_initializer(
            fitted_for_bench,
            k=10,
            video_id=chat_log.video.video_id,
            policy=EmitPolicy(eval_every_messages=200, eval_every_seconds=60.0),
        )
        latencies = np.empty(len(chat_log.messages))
        for index, message in enumerate(chat_log.messages):
            started = time.perf_counter()
            streaming.ingest(message)
            latencies[index] = time.perf_counter() - started
        dots = streaming.finalize(chat_log.video.duration)
        return latencies, dots

    latencies, dots = benchmark.pedantic(ingest_stream, rounds=1, iterations=1)

    total_seconds = float(latencies.sum())
    per_message_streaming = total_seconds / len(latencies)
    throughput = len(latencies) / total_seconds if total_seconds > 0 else float("inf")
    p50 = float(np.percentile(latencies, 50)) * 1e6
    p99 = float(np.percentile(latencies, 99)) * 1e6

    # Batch-per-message strategy: one full propose() per arriving message.
    # Sample propose() on growing prefixes and average, so the estimate
    # reflects the whole stream rather than only the expensive tail.
    batch_calls = []
    for prefix in BATCH_SAMPLES:
        prefix_log = VideoChatLog(
            video=chat_log.video, messages=chat_log.messages[:prefix]
        )
        started = time.perf_counter()
        fitted_for_bench.propose(prefix_log, k=10)
        batch_calls.append(time.perf_counter() - started)
    per_message_batch = float(np.mean(batch_calls))
    speedup = per_message_batch / per_message_streaming

    print()
    print(f"streaming ingest: {len(latencies):,} messages in {total_seconds:.3f}s "
          f"({throughput:,.0f} msg/s)")
    print(f"per-message latency: p50 {p50:.1f}us, p99 {p99:.1f}us")
    print(f"batch propose() per call (prefixes {BATCH_SAMPLES}): "
          f"{', '.join(f'{c * 1e3:.1f}ms' for c in batch_calls)}")
    print(f"incremental vs batch-per-message speedup: {speedup:,.0f}x "
          f"(required ≥ {REQUIRED_SPEEDUP:.0f}x)")
    print(f"final dots: {len(dots)}")

    assert dots, "the bursty synthetic log must yield red dots"
    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental updates only {speedup:.1f}x faster than re-running the "
        f"batch initializer per message (need ≥ {REQUIRED_SPEEDUP}x)"
    )


def test_bench_streaming_parity_on_bench_log(fitted_for_bench):
    """The bench log is also a parity scenario — speed must not cost exactness."""
    chat_log = _synthetic_log(2_000)
    streaming = StreamingInitializer.from_initializer(
        fitted_for_bench, k=10, video_id=chat_log.video.video_id
    )
    for message in chat_log.messages:
        streaming.ingest(message)
    assert streaming.finalize(chat_log.video.duration) == fitted_for_bench.propose(
        chat_log, k=10
    )
