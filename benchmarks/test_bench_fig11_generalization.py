"""EXP-F11 benchmark: regenerate Figure 11 (cross-game generalization).

Expected shapes: LIGHTOR trained on LoL keeps (most of) its precision when
tested on Dota2, because its three features are game-agnostic; Chat-LSTM
drops much further across games because its character model memorises the
training game's reaction vocabulary.
"""

import numpy as np

from benchmarks.conftest import run_and_report


def _mean(curve: dict) -> float:
    return float(np.mean(list(curve.values())))


def test_fig11_generalization(benchmark, bench_scale):
    results = run_and_report(benchmark, "fig11", bench_scale)

    lightor_lol = _mean(results["lightor"]["LoL"])
    lightor_dota = _mean(results["lightor"]["Dota2"])
    lstm_lol = _mean(results["chat_lstm"]["LoL"])
    lstm_dota = _mean(results["chat_lstm"]["Dota2"])

    # LIGHTOR transfers: its cross-game drop is bounded.
    assert lightor_dota >= lightor_lol - 0.25
    assert lightor_dota >= 0.5
    # LIGHTOR on the unseen game still beats Chat-LSTM on the unseen game.
    assert lightor_dota >= lstm_dota
    # Chat-LSTM's cross-game drop is at least as bad as LIGHTOR's.
    assert (lstm_lol - lstm_dota) >= (lightor_lol - lightor_dota) - 0.15
