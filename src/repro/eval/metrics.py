"""The paper's Precision@K metrics (Section VII-A).

* **Chat Precision@K** — fraction of the top-k returned chat sliding windows
  that are actually discussing a highlight; evaluates the Initializer's
  prediction stage.
* **Video Precision@K (start)** — fraction of the k returned start positions
  that fall within ``[s - 10, e]`` of some ground-truth highlight.
* **Video Precision@K (end)** — fraction of the k returned end positions that
  fall within ``[s, e + 10]`` of some ground-truth highlight.

All three helpers take the *returned* items for a single video; averaging
across test videos is done by the experiment runner.  When fewer than ``k``
items are returned the denominator is the number returned (consistent with
how precision over a returned set is normally computed), and an empty return
scores 0.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.initializer.windows import SlidingWindow
from repro.core.types import Highlight
from repro.eval.matching import is_correct_end, is_correct_start, window_matches_highlight
from repro.utils.validation import require_positive

__all__ = [
    "chat_precision_at_k",
    "video_precision_start_at_k",
    "video_precision_end_at_k",
    "precision_over_positions",
]


def chat_precision_at_k(
    windows: Sequence[SlidingWindow],
    highlights: Sequence[Highlight],
    k: int,
    reaction_delay: float = 30.0,
) -> float:
    """Chat Precision@K over the returned ``windows`` (assumed ranked)."""
    require_positive(k, "k")
    top = list(windows)[:k]
    if not top:
        return 0.0
    correct = sum(
        1 for window in top if window_matches_highlight(window, highlights, reaction_delay)
    )
    return correct / len(top)


def precision_over_positions(
    positions: Sequence[float],
    highlights: Sequence[Highlight],
    k: int,
    predicate,
    tolerance: float = 10.0,
) -> float:
    """Shared helper: precision of the first ``k`` positions under ``predicate``."""
    require_positive(k, "k")
    top = list(positions)[:k]
    if not top:
        return 0.0
    correct = sum(1 for position in top if predicate(position, highlights, tolerance))
    return correct / len(top)


def video_precision_start_at_k(
    positions: Sequence[float],
    highlights: Sequence[Highlight],
    k: int,
    tolerance: float = 10.0,
) -> float:
    """Video Precision@K (start) over the returned start ``positions``."""
    return precision_over_positions(positions, highlights, k, is_correct_start, tolerance)


def video_precision_end_at_k(
    positions: Sequence[float],
    highlights: Sequence[Highlight],
    k: int,
    tolerance: float = 10.0,
) -> float:
    """Video Precision@K (end) over the returned end ``positions``."""
    return precision_over_positions(positions, highlights, k, is_correct_end, tolerance)
