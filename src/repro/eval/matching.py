"""Correctness predicates from the paper's evaluation (Section VII-A).

* a predicted **start position** ``x`` is correct when some ground-truth
  highlight ``[s, e]`` satisfies ``x ∈ [s - 10, e]`` (viewers tolerate at
  most a 10-second wait before the highlight begins);
* a predicted **end position** ``y`` is correct when some highlight
  ``[s, e]`` satisfies ``y ∈ [s, e + 10]``;
* a **good red dot** additionally requires dots not to be after the highlight
  end (Section IV-A) — positionally the same predicate as a correct start;
* a chat **sliding window** counts as a highlight window when it overlaps the
  discussion period of some highlight (the highlight itself plus the chat
  reaction delay).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.initializer.windows import SlidingWindow
from repro.core.types import Highlight
from repro.utils.validation import require_non_negative

__all__ = [
    "is_good_red_dot",
    "is_correct_start",
    "is_correct_end",
    "window_matches_highlight",
    "matched_highlight",
]


def is_correct_start(
    position: float,
    highlights: Sequence[Highlight],
    tolerance: float = 10.0,
) -> bool:
    """Whether ``position`` is a correct highlight start prediction."""
    require_non_negative(tolerance, "tolerance")
    return any(h.start - tolerance <= position <= h.end for h in highlights)


def is_correct_end(
    position: float,
    highlights: Sequence[Highlight],
    tolerance: float = 10.0,
) -> bool:
    """Whether ``position`` is a correct highlight end prediction."""
    require_non_negative(tolerance, "tolerance")
    return any(h.start <= position <= h.end + tolerance for h in highlights)


def is_good_red_dot(
    position: float,
    highlights: Sequence[Highlight],
    tolerance: float = 10.0,
) -> bool:
    """Whether ``position`` is a good red dot for some ground-truth highlight.

    The definition in Section IV-A: not after the highlight end and not more
    than ``tolerance`` seconds before its start — identical to
    :func:`is_correct_start`, kept as its own name for readability at call
    sites that reason about red dots rather than extracted boundaries.
    """
    return is_correct_start(position, highlights, tolerance)


def matched_highlight(
    position: float,
    highlights: Sequence[Highlight],
    tolerance: float = 10.0,
) -> Highlight | None:
    """The highlight that makes ``position`` a good red dot, or None.

    When several match, the one whose start is closest to the position wins.
    """
    candidates = [
        h for h in highlights if h.start - tolerance <= position <= h.end
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda h: abs(h.start - position))


def window_matches_highlight(
    window: SlidingWindow,
    highlights: Sequence[Highlight],
    reaction_delay: float = 30.0,
) -> bool:
    """Whether a chat sliding window is *talking about* some highlight.

    The window counts when it overlaps ``[h.start, h.end + reaction_delay]``
    for some highlight ``h`` — the period during which viewers discuss that
    highlight.  Used by Chat Precision@K.
    """
    require_non_negative(reaction_delay, "reaction_delay")
    for highlight in highlights:
        if window.start < highlight.end + reaction_delay and highlight.start < window.end:
            return True
    return False
