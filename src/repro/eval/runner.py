"""Experiment orchestration: train on labelled videos, evaluate on a test pool.

:class:`EvaluationRunner` packages the train/evaluate loops that every
experiment repeats — fitting an Initializer on ``n`` training videos,
scoring Chat Precision@K and Video Precision@K over the test videos, and
running the full pipeline with the crowd simulator — so the per-figure
experiment modules stay small and declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LightorConfig
from repro.core.initializer.initializer import HighlightInitializer
from repro.core.initializer.predictor import FeatureSet
from repro.core.pipeline import LightorPipeline
from repro.datasets.generate import LabeledVideo
from repro.datasets.loaders import training_pairs
from repro.eval.metrics import (
    chat_precision_at_k,
    video_precision_end_at_k,
    video_precision_start_at_k,
)
from repro.simulation.crowd import CrowdSimulator
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_positive

__all__ = ["InitializerEvaluation", "EvaluationRunner"]


@dataclass(frozen=True)
class InitializerEvaluation:
    """Average precision of a fitted Initializer over a test pool."""

    k: int
    chat_precision: float
    start_precision: float
    n_test_videos: int
    adjustment_constant: float


@dataclass
class EvaluationRunner:
    """Shared train/evaluate loops for the experiments.

    Parameters
    ----------
    config:
        Workflow configuration used for both training and evaluation.
    feature_set:
        Feature subset for the Initializer's prediction stage.
    """

    config: LightorConfig = field(default_factory=LightorConfig)
    feature_set: FeatureSet = FeatureSet.ALL

    # ----------------------------------------------------------- initializer
    def fit_initializer(self, train_videos: list[LabeledVideo]) -> HighlightInitializer:
        """Train a Highlight Initializer on ``train_videos``."""
        initializer = HighlightInitializer(config=self.config, feature_set=self.feature_set)
        initializer.fit(training_pairs(train_videos))
        return initializer

    def evaluate_initializer(
        self,
        initializer: HighlightInitializer,
        test_videos: list[LabeledVideo],
        k: int,
    ) -> InitializerEvaluation:
        """Average Chat Precision@K and Video Precision@K (start) on the test pool."""
        require_positive(k, "k")
        chat_scores: list[float] = []
        start_scores: list[float] = []
        for labelled in test_videos:
            windows = initializer.top_windows(labelled.chat_log, k=k)
            chat_scores.append(chat_precision_at_k(windows, labelled.highlights, k=k))
            dots = initializer.propose(labelled.chat_log, k=k)
            positions = [dot.position for dot in dots]
            start_scores.append(
                video_precision_start_at_k(
                    positions, labelled.highlights, k=k, tolerance=self.config.start_tolerance
                )
            )
        return InitializerEvaluation(
            k=k,
            chat_precision=float(np.mean(chat_scores)) if chat_scores else 0.0,
            start_precision=float(np.mean(start_scores)) if start_scores else 0.0,
            n_test_videos=len(test_videos),
            adjustment_constant=initializer.model.adjustment_constant,
        )

    def chat_precision_curve(
        self,
        initializer: HighlightInitializer,
        test_videos: list[LabeledVideo],
        ks: list[int],
    ) -> dict[int, float]:
        """Chat Precision@K averaged over the test pool, for each k in ``ks``."""
        curve: dict[int, float] = {}
        for k in ks:
            scores = [
                chat_precision_at_k(
                    initializer.top_windows(v.chat_log, k=k), v.highlights, k=k
                )
                for v in test_videos
            ]
            curve[k] = float(np.mean(scores)) if scores else 0.0
        return curve

    def start_precision_curve(
        self,
        initializer: HighlightInitializer,
        test_videos: list[LabeledVideo],
        ks: list[int],
    ) -> dict[int, float]:
        """Video Precision@K (start) of the Initializer's red dots, per k."""
        curve: dict[int, float] = {}
        for k in ks:
            scores = []
            for labelled in test_videos:
                dots = initializer.propose(labelled.chat_log, k=k)
                scores.append(
                    video_precision_start_at_k(
                        [d.position for d in dots],
                        labelled.highlights,
                        k=k,
                        tolerance=self.config.start_tolerance,
                    )
                )
            curve[k] = float(np.mean(scores)) if scores else 0.0
        return curve

    # --------------------------------------------------------- full pipeline
    def run_pipeline(
        self,
        train_videos: list[LabeledVideo],
        test_videos: list[LabeledVideo],
        k: int,
        crowd_seed: int = 7,
        responses_per_round: int = 10,
    ) -> dict[str, float]:
        """Train LIGHTOR, run it end to end with the crowd simulator, score it.

        Returns average Video Precision@K (start/end) over the test pool and
        the pipeline's training time — the quantities of Table I.
        """
        require_positive(k, "k")
        pipeline = LightorPipeline(config=self.config, feature_set=self.feature_set)
        pipeline.fit(training_pairs(train_videos))

        seeds = SeedSequenceFactory(crowd_seed)
        crowd = CrowdSimulator(seeds=seeds, responses_per_round=responses_per_round)

        start_scores: list[float] = []
        end_scores: list[float] = []
        for labelled in test_videos:
            source = crowd.interaction_source(labelled.video)
            result = pipeline.run(labelled.chat_log, source, k=k)
            start_scores.append(
                video_precision_start_at_k(
                    result.start_positions, labelled.highlights, k=k,
                    tolerance=self.config.start_tolerance,
                )
            )
            end_scores.append(
                video_precision_end_at_k(
                    result.end_positions, labelled.highlights, k=k,
                    tolerance=self.config.end_tolerance,
                )
            )
        return {
            "start_precision": float(np.mean(start_scores)) if start_scores else 0.0,
            "end_precision": float(np.mean(end_scores)) if end_scores else 0.0,
            "training_seconds": pipeline.training_seconds_,
        }
