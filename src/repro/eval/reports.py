"""Plain-text report formatting for the benchmark harness.

Every benchmark prints the rows or series of the paper artifact it
reproduces.  These helpers keep the formatting uniform: fixed-width columns,
floats rendered with three decimals, and a caption line naming the paper
table/figure.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_caption"]


def format_caption(artifact: str, description: str) -> str:
    """Return the caption line used above every reproduced artifact."""
    return f"=== {artifact}: {description} ==="


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    caption: str | None = None,
) -> str:
    """Render a fixed-width text table.

    >>> print(format_table(["system", "p@5"], [["LIGHTOR", 0.9], ["LSTM", 0.6]]))
    system   | p@5
    ---------+------
    LIGHTOR  | 0.900
    LSTM     | 0.600
    """
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if caption:
        lines.append(caption)
    lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: Mapping[str, Mapping[object, float]],
    caption: str | None = None,
) -> str:
    """Render one or more named series sharing the same x values.

    ``series`` maps a series name to ``{x: y}``; x values are taken from the
    union of all series (sorted) and missing points render as ``-``.
    """
    x_values = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = []
    for x in x_values:
        row: list[object] = [x]
        for name in series:
            value = series[name].get(x)
            row.append(value if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows, caption=caption)
