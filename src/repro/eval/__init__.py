"""Evaluation: the paper's Precision@K metrics and experiment runners.

* :mod:`matching <repro.eval.matching>` — the correctness predicates from
  Section VII-A (good red dot, correct start position, correct end position).
* :mod:`metrics <repro.eval.metrics>` — Chat Precision@K, Video Precision@K
  (start) and Video Precision@K (end).
* :mod:`runner <repro.eval.runner>` — train/evaluate orchestration over video
  suites (used by the experiments and benchmarks).
* :mod:`reports <repro.eval.reports>` — plain-text table/series formatting so
  benches print the same rows the paper reports.
"""

from repro.eval.matching import (
    is_correct_end,
    is_correct_start,
    is_good_red_dot,
    window_matches_highlight,
)
from repro.eval.metrics import (
    chat_precision_at_k,
    video_precision_end_at_k,
    video_precision_start_at_k,
)
from repro.eval.parity import DotMismatch, ParityReport, compare_red_dots
from repro.eval.runner import EvaluationRunner, InitializerEvaluation
from repro.eval.reports import format_series, format_table

__all__ = [
    "DotMismatch",
    "ParityReport",
    "compare_red_dots",
    "is_good_red_dot",
    "is_correct_start",
    "is_correct_end",
    "window_matches_highlight",
    "chat_precision_at_k",
    "video_precision_start_at_k",
    "video_precision_end_at_k",
    "EvaluationRunner",
    "InitializerEvaluation",
    "format_series",
    "format_table",
]
