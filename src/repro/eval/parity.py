"""Batch/stream parity checks.

The streaming engine's contract is that replaying a recorded chat log
message-by-message and finalizing at the video duration reproduces the batch
``HighlightInitializer.propose`` output *exactly* — same positions, same
scores, same top-k order.  These helpers state that contract once so the
parity test suite, the CLI's live demo and ad-hoc debugging all check it the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.types import RedDot

__all__ = ["DotMismatch", "ParityReport", "compare_red_dots"]


@dataclass(frozen=True)
class DotMismatch:
    """One position at which the batch and streamed dot lists disagree."""

    index: int
    batch: RedDot | None
    streamed: RedDot | None

    def describe(self) -> str:
        """Human-readable one-liner for reports and assertion messages."""

        def show(dot: RedDot | None) -> str:
            if dot is None:
                return "<missing>"
            return f"pos={dot.position:.3f} score={dot.score:.6f} window={dot.window}"

        return f"[{self.index}] batch {show(self.batch)} != streamed {show(self.streamed)}"


@dataclass(frozen=True)
class ParityReport:
    """Outcome of comparing a batch dot list against a streamed one."""

    n_batch: int
    n_streamed: int
    mismatches: tuple[DotMismatch, ...]

    @property
    def ok(self) -> bool:
        """Whether the two lists agree exactly."""
        return not self.mismatches

    def describe(self) -> str:
        """Multi-line summary suitable for CLI output and test failures."""
        if self.ok:
            return f"parity OK ({self.n_batch} dots)"
        lines = [
            f"parity FAILED: {self.n_batch} batch vs {self.n_streamed} streamed dots"
        ]
        lines.extend(mismatch.describe() for mismatch in self.mismatches)
        return "\n".join(lines)


def compare_red_dots(
    batch: Sequence[RedDot],
    streamed: Sequence[RedDot],
    position_tolerance: float = 0.0,
) -> ParityReport:
    """Compare two dot lists index-by-index.

    With the default zero tolerance, positions, scores and source windows
    must match exactly (the engines share every numeric code path, so exact
    equality is the honest bar).  A positive ``position_tolerance`` relaxes
    only the position comparison — useful when checking a deliberately
    approximate engine (e.g. one running with a window-summary memory cap).
    """
    mismatches: list[DotMismatch] = []
    for index in range(max(len(batch), len(streamed))):
        batch_dot = batch[index] if index < len(batch) else None
        streamed_dot = streamed[index] if index < len(streamed) else None
        if batch_dot is None or streamed_dot is None:
            mismatches.append(DotMismatch(index, batch_dot, streamed_dot))
            continue
        if position_tolerance > 0.0:
            agree = (
                abs(batch_dot.position - streamed_dot.position) <= position_tolerance
            )
        else:
            agree = (
                batch_dot.position == streamed_dot.position
                and batch_dot.score == streamed_dot.score
                and batch_dot.window == streamed_dot.window
            )
        if not agree:
            mismatches.append(DotMismatch(index, batch_dot, streamed_dot))
    return ParityReport(
        n_batch=len(batch), n_streamed=len(streamed), mismatches=tuple(mismatches)
    )
