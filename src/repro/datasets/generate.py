"""Deterministic dataset construction.

A *dataset* is a list of labelled videos: each labelled video pairs the
synthetic video (with its ground-truth highlights) with its simulated chat
log.  The default specifications mirror the paper's evaluation data:

* Dota2 — 60 videos from personal channels;
* LoL — 173 tournament videos.

For experiments that do not need the full suites, any smaller ``size`` gives
the leading prefix of the same videos (video ``i`` is identical regardless of
how many videos are requested), which keeps the benchmarks fast while the
full-size suites remain available.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Highlight, Video, VideoChatLog
from repro.simulation.chat import ChatSimulator
from repro.simulation.video import VideoGenerator
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_positive

__all__ = ["LabeledVideo", "DatasetSpec", "build_dataset", "PAPER_DOTA2_SIZE", "PAPER_LOL_SIZE"]

PAPER_DOTA2_SIZE = 60
PAPER_LOL_SIZE = 173


@dataclass(frozen=True)
class LabeledVideo:
    """A video, its chat log and its ground-truth highlight labels."""

    video: Video
    chat_log: VideoChatLog

    @property
    def highlights(self) -> list[Highlight]:
        """Ground-truth highlights of the video."""
        return list(self.video.highlights)

    @property
    def training_pair(self) -> tuple[VideoChatLog, list[Highlight]]:
        """The (chat log, highlights) pair expected by the trainers."""
        return self.chat_log, self.highlights


@dataclass(frozen=True)
class DatasetSpec:
    """Specification of a synthetic dataset."""

    game: str
    size: int
    seed: int = 2020

    def __post_init__(self) -> None:
        require_positive(self.size, "size")

    @classmethod
    def dota2(cls, size: int = PAPER_DOTA2_SIZE, seed: int = 2020) -> "DatasetSpec":
        """The Dota2 suite (paper: 60 personal-channel videos)."""
        return cls(game="dota2", size=size, seed=seed)

    @classmethod
    def lol(cls, size: int = PAPER_LOL_SIZE, seed: int = 2020) -> "DatasetSpec":
        """The LoL suite (paper: 173 NALCS tournament videos)."""
        return cls(game="lol", size=size, seed=seed)


def build_dataset(spec: DatasetSpec) -> list[LabeledVideo]:
    """Materialise the dataset described by ``spec``.

    Videos and chat logs are deterministic functions of
    ``(spec.seed, spec.game, index)``; requesting a smaller size returns a
    prefix of the larger dataset.
    """
    seeds = SeedSequenceFactory(spec.seed)
    video_generator = VideoGenerator(seeds=seeds)
    chat_simulator = ChatSimulator(seeds=seeds)
    labelled: list[LabeledVideo] = []
    for index in range(spec.size):
        video = video_generator.generate(index, game=spec.game)
        chat_log = chat_simulator.simulate(video)
        labelled.append(LabeledVideo(video=video, chat_log=chat_log))
    return labelled
