"""Dataset caching and train/test splitting.

Generating chat for 60–173 videos is cheap but not free; the experiments and
benchmarks share datasets through :class:`DatasetCache` so each suite is
materialised at most once per process.  Train/test splits follow the paper:
a handful of training videos (often just one) and a fixed pool of test
videos.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import Highlight, VideoChatLog
from repro.datasets.generate import DatasetSpec, LabeledVideo, build_dataset
from repro.utils.validation import ValidationError, require_positive

__all__ = ["DatasetCache", "train_test_split", "training_pairs"]


@dataclass
class DatasetCache:
    """Process-wide cache of materialised datasets keyed by their spec."""

    _cache: dict[DatasetSpec, list[LabeledVideo]] = field(default_factory=dict, repr=False)

    def get(self, spec: DatasetSpec) -> list[LabeledVideo]:
        """Return the dataset for ``spec``, materialising it on first use.

        Larger previously-built suites of the same game and seed are reused:
        asking for 10 Dota2 videos after the 60-video suite was built slices
        the prefix instead of regenerating.
        """
        if spec in self._cache:
            return self._cache[spec]
        for cached_spec, videos in self._cache.items():
            same_family = cached_spec.game == spec.game and cached_spec.seed == spec.seed
            if same_family and cached_spec.size >= spec.size:
                subset = videos[: spec.size]
                self._cache[spec] = subset
                return subset
        dataset = build_dataset(spec)
        self._cache[spec] = dataset
        return dataset

    def clear(self) -> None:
        """Drop all cached datasets (mainly for tests)."""
        self._cache.clear()


# A module-level cache shared by experiments and benchmarks in one process.
shared_cache = DatasetCache()


def train_test_split(
    dataset: list[LabeledVideo],
    n_train: int,
    n_test: int | None = None,
) -> tuple[list[LabeledVideo], list[LabeledVideo]]:
    """Split a dataset into leading training videos and trailing test videos.

    The paper trains on up to 10 videos and tests on 50; the split is by
    position (the dataset order is already random by construction), so
    results are stable across runs.
    """
    require_positive(n_train, "n_train")
    if n_train >= len(dataset):
        raise ValidationError(
            f"n_train={n_train} leaves no test videos out of {len(dataset)}"
        )
    train = dataset[:n_train]
    remaining = dataset[n_train:]
    if n_test is None:
        return train, remaining
    require_positive(n_test, "n_test")
    if n_test > len(remaining):
        raise ValidationError(
            f"requested {n_test} test videos but only {len(remaining)} are available"
        )
    return train, remaining[:n_test]


def training_pairs(videos: list[LabeledVideo]) -> list[tuple[VideoChatLog, list[Highlight]]]:
    """Convert labelled videos into the (chat log, highlights) pairs trainers expect."""
    return [video.training_pair for video in videos]
