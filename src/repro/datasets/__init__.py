"""Dataset construction: the synthetic Dota2 and LoL video suites.

Mirrors the paper's two evaluation datasets (60 Dota2 videos crawled from
Twitch personal channels, 173 LoL videos from the NALCS tournament) with
deterministic synthetic equivalents, plus train/test split helpers.
"""

from repro.datasets.generate import DatasetSpec, LabeledVideo, build_dataset
from repro.datasets.loaders import DatasetCache, train_test_split, training_pairs

__all__ = [
    "DatasetSpec",
    "LabeledVideo",
    "build_dataset",
    "DatasetCache",
    "train_test_split",
    "training_pairs",
]
