"""Command-line interface: ``lightor`` / ``python -m repro``.

Sub-commands:

* ``lightor list`` — list the reproducible paper artifacts.
* ``lightor run fig7 --scale small`` — run one experiment and print its report.
* ``lightor run-all --scale small`` — run every experiment in sequence.
* ``lightor demo`` — train on one synthetic video and extract highlights from
  another, printing the progress bar with red dots.
* ``lightor stream`` — replay synthetic live channels through the streaming
  engine, printing provisional dot emissions/retractions and the final
  batch-parity check.
* ``lightor load`` — synthesize a multi-channel load-test workload (Zipf
  channel popularity, chat + viewer-play firehoses) and drive it through the
  sharded service tier with a worker pool, reporting throughput, latency
  percentiles and the single-shard oracle spot-check.  With
  ``--kill-after N --recover`` the run becomes a chaos test: the tier is
  killed mid-run, rebuilt from its durable checkpoints, and the finished
  run is compared byte-for-byte against an uninterrupted one.
* ``lightor recover`` — rebuild the live sessions a crashed (or killed)
  ``lightor stream``/``lightor load`` run left checkpointed in its SQLite
  databases, report them, and optionally finalize them.
* ``lightor reshard`` — change the shard count of a durable deployment
  offline: channels (rows and checkpointed sessions) are migrated between
  shard files along the minimal placement plan, and the shard markers are
  rewritten so the deployment reopens at the new count.  ``lightor load
  --reshard-at N --reshard-to M`` is the *online* twin: the tier grows or
  shrinks mid-run while unmoved channels keep serving.
* ``lightor serve`` — serve the sharded tier over HTTP: a stdlib asyncio
  JSON gateway exposing the full service surface with per-request
  validation, bounded admission control and a graceful SIGTERM drain that
  checkpoints every open live session (``lightor recover`` resumes a
  drained durable deployment byte-exactly).
* ``lightor cluster`` — run N shard *worker processes* (each one a
  ``serve --shards 1`` gateway on its own port and database) under a
  supervisor: boot is health-checked, a worker dying fails the deployment,
  and SIGTERM drains the whole fleet so durable shards stay recoverable.
"""

from __future__ import annotations

import argparse
import sys

from repro.utils.logging import configure_logging

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``lightor`` CLI."""
    parser = argparse.ArgumentParser(
        prog="lightor",
        description="LIGHTOR reproduction: implicit-crowdsourcing highlight extraction",
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="enable info logging")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list reproducible paper artifacts")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig7 or table1")
    run_parser.add_argument(
        "--scale", default="small", choices=("small", "medium", "paper"),
        help="evaluation scale (default: small)",
    )

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    run_all_parser.add_argument(
        "--scale", default="small", choices=("small", "medium", "paper"),
        help="evaluation scale (default: small)",
    )

    demo_parser = subparsers.add_parser("demo", help="end-to-end demo on synthetic videos")
    demo_parser.add_argument("--k", type=int, default=5, help="number of highlights to extract")
    demo_parser.add_argument("--seed", type=int, default=2020, help="dataset seed")

    stream_parser = subparsers.add_parser(
        "stream", help="run the streaming engine over simulated live channels"
    )
    stream_parser.add_argument(
        "--channels", type=int, default=2, help="number of concurrent live channels"
    )
    stream_parser.add_argument("--k", type=int, default=5, help="provisional top-k per channel")
    stream_parser.add_argument("--seed", type=int, default=2020, help="dataset seed")
    stream_parser.add_argument(
        "--emit-every-messages", type=int, default=50,
        help="re-evaluate the provisional dots after this many messages",
    )
    stream_parser.add_argument(
        "--emit-every-seconds", type=float, default=30.0,
        help="re-evaluate when stream time advanced this far",
    )
    stream_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-event output"
    )
    stream_parser.add_argument(
        "--backend", default="memory", choices=("memory", "sqlite"),
        help="storage backend behind the service tier (default: memory)",
    )
    stream_parser.add_argument(
        "--db-path", default=None,
        help="SQLite database path (sqlite backend; one file per shard). "
        "Omit for an in-memory database.",
    )
    stream_parser.add_argument(
        "--shards", type=int, default=1,
        help="service workers to consistent-hash the channels across (default: 1)",
    )
    stream_parser.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="durable session-checkpoint cadence in persisted events "
        "(default: 500 on the sqlite backend, disabled on memory)",
    )
    stream_parser.add_argument(
        "--resume", action="store_true",
        help="rebuild live sessions from the checkpoints a previous killed run "
        "left in the database and continue streaming where it stopped "
        "(requires --backend sqlite --db-path)",
    )

    recover_parser = subparsers.add_parser(
        "recover",
        help="rebuild live sessions from the durable checkpoints in a database",
    )
    recover_parser.add_argument(
        "--db-path", required=True,
        help="SQLite database path the crashed run was using (one file per shard)",
    )
    recover_parser.add_argument(
        "--shards", type=int, default=1,
        help="shard count of the crashed deployment (default: 1)",
    )
    recover_parser.add_argument(
        "--seed", type=int, default=2020,
        help="dataset seed the crashed run trained with (the model is retrained "
        "deterministically from it; default: 2020)",
    )
    recover_parser.add_argument(
        "--end", action="store_true",
        help="finalize every recovered session: persist its final red dots and "
        "delete its checkpoint (default: report and re-checkpoint only)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve the sharded tier over an asyncio HTTP/1.1 JSON gateway",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8765,
        help="bind port; 0 picks an ephemeral port (default: 8765)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=1,
        help="service workers to consistent-hash the channels across (default: 1)",
    )
    serve_parser.add_argument(
        "--backend", default="memory", choices=("memory", "sqlite"),
        help="storage backend behind the service tier (default: memory)",
    )
    serve_parser.add_argument(
        "--db-path", default=None,
        help="SQLite database path (sqlite backend; one file per shard). "
        "Omit for an in-memory database.",
    )
    serve_parser.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="durable session-checkpoint cadence in persisted events "
        "(default: 500 on the sqlite backend, disabled on memory)",
    )
    serve_parser.add_argument(
        "--max-pending", type=int, default=64,
        help="admission budget: requests in flight beyond this are refused "
        "with 503 instead of queued (default: 64)",
    )
    serve_parser.add_argument(
        "--worker-threads", type=int, default=8,
        help="threads executing service calls behind the event loop (default: 8)",
    )
    serve_parser.add_argument(
        "--max-pending-per-channel", type=int, default=None,
        help="per-channel admission budget: one channel's requests in flight "
        "beyond this are refused with 503 while the rest of the global budget "
        "stays available to other channels (default: disabled)",
    )
    serve_parser.add_argument(
        "--k", type=int, default=None,
        help="provisional top-k per live channel (default: the engine default, "
        "matching in-process runs)",
    )
    serve_parser.add_argument(
        "--max-live-sessions", type=int, default=64,
        help="LRU budget of concurrently open live sessions per shard (default: 64)",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=2020,
        help="dataset seed the serving model is trained from (default: 2020)",
    )
    serve_parser.add_argument(
        "--wire-codec", default="json", choices=("json", "binary"),
        help="response codec for clients that express no Accept preference; "
        "an explicit Accept header always wins (default: json)",
    )
    serve_parser.add_argument(
        "--shard-index", type=int, default=None,
        help="this gateway's shard index in a multi-worker cluster: once the "
        "supervisor pushes a placement map, channels owned elsewhere are "
        "refused with a 409 redirect (default: standalone, no redirects)",
    )

    cluster_parser = subparsers.add_parser(
        "cluster",
        help="run N shard worker processes (one `serve --shards 1` each) "
        "under a supervisor",
    )
    cluster_parser.add_argument(
        "--shards", type=int, default=2,
        help="shard worker processes to spawn (default: 2)",
    )
    cluster_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    cluster_parser.add_argument(
        "--base-port", type=int, default=8765,
        help="worker K binds base-port + K; 0 gives every worker an "
        "ephemeral port (default: 8765)",
    )
    cluster_parser.add_argument(
        "--backend", default="memory", choices=("memory", "sqlite"),
        help="storage backend behind each worker (default: memory)",
    )
    cluster_parser.add_argument(
        "--db-path", default=None,
        help="base SQLite path (sqlite backend); worker K uses "
        "base.shardK.db. Omit for in-memory databases.",
    )
    cluster_parser.add_argument(
        "--seed", type=int, default=2020,
        help="dataset seed every worker trains its serving model from "
        "(default: 2020)",
    )
    cluster_parser.add_argument(
        "--k", type=int, default=None,
        help="provisional top-k per live channel (default: the engine default)",
    )
    cluster_parser.add_argument(
        "--max-live-sessions", type=int, default=64,
        help="LRU budget of concurrently open live sessions per worker "
        "(default: 64)",
    )
    cluster_parser.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="durable session-checkpoint cadence in persisted events "
        "(default: 500 on the sqlite backend, disabled on memory)",
    )
    cluster_parser.add_argument(
        "--max-pending", type=int, default=64,
        help="per-worker gateway admission budget (default: 64)",
    )
    cluster_parser.add_argument(
        "--worker-threads", type=int, default=8,
        help="service threads per worker gateway (default: 8)",
    )
    cluster_parser.add_argument(
        "--max-pending-per-channel", type=int, default=None,
        help="per-channel admission budget of every worker gateway "
        "(default: disabled)",
    )
    cluster_parser.add_argument(
        "--boot-timeout", type=float, default=60.0,
        help="seconds the whole cluster gets to become healthy (default: 60)",
    )
    cluster_parser.add_argument(
        "--wire-codec", default="json", choices=("json", "binary"),
        help="default response codec of every worker gateway (default: json)",
    )

    load_parser = subparsers.add_parser(
        "load",
        help="generate multi-channel load against the sharded service tier",
    )
    load_parser.add_argument(
        "--channels", type=int, default=8, help="live channels in the fleet (default: 8)"
    )
    load_parser.add_argument(
        "--viewers", type=int, default=400,
        help="total concurrent viewers, Zipf-split across channels (default: 400)",
    )
    load_parser.add_argument(
        "--duration", type=float, default=3600.0,
        help="per-channel stream length cap in seconds (default: 3600)",
    )
    load_parser.add_argument(
        "--shards", type=int, default=2,
        help="service workers to consistent-hash the channels across (default: 2)",
    )
    load_parser.add_argument(
        "--backend", default="memory", choices=("memory", "sqlite"),
        help="storage backend behind the service tier (default: memory)",
    )
    load_parser.add_argument(
        "--db-path", default=None,
        help="SQLite database path (sqlite backend; one file per shard). "
        "Omit for an in-memory database.",
    )
    load_parser.add_argument(
        "--batch-size", type=int, default=64,
        help="events per ingest batch; 1 reproduces per-event traffic (default: 64)",
    )
    load_parser.add_argument(
        "--workers", type=int, default=4, help="driver worker threads (default: 4)"
    )
    load_parser.add_argument(
        "--transport", default="inproc", choices=("inproc", "http", "cluster"),
        help="how the drivers reach the tier: direct calls, over the wire "
        "through an in-process HTTP gateway, or through a supervised fleet "
        "of shard worker processes (default: inproc)",
    )
    load_parser.add_argument(
        "--wire-codec", default="json", choices=("json", "binary"),
        help="request/response codec on wire transports (http/cluster); "
        "fingerprints must match the JSON run byte-for-byte (default: json)",
    )
    load_parser.add_argument(
        "--zipf", type=float, default=1.0,
        help="channel-popularity skew exponent; 0 = uniform fleet (default: 1.0)",
    )
    load_parser.add_argument("--seed", type=int, default=2020, help="workload seed")
    load_parser.add_argument(
        "--stretch", action="store_true",
        help="soak mode: stretch every channel to the full --duration (marathon reruns)",
    )
    load_parser.add_argument(
        "--no-oracle", action="store_true",
        help="skip the sequential single-shard oracle spot-check (pure timing run)",
    )
    load_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fixed workload for CI: overrides the sizing flags",
    )
    load_parser.add_argument(
        "--kill-after", type=int, default=None, metavar="N",
        help="chaos mode: kill the service tier after N ingest batches "
        "(requires --recover and --backend sqlite --db-path)",
    )
    load_parser.add_argument(
        "--recover", action="store_true",
        help="chaos mode: rebuild the killed tier from its checkpoints, finish "
        "the run, and verify byte-equivalence with an uninterrupted run",
    )
    load_parser.add_argument(
        "--checkpoint-every", type=int, default=256,
        help="durable session-checkpoint cadence in persisted events for the "
        "chaos mode (default: 256)",
    )
    load_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="drive an adversarial scenario instead of the steady fleet: "
        "flash-crowd, chat-flood, reconnect-storm or fairness; each ships "
        "with its own oracle (non-zero exit on any divergence)",
    )
    load_parser.add_argument(
        "--scenario-surge-factor", type=int, default=None, metavar="N",
        help="flash-crowd severity: head-channel viewership multiplier "
        "(default: 20; requires --scenario)",
    )
    load_parser.add_argument(
        "--scenario-flood-factor", type=int, default=None, metavar="N",
        help="chat-flood severity: spam messages per organic chat message "
        "(default: 4; requires --scenario)",
    )
    load_parser.add_argument(
        "--scenario-outage-start", type=float, default=None, metavar="FRAC",
        help="reconnect-storm: outage window start as a fraction of the run "
        "(default: 0.35; requires --scenario)",
    )
    load_parser.add_argument(
        "--scenario-outage-length", type=float, default=None, metavar="FRAC",
        help="reconnect-storm: outage window length as a fraction of the run "
        "(default: 0.25; requires --scenario)",
    )
    load_parser.add_argument(
        "--record", default=None, metavar="PATH",
        help="record the driven workload (every batch, every event, the "
        "run's end-state fingerprints) to a versioned trace file",
    )
    load_parser.add_argument(
        "--replay", default=None, metavar="PATH",
        help="replay a recorded trace byte-exactly instead of synthesising a "
        "workload; the replayed fingerprints must equal the recording's on "
        "any transport, codec, shard and worker count (non-zero exit "
        "otherwise)",
    )
    load_parser.add_argument(
        "--max-pending-per-channel", type=int, default=None,
        help="per-channel gateway admission budget on wire transports "
        "(http/cluster) — the fairness scenario's subject (default: disabled)",
    )
    load_parser.add_argument(
        "--reshard-at", type=int, default=None, metavar="N",
        help="chaos mode: reshard the tier online after N ingest batches, "
        "while the rest of the pool keeps driving traffic (requires "
        "--reshard-to; transports inproc and cluster)",
    )
    load_parser.add_argument(
        "--reshard-to", type=int, default=None, metavar="M",
        help="chaos mode: target shard count of the online reshard (grow or "
        "shrink); the finished run must be byte-identical to an undisturbed "
        "run (non-zero exit otherwise)",
    )

    reshard_parser = subparsers.add_parser(
        "reshard",
        help="reshard a durable sqlite deployment offline "
        "(move channels between shard files)",
    )
    reshard_parser.add_argument(
        "--db-path", required=True,
        help="SQLite database path of the deployment (one file per shard)",
    )
    reshard_parser.add_argument(
        "--shards", type=int, required=True,
        help="current shard count of the deployment",
    )
    reshard_parser.add_argument(
        "--to", type=int, required=True,
        help="target shard count (grow or shrink)",
    )
    reshard_parser.add_argument(
        "--seed", type=int, default=2020,
        help="dataset seed the deployment was created with (the model is "
        "retrained deterministically from it; default: 2020)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="run lintor, the repo-aware static analyzer (rules R001-R006)",
        description="Statically check the repo's concurrency, wire and "
        "error contracts: event-loop blocking (R001), guarded-by lock "
        "discipline (R002), strict JSON (R003), typed errors (R004), "
        "resource safety (R005) and frame versioning (R006). "
        "docs/static_analysis.md documents the catalogue.",
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to analyze (default: src/repro)",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against a committed baseline: any finding not in it "
        "fails the run (new violation), any entry it carries that no longer "
        "reproduces fails the run (stale baseline)",
    )
    lint_parser.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write the findings as the new baseline; refuses to *grow* an "
        "existing baseline (fix or pragma new findings instead)",
    )
    lint_parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _command_list() -> int:
    from repro.experiments import EXPERIMENTS

    for experiment_id, spec in sorted(EXPERIMENTS.items()):
        print(f"{experiment_id:10s} {spec.paper_artifact:10s} {spec.description}")
    return 0


def _command_run(experiment: str, scale: str) -> int:
    from repro.experiments import run_experiment

    _, text = run_experiment(experiment, scale=scale)
    print(text)
    return 0


def _command_run_all(scale: str) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment

    for experiment_id in sorted(EXPERIMENTS):
        _, text = run_experiment(experiment_id, scale=scale)
        print(text)
        print()
    return 0


def _command_demo(k: int, seed: int) -> int:
    from repro import LightorConfig, LightorPipeline
    from repro.datasets import DatasetSpec, build_dataset
    from repro.platform.extension import ProgressBarView
    from repro.simulation import CrowdSimulator
    from repro.utils.rng import SeedSequenceFactory

    dataset = build_dataset(DatasetSpec.dota2(size=3, seed=seed))
    train, target = dataset[0], dataset[1]

    pipeline = LightorPipeline(LightorConfig())
    pipeline.fit([train.training_pair])
    print(
        f"trained on {train.video.video_id} in {pipeline.training_seconds_:.2f}s; "
        f"learned chat delay c = {pipeline.initializer.model.adjustment_constant:.1f}s"
    )

    crowd = CrowdSimulator(seeds=SeedSequenceFactory(seed + 1))
    result = pipeline.run(target.chat_log, crowd.interaction_source(target.video), k=k)

    bar = ProgressBarView(
        video_id=target.video.video_id,
        duration=target.video.duration,
        dot_positions=tuple(dot.position for dot in result.red_dots),
    )
    print(f"video {target.video.video_id} ({target.video.duration:.0f}s) red dots:")
    print(bar.render())
    print("extracted highlights (start - end):")
    for highlight in result.highlights:
        print(f"  {highlight.start:8.1f}s - {highlight.end:8.1f}s")
    print("ground truth highlights:")
    for highlight in target.highlights:
        print(f"  {highlight.start:8.1f}s - {highlight.end:8.1f}s")
    return 0


def _command_stream(
    channels: int,
    k: int,
    seed: int,
    emit_every_messages: int,
    emit_every_seconds: float,
    quiet: bool,
    backend: str,
    db_path: str | None,
    shards: int,
    checkpoint_every: int | None,
    resume: bool,
) -> int:
    import time

    from repro import LightorConfig
    from repro.core.initializer.initializer import HighlightInitializer
    from repro.datasets import DatasetSpec, build_dataset
    from repro.eval.parity import compare_red_dots
    from repro.platform.sharding import ShardedLightorService
    from repro.simulation.chat import interleave_live
    from repro.streaming import DotEmitted, DotRetracted, EmitPolicy
    from repro.utils.validation import ValidationError

    if channels < 1:
        print("--channels must be at least 1", flush=True)
        return 1
    if k < 1:
        print("--k must be at least 1", flush=True)
        return 1
    if shards < 1:
        print("--shards must be at least 1", flush=True)
        return 1
    if db_path is not None and backend != "sqlite":
        print("--db-path requires --backend sqlite", flush=True)
        return 1
    if resume and (backend != "sqlite" or db_path is None):
        print("--resume requires --backend sqlite --db-path", flush=True)
        return 1
    if checkpoint_every is not None and checkpoint_every < 1:
        print("--checkpoint-every must be at least 1", flush=True)
        return 1
    if checkpoint_every is None and backend == "sqlite":
        # Durable backend → crash-safe by default; chat is persisted below
        # for the same reason (recovery can only replay what the store holds).
        checkpoint_every = 500
    try:
        policy = EmitPolicy(
            eval_every_messages=emit_every_messages,
            eval_every_seconds=emit_every_seconds,
        )
    except ValidationError as error:
        print(f"invalid emit policy: {error}", flush=True)
        return 1

    dataset = build_dataset(DatasetSpec.dota2(size=channels + 1, seed=seed))
    train, targets = dataset[0], dataset[1 : channels + 1]

    initializer = HighlightInitializer(config=LightorConfig())
    initializer.fit([train.training_pair])

    import sqlite3

    try:
        service = ShardedLightorService.create(
            shards,
            initializer,
            backend=backend,
            db_path=db_path,
            live_k=k,
            live_policy=policy,
            checkpoint_every=checkpoint_every,
            # Every channel must stay live until its parity check at the end,
            # so the LRU bound is sized to the run instead of the default.
            max_live_sessions=channels,
        )
    except (ValidationError, sqlite3.Error) as error:
        print(f"cannot build the service tier: {error}", flush=True)
        return 1
    where = backend if db_path is None else f"{backend} at {db_path}"
    print(
        f"trained on {train.video.video_id}; serving {len(targets)} live "
        f"channel(s) across {shards} shard(s) on the {where} backend"
    )

    logs = {t.video.video_id: t.chat_log for t in targets}
    # On the sqlite backend chat is persisted and sessions are checkpointed,
    # so a killed run can be continued with --resume; a normal exit
    # (including the parity check below) finalizes every session and deletes
    # its checkpoint.  Persisted ingest is chunked so the durable path pays
    # one storage transaction per chunk, not per message (the provisional
    # emit/retract cadence coalesces to chunk boundaries; the final dots are
    # chunking-independent — see docs/performance.md).
    persist = backend == "sqlite"
    chunk_size = 64 if persist else 1
    interrupted = False

    def print_events(video_id: str, events) -> None:
        for event in events:
            if quiet:
                continue
            if isinstance(event, DotEmitted):
                verb, dot = "emit   ", event.dot
            elif isinstance(event, DotRetracted):
                verb, dot = "retract", event.dot
            else:
                continue
            print(
                f"  t={event.stream_time:8.1f}s {video_id} {verb} "
                f"dot @ {dot.position:8.1f}s (score {dot.score:.3f})"
            )

    try:
        skip_remaining: dict[str, int] = {}
        if resume:
            recovered = service.recover_live_sessions()
            if recovered:
                for report in recovered:
                    print(f"  resumed {report.describe()}")
                skip_remaining = {
                    report.video_id: report.messages_ingested for report in recovered
                }
            else:
                print("no checkpointed sessions to resume; starting fresh")
        for target in targets:
            service.start_live(target.video)
        n_messages = 0
        pending: dict[str, list] = {}
        started = time.perf_counter()
        for video_id, message in interleave_live(list(logs.values())):
            if skip_remaining.get(video_id, 0) > 0:
                skip_remaining[video_id] -= 1
                continue
            n_messages += 1
            buffer = pending.setdefault(video_id, [])
            buffer.append(message)
            if len(buffer) >= chunk_size:
                print_events(
                    video_id,
                    service.ingest_chat_batch(video_id, pending.pop(video_id), persist=persist),
                )
        for video_id, buffer in sorted(pending.items()):
            print_events(
                video_id, service.ingest_chat_batch(video_id, buffer, persist=persist)
            )
        elapsed = time.perf_counter() - started
        rate = n_messages / elapsed if elapsed > 0 else float("inf")
        print(f"ingested {n_messages} messages across {len(targets)} channel(s) "
              f"in {elapsed:.2f}s ({rate:,.0f} msg/s)")

        exit_code = 0
        for video_id, chat_log in logs.items():
            streamed = service.end_live(video_id, chat_log.video.duration)
            batch = initializer.propose(chat_log, k=k)
            report = compare_red_dots(batch, streamed)
            shard = service.shard_index(video_id)
            persisted = len(service.get_red_dots(video_id))
            print(
                f"{video_id} [shard {shard}]: {len(streamed)} final dots "
                f"({persisted} persisted); batch {report.describe()}"
            )
            if not report.ok or persisted != len(streamed):
                exit_code = 1
        stats = service.stats()
        print(
            f"store totals: {stats['videos']} videos, {stats['red_dots']} red dots, "
            f"{stats['highlight_records']} highlight records"
        )
        if db_path is not None:
            print(f"results persisted durably in: {', '.join(service.db_paths())}")
    except KeyboardInterrupt:
        interrupted = True
    finally:
        if interrupted and persist and db_path is not None:
            # Treat the interrupt like a crash: leave every session's durable
            # checkpoint in place so the run can be continued, and only
            # release the file handles.
            for shard in service.shards:
                shard.store.close()
        else:
            service.close()
    if interrupted:
        if persist and db_path is not None:
            print(
                "interrupted — live sessions left checkpointed; continue with "
                f"the same flags plus --resume (db: {db_path})"
            )
        return 130
    return exit_code


def _command_recover(db_path: str, shards: int, seed: int, end: bool) -> int:
    import sqlite3

    from repro import LightorConfig
    from repro.core.initializer.initializer import HighlightInitializer
    from repro.datasets import DatasetSpec, build_dataset
    from repro.platform.sharding import ShardedLightorService
    from repro.utils.validation import ValidationError

    if shards < 1:
        print("--shards must be at least 1", flush=True)
        return 1
    # Session checkpoints deliberately do not embed the trained model (it is
    # shared, read-only serving state); retrain it exactly as `stream`/`load`
    # did — deterministically from the seed.
    dataset = build_dataset(DatasetSpec.dota2(size=1, seed=seed))
    initializer = HighlightInitializer(config=LightorConfig())
    initializer.fit([dataset[0].training_pair])

    try:
        service = ShardedLightorService.create(
            shards, initializer, backend="sqlite", db_path=db_path,
            checkpoint_every=500,
        )
    except (ValidationError, sqlite3.Error) as error:
        print(f"cannot open the service tier: {error}", flush=True)
        return 1
    finalized = False
    try:
        # recover_live_sessions raises the LRU budget while it runs, but the
        # recovered sessions must stay live afterwards for --end to close
        # them at the stored durations — so size the budget to the fleet.
        for shard in service.shards:
            shard.max_live_sessions = max(
                shard.max_live_sessions, len(shard.store.get_session_snapshots())
            )
        recovered = service.recover_live_sessions()
        if not recovered:
            print("no checkpointed live sessions found")
            return 0
        print(f"recovered {len(recovered)} live session(s):")
        for report in recovered:
            print(f"  {report.describe()}")
        if end:
            for report in recovered:
                # Finalize at the stored video duration — the same closing
                # point a normal end_live uses — so the final window set and
                # play clamping match an uninterrupted run; fall back to the
                # last chat timestamp if the stored duration is stale
                # (shorter than the chat already observed).
                duration = service.store_for(report.video_id).get_video(
                    report.video_id
                ).duration
                try:
                    dots = service.end_live(report.video_id, duration)
                except ValidationError:
                    dots = service.end_live(report.video_id)
                print(f"  {report.video_id}: finalized with {len(dots)} red dot(s)")
            print("checkpoints deleted; final red dots persisted")
            finalized = True
        else:
            print("sessions re-checkpointed; rerun with --end to finalize them")
    finally:
        if finalized:
            service.close()
        else:
            # Without --end the sessions stay recoverable: release the file
            # handles only — a full close would finalize every session and
            # delete the checkpoints we just reported.
            for shard in service.shards:
                shard.store.close()
    return 0


def _command_reshard(args) -> int:
    import sqlite3

    from repro import LightorConfig
    from repro.core.initializer.initializer import HighlightInitializer
    from repro.datasets import DatasetSpec, build_dataset
    from repro.platform.sharding import ShardedLightorService
    from repro.utils.validation import ValidationError

    if args.shards < 1 or args.to < 1:
        print("--shards and --to must be at least 1", flush=True)
        return 1
    # Same deterministic retraining contract as `recover`: checkpoints do not
    # embed the model, the seed does.
    dataset = build_dataset(DatasetSpec.dota2(size=1, seed=args.seed))
    initializer = HighlightInitializer(config=LightorConfig())
    initializer.fit([dataset[0].training_pair])

    try:
        service = ShardedLightorService.create(
            args.shards, initializer, backend="sqlite", db_path=args.db_path,
            checkpoint_every=500,
        )
    except (ValidationError, sqlite3.Error) as error:
        print(f"cannot open the service tier: {error}", flush=True)
        return 1
    try:
        report = service.reshard(args.to)
    except (ValidationError, sqlite3.Error) as error:
        print(f"reshard failed: {error}", flush=True)
        for shard in service.shards:
            shard.store.close()
        return 1
    # Release only — no finalize: any checkpointed sessions moved with their
    # channels and must stay recoverable on the new layout.
    for shard in service.shards:
        shard.store.close()
    print(
        f"resharded {report.old_n_shards} -> {report.new_n_shards} shard(s): "
        f"{report.moved} channel(s) moved, placement epoch {report.epoch}"
    )
    print(
        f"resume with: repro recover --db-path {args.db_path} "
        f"--shards {args.to} --seed {args.seed}"
    )
    return 0


def _command_serve(args) -> int:
    import asyncio
    import signal
    import sqlite3

    from repro import LightorConfig
    from repro.core.initializer.initializer import HighlightInitializer
    from repro.datasets import DatasetSpec, build_dataset
    from repro.platform.server import LightorGateway
    from repro.platform.sharding import ShardedLightorService
    from repro.utils.validation import ValidationError

    if args.shards < 1:
        print("--shards must be at least 1", flush=True)
        return 1
    if args.port < 0:
        print("--port must be non-negative", flush=True)
        return 1
    if args.db_path is not None and args.backend != "sqlite":
        print("--db-path requires --backend sqlite", flush=True)
        return 1
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print("--checkpoint-every must be at least 1", flush=True)
        return 1
    if args.max_pending < 1 or args.worker_threads < 1:
        print("--max-pending and --worker-threads must be at least 1", flush=True)
        return 1
    if args.max_pending_per_channel is not None and args.max_pending_per_channel < 1:
        print("--max-pending-per-channel must be at least 1", flush=True)
        return 1
    if args.shard_index is not None and args.shard_index < 0:
        print("--shard-index must be non-negative", flush=True)
        return 1
    checkpoint_every = args.checkpoint_every
    if checkpoint_every is None and args.backend == "sqlite":
        # Durable backend → crash-safe by default, same rule as `stream`.
        checkpoint_every = 500

    # The serving model is shared, read-only state; train it exactly as
    # `stream`/`load`/`recover` do — deterministically from the seed.
    dataset = build_dataset(DatasetSpec.dota2(size=1, seed=args.seed))
    initializer = HighlightInitializer(config=LightorConfig())
    initializer.fit([dataset[0].training_pair])

    try:
        service = ShardedLightorService.create(
            args.shards,
            initializer,
            backend=args.backend,
            db_path=args.db_path,
            live_k=args.k,
            checkpoint_every=checkpoint_every,
            max_live_sessions=args.max_live_sessions,
        )
    except (ValidationError, sqlite3.Error) as error:
        print(f"cannot build the service tier: {error}", flush=True)
        return 1

    durable = args.backend == "sqlite" and args.db_path is not None
    gateway = LightorGateway(
        service,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        worker_threads=args.worker_threads,
        wire_codec=args.wire_codec,
        max_pending_per_channel=args.max_pending_per_channel,
        shard_index=args.shard_index,
    )

    async def _serve() -> None:
        try:
            await gateway.start()
        except OSError as error:
            raise SystemExit(f"cannot bind {args.host}:{args.port}: {error}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-posix loops
                pass
        # Machine-readable readiness line, printed after the bind (so a
        # --port 0 ephemeral port is resolved) and before anything else: the
        # cluster supervisor and scripted callers parse exactly this.
        print(f"listening on {gateway.host}:{gateway.port}", flush=True)
        print(
            f"serving {args.shards} shard(s) on {gateway.address} "
            f"({args.backend} backend; SIGTERM drains gracefully)",
            flush=True,
        )
        await stop.wait()
        print("drain requested; finishing in-flight requests ...", flush=True)
        await gateway.drain()

    try:
        asyncio.run(_serve())
    except SystemExit as error:
        print(str(error), flush=True)
        return 1
    except KeyboardInterrupt:
        # Signal handlers normally catch Ctrl-C inside the loop; this is the
        # fallback for loops without signal support.
        pass

    if durable:
        # Checkpoint-and-release: the sessions stay recoverable, so the
        # deployment resumes byte-exactly via `repro recover`.
        checkpointed = service.suspend()
        print(
            f"drained; {checkpointed} live session(s) checkpointed — resume with: "
            f"repro recover --db-path {args.db_path} --shards {args.shards} "
            f"--seed {args.seed}",
            flush=True,
        )
    else:
        # Nothing durable to resume from: finalize every open session so the
        # results at least persist through the eviction callbacks.
        service.close()
        print("drained; live sessions finalized (memory backend)", flush=True)
    return 0


def _command_cluster(args) -> int:
    import signal
    import threading

    from repro.platform.cluster import ShardClusterSupervisor
    from repro.utils.validation import ValidationError

    if args.shards < 1:
        print("--shards must be at least 1", flush=True)
        return 1
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print("--checkpoint-every must be at least 1", flush=True)
        return 1
    try:
        supervisor = ShardClusterSupervisor(
            args.shards,
            backend=args.backend,
            db_path=args.db_path,
            host=args.host,
            base_port=args.base_port,
            seed=args.seed,
            live_k=args.k,
            max_live_sessions=args.max_live_sessions,
            checkpoint_every=args.checkpoint_every,
            max_pending=args.max_pending,
            worker_threads=args.worker_threads,
            max_pending_per_channel=args.max_pending_per_channel,
            boot_timeout=args.boot_timeout,
            wire_codec=args.wire_codec,
        )
    except ValidationError as error:
        print(f"invalid cluster: {error}", flush=True)
        return 1
    try:
        supervisor.start()
    except (ValidationError, RuntimeError, OSError) as error:
        print(f"cluster failed to boot: {error}", flush=True)
        return 1

    for worker in supervisor.workers:
        # One machine-readable line per worker, mirroring `serve`'s own.
        print(f"shard {worker.index} listening on {worker.host}:{worker.port}", flush=True)
    print(
        f"cluster up: {args.shards} shard worker(s) "
        f"({args.backend} backend; SIGTERM stops the fleet gracefully)",
        flush=True,
    )

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except ValueError:  # pragma: no cover - non-main-thread embedding
            pass

    # Supervise: a worker dying underneath the front door fails the
    # deployment — stop the survivors and exit non-zero.
    while not stop.wait(0.5):
        dead = supervisor.dead_shards()
        if dead:
            print(
                "shard worker(s) died: " + ", ".join(str(index) for index in dead),
                flush=True,
            )
            for index in dead:
                print(supervisor.workers[index].log_tail(), flush=True)
            supervisor.stop()
            return 1

    print("stopping cluster; draining shard workers ...", flush=True)
    codes = supervisor.stop()
    if args.backend == "sqlite" and args.db_path is not None:
        base = str(args.db_path)
        print(
            "workers drained and checkpointed — resume shard K with: "
            f"repro recover --db-path <{base} shard-suffixed for K> --shards 1 "
            f"--seed {args.seed}",
            flush=True,
        )
    if any(code != 0 for code in codes):
        print(f"worker exit codes: {codes}", flush=True)
        return 1
    print("cluster stopped; all workers exited cleanly", flush=True)
    return 0


def _record_trace(path: str, workload, report) -> None:
    """Write the driven workload + its run's fingerprints to a trace file."""
    from repro.loadgen.trace import write_trace

    written = write_trace(
        path,
        workload,
        fingerprints={
            video_id: outcome.fingerprint
            for video_id, outcome in report.outcomes.items()
        },
        transport=report.transport,
        wire_codec=report.wire_codec,
        shards=report.shards,
    )
    print(
        f"recorded trace: {path} ({written:,} bytes, "
        f"{len(report.outcomes)} channel fingerprint(s))",
        flush=True,
    )


def _command_load(args) -> int:
    import sqlite3

    from repro import LightorConfig
    from repro.core.initializer.initializer import HighlightInitializer
    from repro.datasets import DatasetSpec, build_dataset
    from repro.loadgen import WorkloadSpec, run_kill_recover, run_load
    from repro.utils.validation import ValidationError

    chaos = args.kill_after is not None
    if chaos != args.recover:
        print("--kill-after and --recover must be used together", flush=True)
        return 1
    reshard_chaos = args.reshard_at is not None or args.reshard_to is not None
    if reshard_chaos and (args.reshard_at is None or args.reshard_to is None):
        print("--reshard-at and --reshard-to must be used together", flush=True)
        return 1
    if reshard_chaos:
        if args.reshard_at < 0:
            print("--reshard-at must be >= 0", flush=True)
            return 1
        if args.reshard_to < 1:
            print("--reshard-to must be at least 1", flush=True)
            return 1
        if chaos:
            print(
                "--reshard-at cannot be combined with --kill-after "
                "(one chaos mode per run)",
                flush=True,
            )
            return 1
        if args.scenario or args.record or args.replay:
            print(
                "--reshard-at cannot be combined with --scenario/--record/--replay",
                flush=True,
            )
            return 1
        if args.transport == "http":
            print(
                "--reshard-at supports --transport inproc or cluster "
                "(an http gateway serves one fixed tier)",
                flush=True,
            )
            return 1
    if chaos and (args.backend != "sqlite" or args.db_path is None):
        print("chaos mode requires --backend sqlite --db-path", flush=True)
        return 1
    if chaos and args.transport != "inproc":
        # The kill/recover choreography is deliberately sequential and
        # in-process (see run_kill_recover); a wire hop adds nothing there.
        print("chaos mode supports only --transport inproc", flush=True)
        return 1
    if chaos and (args.scenario or args.record or args.replay):
        print(
            "chaos mode cannot be combined with --scenario/--record/--replay",
            flush=True,
        )
        return 1
    if args.replay and (args.scenario or args.record):
        print(
            "--replay drives a recorded workload; --scenario and --record "
            "do not apply",
            flush=True,
        )
        return 1
    if args.wire_codec != "json" and args.transport == "inproc":
        print("--wire-codec applies to wire transports only (http/cluster)", flush=True)
        return 1
    if args.max_pending_per_channel is not None:
        if args.max_pending_per_channel < 1:
            print("--max-pending-per-channel must be at least 1", flush=True)
            return 1
        if args.transport == "inproc":
            print(
                "--max-pending-per-channel applies to wire transports only "
                "(http/cluster)",
                flush=True,
            )
            return 1
    knob_overrides = {
        name: value
        for name, value in (
            ("surge_factor", args.scenario_surge_factor),
            ("flood_factor", args.scenario_flood_factor),
            ("outage_start_frac", args.scenario_outage_start),
            ("outage_length_frac", args.scenario_outage_length),
        )
        if value is not None
    }
    if knob_overrides and args.scenario is None:
        print("--scenario-* severity flags require --scenario", flush=True)
        return 1
    knobs = None
    if knob_overrides:
        from repro.loadgen.scenarios import ScenarioKnobs

        try:
            knobs = ScenarioKnobs(**knob_overrides)
        except ValidationError as error:
            print(f"invalid scenario knobs: {error}", flush=True)
            return 1
    if args.smoke:
        spec_kwargs = dict(
            channels=3, viewers=60, duration=1200.0, batch_size=64, seed=args.seed
        )
        shards, workers = 2, 2
    else:
        spec_kwargs = dict(
            channels=args.channels,
            viewers=args.viewers,
            duration=args.duration,
            batch_size=args.batch_size,
            zipf_exponent=args.zipf,
            seed=args.seed,
            stretch=args.stretch,
        )
        shards, workers = args.shards, args.workers
    if args.db_path is not None and args.backend != "sqlite":
        print("--db-path requires --backend sqlite", flush=True)
        return 1

    def train(seed: int) -> HighlightInitializer:
        # The serving model is shared, read-only state; train it exactly as
        # `serve`/`recover` do — deterministically from the seed.
        dataset = build_dataset(DatasetSpec.dota2(size=1, seed=seed))
        initializer = HighlightInitializer(config=LightorConfig())
        initializer.fit([dataset[0].training_pair])
        return initializer

    if args.replay:
        from repro.loadgen.trace import TraceFormatError, read_trace, replay_trace

        try:
            trace = read_trace(args.replay)
        except (TraceFormatError, OSError) as error:
            print(f"cannot read trace {args.replay}: {error}", flush=True)
            return 1
        print(
            f"replaying {args.replay}: {len(trace.batches)} batch(es), "
            f"{trace.total_events:,} event(s) over {len(trace.plans)} channel(s) "
            f"(recorded on transport {trace.transport}, codec {trace.wire_codec})",
            flush=True,
        )
        try:
            # The recording's model is a deterministic function of its spec
            # seed — retrain from *that*, so replay fingerprints can match
            # whatever --seed this invocation carries.
            result = replay_trace(
                trace,
                train(trace.spec.seed),
                shards=shards,
                workers=workers,
                backend=args.backend,
                db_path=args.db_path,
                oracle=not args.no_oracle,
                transport=args.transport,
                wire_codec=args.wire_codec,
                per_channel_pending=args.max_pending_per_channel,
            )
        except (ValidationError, sqlite3.Error) as error:
            print(f"replay failed: {error}", flush=True)
            return 1
        print(result.describe())
        return 0 if result.ok and not result.report.divergences else 1

    try:
        spec = WorkloadSpec(**spec_kwargs)
    except ValidationError as error:
        print(f"invalid workload: {error}", flush=True)
        return 1

    initializer = train(args.seed)

    if reshard_chaos:
        from repro.loadgen import run_reshard

        try:
            reshard_report = run_reshard(
                spec,
                initializer,
                shards=shards,
                to_shards=args.reshard_to,
                reshard_after=args.reshard_at,
                workers=workers,
                backend=args.backend,
                db_path=args.db_path,
                transport=args.transport,
                wire_codec=args.wire_codec,
            )
        except (ValidationError, sqlite3.Error) as error:
            print(f"reshard run failed: {error}", flush=True)
            return 1
        print(reshard_report.describe())
        return 0 if reshard_report.ok else 1

    if chaos:
        try:
            chaos_report = run_kill_recover(
                spec,
                initializer,
                db_path=args.db_path,
                shards=shards,
                kill_after=args.kill_after,
                checkpoint_every=args.checkpoint_every,
            )
        except (ValidationError, sqlite3.Error) as error:
            print(f"kill/recover run failed: {error}", flush=True)
            return 1
        print(chaos_report.describe())
        return 0 if chaos_report.ok else 1

    if args.scenario is not None:
        from repro.loadgen.scenarios import SCENARIOS, run_scenario

        if args.scenario not in SCENARIOS:
            print(
                f"unknown scenario {args.scenario!r} "
                f"(expected one of {', '.join(sorted(SCENARIOS))})",
                flush=True,
            )
            return 1
        try:
            scenario_report = run_scenario(
                args.scenario,
                spec,
                initializer,
                shards=shards,
                workers=workers,
                backend=args.backend,
                db_path=args.db_path,
                oracle=not args.no_oracle,
                transport=args.transport,
                wire_codec=args.wire_codec,
                per_channel_pending=args.max_pending_per_channel,
                knobs=knobs,
            )
        except (ValidationError, sqlite3.Error) as error:
            print(f"scenario run failed: {error}", flush=True)
            return 1
        if args.record:
            _record_trace(args.record, scenario_report.workload, scenario_report.report)
        print(scenario_report.describe())
        return 0 if scenario_report.ok else 1

    workload = None
    if args.record:
        from repro.loadgen import LoadWorkload

        workload = LoadWorkload.from_spec(spec)
    try:
        report = run_load(
            spec,
            initializer,
            shards=shards,
            workers=workers,
            backend=args.backend,
            db_path=args.db_path,
            oracle=not args.no_oracle,
            workload=workload,
            transport=args.transport,
            wire_codec=args.wire_codec,
            per_channel_pending=args.max_pending_per_channel,
        )
    except (ValidationError, sqlite3.Error) as error:
        print(f"load run failed: {error}", flush=True)
        return 1
    if args.record:
        _record_trace(args.record, workload, report)
    print(report.describe())
    return 1 if report.divergences else 0


def _command_lint(args) -> int:
    from pathlib import Path

    from repro.analysis import (
        RULE_DOCS,
        analyze_paths,
        compare_to_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.utils.validation import ValidationError

    if args.rules:
        for code, doc in sorted(RULE_DOCS.items()):
            print(f"{code}  {doc}")
        return 0

    root = Path.cwd()
    paths = [Path(p) for p in args.paths] if args.paths else [root / "src" / "repro"]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", flush=True)
        return 1
    findings = analyze_paths(paths, root)

    if args.write_baseline:
        try:
            write_baseline(Path(args.write_baseline), findings)
        except ValidationError as error:
            print(f"cannot write baseline: {error}", flush=True)
            return 1
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}")
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except ValidationError as error:
            print(f"cannot load baseline: {error}", flush=True)
            return 1
        delta = compare_to_baseline(findings, baseline)
        for finding in delta.new:
            print(f"NEW   {finding.render()}")
        for finding in delta.stale:
            print(f"STALE {finding.render()} (fixed but still baselined)")
        if delta.clean:
            print(
                f"lint clean: {len(findings)} finding(s), all baselined "
                f"({args.baseline})"
            )
            return 0
        print(
            f"lint failed: {len(delta.new)} new finding(s), "
            f"{len(delta.stale)} stale baseline entr(y/ies) — fix new findings "
            "(or pragma them with a reason); rewrite a stale baseline with "
            "--write-baseline"
        )
        return 1

    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("lint clean: no findings")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``lightor`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args.experiment, args.scale)
    if args.command == "run-all":
        return _command_run_all(args.scale)
    if args.command == "demo":
        return _command_demo(args.k, args.seed)
    if args.command == "load":
        return _command_load(args)
    if args.command == "lint":
        return _command_lint(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "cluster":
        return _command_cluster(args)
    if args.command == "reshard":
        return _command_reshard(args)
    if args.command == "recover":
        return _command_recover(
            db_path=args.db_path, shards=args.shards, seed=args.seed, end=args.end
        )
    if args.command == "stream":
        return _command_stream(
            channels=args.channels,
            k=args.k,
            seed=args.seed,
            emit_every_messages=args.emit_every_messages,
            emit_every_seconds=args.emit_every_seconds,
            quiet=args.quiet,
            backend=args.backend,
            db_path=args.db_path,
            shards=args.shards,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
        )
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
