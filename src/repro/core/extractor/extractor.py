"""Highlight Extractor: Algorithm 2 of the paper.

Given a red dot produced by the Highlight Initializer, the Extractor
repeatedly collects viewer interaction data around the dot, filters it,
classifies the dot as Type I or Type II and refines the highlight boundary
until the dot position converges:

* Type II → boundary = median of the (filtered) play starts and ends; the
  refined start becomes the next dot position.
* Type I → the dot is moved backwards by ``m`` seconds and a fresh round of
  interactions is requested.

Interaction data is supplied through an *interaction source* callable so the
same algorithm runs against the platform's logged interactions, the AMT-style
crowd simulator, or recorded fixtures in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.config import LightorConfig
from repro.core.extractor.aggregation import aggregate_type_ii, move_backward
from repro.core.extractor.classifier import RedDotTypeClassifier
from repro.core.extractor.filtering import PlayFilter
from repro.core.extractor.plays import interactions_to_plays, plays_near_dot
from repro.core.types import (
    Highlight,
    Interaction,
    PlayRecord,
    RedDot,
    RedDotType,
)
from repro.utils.validation import ValidationError

__all__ = ["IterationTrace", "ExtractionResult", "HighlightExtractor"]

# An interaction source maps (red dot, round index) to the raw interactions
# collected for that round.  It may also return PlayRecords directly.
InteractionSource = Callable[[RedDot, int], Sequence[Interaction] | Sequence[PlayRecord]]


@dataclass(frozen=True)
class IterationTrace:
    """What happened in one crowd round of the extraction loop."""

    round_index: int
    dot_position: float
    n_plays_collected: int
    n_plays_kept: int
    classified_type: RedDotType
    boundary: Highlight | None


@dataclass
class ExtractionResult:
    """Final output of the Extractor for one red dot."""

    dot: RedDot
    highlight: Highlight | None
    converged: bool
    iterations: list[IterationTrace] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        """Number of crowd rounds consumed."""
        return len(self.iterations)

    @property
    def final_type(self) -> RedDotType:
        """Classification of the dot in the last round (UNKNOWN if none ran)."""
        if not self.iterations:
            return RedDotType.UNKNOWN
        return self.iterations[-1].classified_type


@dataclass
class HighlightExtractor:
    """Algorithm 2: red dot + crowd interactions → exact highlight boundary.

    Parameters
    ----------
    config:
        Workflow configuration (Δ radius, duration filters, backward move m,
        convergence ε, iteration cap).
    classifier:
        The Type I/II classifier; the rule-based default reproduces the
        paper's ≈80 % accuracy on simulated crowds, and a learned classifier
        can be injected after fitting it on labelled interaction data.
    """

    config: LightorConfig = field(default_factory=LightorConfig)
    classifier: RedDotTypeClassifier = field(default_factory=RedDotTypeClassifier)
    play_filter: PlayFilter | None = None

    def __post_init__(self) -> None:
        if self.play_filter is None:
            self.play_filter = PlayFilter(config=self.config)

    # ----------------------------------------------------------------- run
    def extract(
        self,
        dot: RedDot,
        interaction_source: InteractionSource,
        video_duration: float | None = None,
    ) -> ExtractionResult:
        """Run the iterative extraction loop for one red dot.

        Parameters
        ----------
        dot:
            The initial red dot from the Highlight Initializer.
        interaction_source:
            Callable invoked once per round with ``(current_dot, round_index)``;
            returns the interactions (or plays) collected for that round.
        video_duration:
            Optional duration used when closing dangling play intervals.
        """
        current_dot = dot
        iterations: list[IterationTrace] = []
        best_boundary: Highlight | None = None
        converged = False

        for round_index in range(self.config.max_extractor_iterations):
            collected = interaction_source(current_dot, round_index)
            plays = self._as_plays(collected, video_duration)
            local_plays = plays_near_dot(plays, current_dot, radius=self.config.play_radius)
            kept = self.play_filter.filter(local_plays, current_dot)
            dot_type = self.classifier.classify(kept, current_dot)

            boundary: Highlight | None = None
            next_position = current_dot.position
            if dot_type is RedDotType.TYPE_II:
                try:
                    boundary = aggregate_type_ii(kept, current_dot)
                except ValidationError:
                    boundary = None
                if boundary is not None:
                    best_boundary = boundary
                    next_position = boundary.start
            elif dot_type is RedDotType.TYPE_I:
                next_position = move_backward(
                    current_dot, self.config.type1_backward_move
                ).position
            else:  # UNKNOWN: no usable plays this round; try again unchanged.
                next_position = current_dot.position

            iterations.append(
                IterationTrace(
                    round_index=round_index,
                    dot_position=current_dot.position,
                    n_plays_collected=len(local_plays),
                    n_plays_kept=len(kept),
                    classified_type=dot_type,
                    boundary=boundary,
                )
            )

            moved = abs(next_position - current_dot.position)
            current_dot = current_dot.moved_to(next_position)
            if dot_type is RedDotType.TYPE_II and moved <= self.config.convergence_epsilon:
                converged = True
                break

        return ExtractionResult(
            dot=current_dot,
            highlight=best_boundary,
            converged=converged,
            iterations=iterations,
        )

    def extract_all(
        self,
        dots: Sequence[RedDot],
        interaction_source: InteractionSource,
        video_duration: float | None = None,
    ) -> list[ExtractionResult]:
        """Run :meth:`extract` for every dot, keeping the input order."""
        return [
            self.extract(dot, interaction_source, video_duration=video_duration)
            for dot in dots
        ]

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _as_plays(
        collected: Sequence[Interaction] | Sequence[PlayRecord],
        video_duration: float | None,
    ) -> list[PlayRecord]:
        items = list(collected)
        if not items:
            return []
        if isinstance(items[0], PlayRecord):
            return items  # type: ignore[return-value]
        return interactions_to_plays(items, video_duration=video_duration)  # type: ignore[arg-type]
