"""Interaction → play transformation and dot-local play selection.

The platform front end logs raw interaction events (play, pause, seek
forward/backward, stop).  The Extractor works on *plays*: maximal intervals
``play(s, e)`` during which one user watched continuously.  This module
rebuilds plays from an interaction log and selects the plays attributable to
a particular red dot (those within ±Δ of the dot, Section V-A).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.core.types import Interaction, InteractionKind, PlayRecord, RedDot
from repro.utils.validation import require_non_negative

__all__ = ["interactions_to_plays", "plays_near_dot", "plays_per_user"]


def interactions_to_plays(
    interactions: Sequence[Interaction],
    video_duration: float | None = None,
) -> list[PlayRecord]:
    """Reconstruct ``play(start, end)`` records from raw interaction events.

    The reconstruction follows the natural player semantics:

    * ``PLAY`` at position *t* opens a play interval starting at *t*;
    * ``PAUSE`` / ``STOP`` at position *t* closes the open interval at *t*;
    * ``SEEK_FORWARD`` / ``SEEK_BACKWARD`` at position *t* with target *u*
      closes the open interval at *t* and opens a new one at *u*;
    * an interaction stream that ends with an open interval closes it at the
      last observed position (or ``video_duration`` when provided and smaller).

    Events are processed per user in the order they appear in ``interactions``
    (arrival order, which is how a platform logs them).  Sorting by video
    position instead would break causality for backward seeks: a viewer who
    re-watches a clip emits a STOP at an *earlier* video position than the
    seek that preceded it.  Zero-length plays are dropped.
    """
    per_user: dict[str, list[Interaction]] = defaultdict(list)
    for interaction in interactions:
        per_user[interaction.user].append(interaction)

    plays: list[PlayRecord] = []
    for user, events in per_user.items():
        open_start: float | None = None
        last_position: float = 0.0
        for event in events:
            last_position = event.timestamp
            if event.kind is InteractionKind.PLAY:
                if open_start is None:
                    open_start = event.timestamp
            elif event.kind in (InteractionKind.PAUSE, InteractionKind.STOP):
                if open_start is not None:
                    _append_play(plays, user, open_start, event.timestamp)
                    open_start = None
            elif event.kind in (InteractionKind.SEEK_FORWARD, InteractionKind.SEEK_BACKWARD):
                if open_start is not None:
                    _append_play(plays, user, open_start, event.timestamp)
                # Seeking restarts playback at the target position.
                open_start = event.target
                last_position = event.target if event.target is not None else last_position
        if open_start is not None:
            closing = last_position if last_position > open_start else open_start
            if video_duration is not None:
                closing = min(max(closing, open_start), video_duration)
            _append_play(plays, user, open_start, closing)
    return sorted(plays, key=lambda play: (play.start, play.end, play.user))


def _append_play(plays: list[PlayRecord], user: str, start: float, end: float) -> None:
    """Append a play when it has positive duration."""
    if end > start:
        plays.append(PlayRecord(user=user, start=start, end=end))


def plays_near_dot(
    plays: Iterable[PlayRecord],
    dot: RedDot,
    radius: float = 60.0,
) -> list[PlayRecord]:
    """Select the plays attributable to ``dot``.

    A play is attributed to the dot when any part of it falls within
    ``[dot.position - radius, dot.position + radius]`` — plays entirely
    outside that band likely belong to another highlight (Section V-A,
    Δ = 60 s by default).
    """
    require_non_negative(radius, "radius")
    low = dot.position - radius
    high = dot.position + radius
    return [play for play in plays if play.start <= high and play.end >= low]


def plays_per_user(plays: Iterable[PlayRecord]) -> dict[str, list[PlayRecord]]:
    """Group plays by user (useful for per-viewer statistics and tests)."""
    grouped: dict[str, list[PlayRecord]] = defaultdict(list)
    for play in plays:
        grouped[play.user].append(play)
    return dict(grouped)
