"""Filtering stage of the Highlight Extractor (Section V-C).

Play data is noisy: viewers probe a position for a couple of seconds to see
whether anything interesting is there, leave the player running for the rest
of the video, or watch parts that have nothing to do with the red dot.  The
paper filters plays in three steps:

1. **distance filter** — drop plays far from the red dot (they typically do
   not cover the highlight);
2. **duration filter** — drop plays that are too short (probing) or too long
   (passive watching of the whole video);
3. **graph outlier removal** — build an undirected graph whose nodes are the
   remaining plays with edges between overlapping plays, find the node with
   the largest degree (the *centre*), and keep only the centre and its
   neighbours; everything else is an outlier.

The implementation reports what was removed at each step so the behaviour can
be inspected and tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import LightorConfig
from repro.core.types import PlayRecord, RedDot
from repro.utils.validation import require_non_negative

__all__ = ["FilterReport", "PlayFilter", "overlap_graph_inliers"]


@dataclass
class FilterReport:
    """Book-keeping of a filtering pass (how many plays each step removed)."""

    input_count: int = 0
    removed_far: int = 0
    removed_short: int = 0
    removed_long: int = 0
    removed_outliers: int = 0
    kept: list[PlayRecord] = field(default_factory=list)

    @property
    def kept_count(self) -> int:
        """Number of plays surviving all filters."""
        return len(self.kept)

    @property
    def removed_count(self) -> int:
        """Total number of plays removed."""
        return self.input_count - self.kept_count


def overlap_graph_inliers(plays: list[PlayRecord]) -> tuple[list[PlayRecord], list[PlayRecord]]:
    """Graph-based outlier removal (Section V-C).

    Builds the undirected overlap graph over ``plays``, finds the node with
    the largest degree (ties broken towards the earliest, longest play for
    determinism), and returns ``(inliers, outliers)`` where inliers are the
    centre node and its neighbours.

    With zero or one play the input is returned unchanged (nothing to judge).
    """
    if len(plays) <= 1:
        return list(plays), []

    n = len(plays)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if plays[i].overlaps(plays[j]):
                adjacency[i].add(j)
                adjacency[j].add(i)

    def degree_key(index: int) -> tuple[int, float, float]:
        # Highest degree wins; ties prefer longer plays then earlier starts.
        return (len(adjacency[index]), plays[index].duration, -plays[index].start)

    center = max(range(n), key=degree_key)
    inlier_indices = {center} | adjacency[center]
    inliers = [plays[i] for i in sorted(inlier_indices)]
    outliers = [plays[i] for i in range(n) if i not in inlier_indices]
    return inliers, outliers


@dataclass
class PlayFilter:
    """Applies the three-step play filter around a red dot.

    Parameters
    ----------
    config:
        Supplies the distance radius (``play_radius``) and the duration
        bounds (``min_play_duration`` / ``max_play_duration``).
    """

    config: LightorConfig = field(default_factory=LightorConfig)

    def apply(self, plays: list[PlayRecord], dot: RedDot) -> FilterReport:
        """Filter ``plays`` with respect to ``dot`` and return a report."""
        report = FilterReport(input_count=len(plays))

        near = self._distance_filter(plays, dot)
        report.removed_far = len(plays) - len(near)

        sized = [p for p in near if p.duration >= self.config.min_play_duration]
        report.removed_short = len(near) - len(sized)

        bounded = [p for p in sized if p.duration <= self.config.max_play_duration]
        report.removed_long = len(sized) - len(bounded)

        inliers, outliers = overlap_graph_inliers(bounded)
        report.removed_outliers = len(outliers)
        report.kept = inliers
        return report

    def filter(self, plays: list[PlayRecord], dot: RedDot) -> list[PlayRecord]:
        """Convenience wrapper returning only the surviving plays."""
        return self.apply(plays, dot).kept

    def _distance_filter(self, plays: list[PlayRecord], dot: RedDot) -> list[PlayRecord]:
        """Keep plays intersecting the ±Δ band around the dot."""
        radius = self.config.play_radius
        require_non_negative(radius, "play_radius")
        low = dot.position - radius
        high = dot.position + radius
        return [play for play in plays if play.start <= high and play.end >= low]
