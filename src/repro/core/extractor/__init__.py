"""Highlight Extractor (Section V of the paper).

The Extractor consumes noisy viewer interaction data collected around a red
dot and refines the dot into an exact highlight boundary through a three-stage
dataflow, iterated over crowd rounds until convergence:

1. :mod:`plays <repro.core.extractor.plays>` converts raw interactions into
   ``play(start, end)`` records and selects the plays within ±Δ of the dot.
2. :mod:`filtering <repro.core.extractor.filtering>` removes probing/marathon
   plays and graph-based outliers.
3. :mod:`classifier <repro.core.extractor.classifier>` decides whether the dot
   is Type I (after the highlight end) or Type II (before it) from three play
   -position features.
4. :mod:`aggregation <repro.core.extractor.aggregation>` computes the refined
   boundary: median aggregation for Type II, a backwards move for Type I.
5. :mod:`extractor <repro.core.extractor.extractor>` wires the stages into
   Algorithm 2 and iterates with fresh crowd data each round.
"""

from repro.core.extractor.plays import interactions_to_plays, plays_near_dot
from repro.core.extractor.filtering import PlayFilter, FilterReport
from repro.core.extractor.classifier import (
    PlayPositionFeatures,
    RedDotTypeClassifier,
    extract_play_position_features,
)
from repro.core.extractor.aggregation import aggregate_type_ii, move_backward
from repro.core.extractor.extractor import ExtractionResult, HighlightExtractor, IterationTrace

__all__ = [
    "interactions_to_plays",
    "plays_near_dot",
    "PlayFilter",
    "FilterReport",
    "PlayPositionFeatures",
    "RedDotTypeClassifier",
    "extract_play_position_features",
    "aggregate_type_ii",
    "move_backward",
    "ExtractionResult",
    "HighlightExtractor",
    "IterationTrace",
]
