"""Aggregation stage of the Highlight Extractor (Section V-C).

Once a red dot's plays have been filtered and the dot classified:

* **Type II** — most viewers watched the same highlight, so their play starts
  and ends are concentrated; the refined boundary is the *median* of the
  play starts and the median of the play ends.  Plays that end before the
  dot are dropped first (Algorithm 2, lines 7–10) because they cannot be
  highlight-watching sessions when the dot precedes the highlight end.
* **Type I** — plays are scattered (viewers hunted for the highlight), so the
  boundary cannot be trusted; instead the dot is moved backwards by a
  constant ``m`` so that the *next* crowd round is likely to be Type II.
"""

from __future__ import annotations

from statistics import median

from repro.core.types import Highlight, PlayRecord, RedDot
from repro.utils.validation import ValidationError, require_positive

__all__ = ["aggregate_type_ii", "move_backward"]


def aggregate_type_ii(
    plays: list[PlayRecord],
    dot: RedDot,
    drop_plays_ending_before_dot: bool = True,
) -> Highlight:
    """Median aggregation of play boundaries for a Type-II red dot.

    Parameters
    ----------
    plays:
        The filtered plays attributed to the dot.
    dot:
        The red dot being refined.
    drop_plays_ending_before_dot:
        Reproduces Algorithm 2 lines 7–10: a play whose end precedes the dot
        cannot have covered the highlight when the dot lies before the
        highlight end, so it is excluded from the vote.

    Returns
    -------
    Highlight
        The aggregated ``[median(starts), median(ends)]`` interval.

    Raises
    ------
    ValidationError
        When no usable plays remain to aggregate.
    """
    usable = list(plays)
    if drop_plays_ending_before_dot:
        usable = [play for play in usable if play.end >= dot.position]
    if not usable:
        raise ValidationError(
            "no usable plays to aggregate for the red dot at "
            f"{dot.position:.1f}s (got {len(plays)} plays before dropping)"
        )
    start = float(median(play.start for play in usable))
    end = float(median(play.end for play in usable))
    if end < start:
        # Extremely noisy votes can invert the medians; clamp to a zero-length
        # interval anchored at the start rather than producing an invalid
        # highlight.
        end = start
    return Highlight(start=start, end=end, label="extracted")


def move_backward(dot: RedDot, distance: float) -> RedDot:
    """Move a Type-I red dot backwards by ``distance`` seconds.

    The new dot is used to collect a fresh round of interactions; once the
    dot lands before the highlight end the round will classify as Type II and
    median aggregation applies.
    """
    require_positive(distance, "distance")
    return dot.moved_to(dot.position - distance)
