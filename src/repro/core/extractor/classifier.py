"""Type I / Type II classification of red dots (Section V-C).

Whether median aggregation of play boundaries works depends on the (unknown)
relative position of the red dot and the end of its highlight:

* **Type I** — the dot is *after* the highlight end: viewers starting at the
  dot miss the highlight and hunt backwards for it, so their plays are
  scattered (some before the dot, some across it).
* **Type II** — the dot is *before* the highlight end: viewers starting at
  the dot see the highlight, so their plays start at or after the dot.

The paper observes that this unknown relation correlates strongly with the
*known* relation between the dot and the plays, and classifies dots using
three features: the number of plays starting at/after the dot, the number
ending before the dot, and the number crossing the dot.  We implement both
the paper's learned classifier (logistic regression over the three features)
and a transparent rule-based fallback used when no labelled interaction data
is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.types import PlayRecord, RedDot, RedDotType
from repro.ml.logistic import LogisticRegression
from repro.utils.validation import ValidationError

__all__ = [
    "PlayPositionFeatures",
    "extract_play_position_features",
    "RedDotTypeClassifier",
]

# A play "starts at the dot" if its start is within this many seconds of the
# dot position — viewers who click a dot start within a second or two of it.
_START_SLACK = 2.0


@dataclass(frozen=True)
class PlayPositionFeatures:
    """The three play-position features of the Type I/II classifier."""

    plays_after: int
    plays_before: int
    plays_across: int

    @property
    def total(self) -> int:
        """Total number of plays described by the features."""
        return self.plays_after + self.plays_before + self.plays_across

    def as_array(self) -> np.ndarray:
        """Return the features as a ``(3,)`` vector."""
        return np.array([self.plays_after, self.plays_before, self.plays_across], dtype=float)

    def normalised(self) -> np.ndarray:
        """Return the features as fractions of the total play count."""
        total = self.total
        if total == 0:
            return np.zeros(3)
        return self.as_array() / float(total)


def extract_play_position_features(
    plays: list[PlayRecord], dot: RedDot
) -> PlayPositionFeatures:
    """Compute the three play-position features for ``dot``.

    * ``plays_after`` — plays starting at or after the dot (within a small
      slack for click latency);
    * ``plays_before`` — plays ending before the dot;
    * ``plays_across`` — plays starting before the dot and ending after it.
    """
    after = 0
    before = 0
    across = 0
    for play in plays:
        if play.start >= dot.position - _START_SLACK:
            after += 1
        elif play.end < dot.position:
            before += 1
        else:
            across += 1
    return PlayPositionFeatures(plays_after=after, plays_before=before, plays_across=across)


@dataclass
class RedDotTypeClassifier:
    """Classifies a red dot as Type I or Type II from its plays.

    Two modes are supported:

    * **rule-based** (default, ``model is None``) — a dot is Type II when the
      overwhelming majority of plays start at/after it; the presence of a
      meaningful fraction of plays before or across the dot signals that
      viewers had to hunt backwards, i.e. Type I.  The threshold reproduces
      Figure 4's intuition and gives ~80 % accuracy on simulated crowds, in
      line with the paper.
    * **learned** — :meth:`fit` trains a logistic regression on labelled
      examples ``(features, is_type_ii)``; :meth:`classify` then uses it.
    """

    hunting_fraction_threshold: float = 0.2
    model: LogisticRegression | None = None
    is_fitted: bool = field(default=False, repr=False)

    # ---------------------------------------------------------------- train
    def fit(
        self, features: list[PlayPositionFeatures], is_type_ii: list[bool]
    ) -> "RedDotTypeClassifier":
        """Train the learned classifier on labelled dot examples."""
        if len(features) != len(is_type_ii):
            raise ValidationError("features and labels must have the same length")
        if not features:
            raise ValidationError("cannot fit the classifier on zero examples")
        matrix = np.vstack([f.normalised() for f in features])
        labels = np.asarray(is_type_ii, dtype=int)
        model = LogisticRegression(n_iterations=3000, learning_rate=0.8)
        model.fit(matrix, labels)
        self.model = model
        self.is_fitted = True
        return self

    # ------------------------------------------------------------- classify
    def classify(self, plays: list[PlayRecord], dot: RedDot) -> RedDotType:
        """Classify ``dot`` given its (filtered) plays."""
        features = extract_play_position_features(plays, dot)
        return self.classify_features(features)

    def classify_features(self, features: PlayPositionFeatures) -> RedDotType:
        """Classify from pre-computed play-position features."""
        if features.total == 0:
            return RedDotType.UNKNOWN
        if self.model is not None and self.is_fitted:
            probability = float(self.model.predict_proba(features.normalised().reshape(1, -1))[0])
            return RedDotType.TYPE_II if probability >= 0.5 else RedDotType.TYPE_I
        hunting = features.plays_before + features.plays_across
        hunting_fraction = hunting / features.total
        if hunting_fraction > self.hunting_fraction_threshold:
            return RedDotType.TYPE_I
        return RedDotType.TYPE_II

    def probability_type_ii(self, plays: list[PlayRecord], dot: RedDot) -> float:
        """Return a soft score in [0, 1]; higher means more Type-II-like."""
        features = extract_play_position_features(plays, dot)
        if features.total == 0:
            return 0.5
        if self.model is not None and self.is_fitted:
            return float(self.model.predict_proba(features.normalised().reshape(1, -1))[0])
        hunting = features.plays_before + features.plays_across
        return 1.0 - hunting / features.total
