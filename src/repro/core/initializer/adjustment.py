"""Adjustment stage of the Highlight Initializer (Section IV-C).

People can only comment on a highlight *after* they have seen it, so the
chat-message peak lags the highlight start by a reaction delay.  The paper
models the relationship as ``time_start = time_peak - c`` with a single
constant ``c`` learned from labelled data by maximising the number of *good
red dots*:

    argmax_c  Σ_i  reward(time_peak_i - c, time_start_i)

where ``reward`` is 1 when the adjusted position is a good red dot for
highlight ``i`` (not after the highlight end, not more than 10 s before its
start) and 0 otherwise.  The search space is one-dimensional and bounded, so
we evaluate the reward on a fine grid of candidate constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LightorConfig
from repro.core.initializer.predictor import WindowPredictor
from repro.core.types import Highlight, RedDot, VideoChatLog
from repro.utils.validation import ValidationError, require_non_negative

__all__ = ["PeakAdjuster", "learn_adjustment_constant", "reward"]


def reward(
    dot_position: float,
    highlight: Highlight,
    start_tolerance: float = 10.0,
) -> int:
    """The paper's 0/1 reward: is ``dot_position`` a good red dot for ``highlight``?

    A dot is good when it is not after the end of the highlight
    (``dot <= end``) and not more than ``start_tolerance`` seconds before its
    start (``dot >= start - tolerance``).
    """
    if dot_position > highlight.end:
        return 0
    if dot_position < highlight.start - start_tolerance:
        return 0
    return 1


def learn_adjustment_constant(
    peaks: list[float],
    highlights: list[Highlight],
    start_tolerance: float = 10.0,
    candidate_range: tuple[float, float] = (0.0, 60.0),
    step: float = 0.5,
) -> float:
    """Learn the constant ``c`` maximising the number of good red dots.

    Parameters
    ----------
    peaks:
        Chat-peak positions, one per labelled highlight (``time_peak_i``).
    highlights:
        The corresponding ground-truth highlights.
    start_tolerance:
        The 10-second patience bound of the good-red-dot definition.
    candidate_range / step:
        The grid of candidate constants to evaluate.

    Returns
    -------
    float
        A grid candidate achieving the maximum reward.  The 0/1 reward is
        flat over a plateau of optimal constants, so ties are broken towards
        the candidate closest to the median observed delay
        ``median(peak_i - start_i)`` — the most natural single estimate of
        the reaction delay.  This tie-break is what keeps the learned
        constant stable as the training set shrinks to one video
        (paper Fig. 7b).
    """
    if len(peaks) != len(highlights):
        raise ValidationError("peaks and highlights must have the same length")
    if not peaks:
        raise ValidationError("cannot learn the adjustment constant without examples")
    require_non_negative(start_tolerance, "start_tolerance")
    low, high = candidate_range
    if high < low:
        raise ValidationError("candidate_range must be (low, high) with high >= low")

    candidates = np.arange(low, high + step / 2.0, step)
    totals = np.array(
        [
            sum(
                reward(peak - candidate, highlight, start_tolerance)
                for peak, highlight in zip(peaks, highlights)
            )
            for candidate in candidates
        ]
    )
    best_reward = totals.max()
    maximisers = candidates[totals == best_reward]
    observed_delay = float(
        np.median([peak - highlight.start for peak, highlight in zip(peaks, highlights)])
    )
    return float(maximisers[np.argmin(np.abs(maximisers - observed_delay))])


@dataclass
class PeakAdjuster:
    """Learns and applies the peak → start adjustment.

    The adjuster is trained from labelled videos: for each ground-truth
    highlight we find the chat-peak that follows it (the densest second in the
    window of discussion) and record the pair ``(peak, highlight)``.  The
    constant ``c`` maximising the good-red-dot reward over those pairs is then
    used at prediction time: a window's red dot is placed at
    ``window.peak_timestamp() - c``.
    """

    config: LightorConfig = field(default_factory=LightorConfig)
    discussion_horizon: float = 45.0
    constant_: float | None = None
    training_pairs_: int = 0

    def fit(
        self,
        training_logs: list[tuple[VideoChatLog, list[Highlight]]],
        predictor: WindowPredictor | None = None,
    ) -> "PeakAdjuster":
        """Learn ``c`` from labelled videos.

        For every ground-truth highlight, the chat peak is measured as the
        densest one-second bin inside ``[start, end + discussion_horizon]`` —
        the period in which viewers react to that highlight.  ``predictor``
        is accepted for interface symmetry but not required: the adjustment
        constant only depends on chat timing relative to the labels.
        """
        peaks: list[float] = []
        highlights: list[Highlight] = []
        for chat_log, video_highlights in training_logs:
            for highlight in video_highlights:
                peak = self._discussion_peak(chat_log, highlight)
                if peak is None:
                    continue
                peaks.append(peak)
                highlights.append(highlight)
        if not peaks:
            raise ValidationError(
                "no (peak, highlight) training pairs could be derived; "
                "are the labelled videos' chat logs empty?"
            )
        self.constant_ = learn_adjustment_constant(
            peaks,
            highlights,
            start_tolerance=self.config.start_tolerance,
        )
        self.training_pairs_ = len(peaks)
        return self

    def _discussion_peak(
        self, chat_log: VideoChatLog, highlight: Highlight, refine_radius: float = 3.0
    ) -> float | None:
        """Chat peak in the highlight's discussion period.

        The densest one-second bin in ``[start, end + horizon]`` is located
        and then refined to the mean timestamp of the messages within
        ``refine_radius`` seconds of it — the same estimator the sliding
        windows use at prediction time, so the learned constant is not biased
        by a train/predict estimator mismatch.
        """
        start = highlight.start
        end = min(chat_log.video.duration, highlight.end + self.discussion_horizon)
        messages = chat_log.messages_between(start, end)
        if not messages:
            return None
        n_bins = max(1, int(np.ceil(end - start)))
        counts = np.zeros(n_bins)
        for message in messages:
            index = min(n_bins - 1, int(message.timestamp - start))
            counts[index] += 1
        coarse_peak = float(start + int(np.argmax(counts)) + 0.5)
        nearby = [
            message.timestamp
            for message in messages
            if abs(message.timestamp - coarse_peak) <= refine_radius
        ]
        if not nearby:
            return coarse_peak
        return float(np.mean(nearby))

    @property
    def constant(self) -> float:
        """The learned adjustment constant ``c`` in seconds."""
        if self.constant_ is None:
            raise ValidationError("adjuster is not fitted; call fit() first")
        return self.constant_

    def adjust(self, peak_position: float) -> float:
        """Move a chat peak backwards by ``c`` (clamped at 0)."""
        return max(0.0, peak_position - self.constant)

    def red_dot_for_window(self, window, video_id: str = "") -> RedDot:
        """Place a red dot for a scored sliding window."""
        peak = window.peak_timestamp()
        return RedDot(
            position=self.adjust(peak),
            score=window.score or 0.0,
            window=(window.start, window.end),
            video_id=video_id,
        )
