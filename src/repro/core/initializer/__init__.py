"""Highlight Initializer (Section IV of the paper).

The Initializer turns a video's time-stamped chat messages into a set of
top-k "red dots" — approximate highlight start positions:

1. :mod:`windows <repro.core.initializer.windows>` builds candidate sliding
   windows over the chat stream (Algorithm 1, line 1).
2. :mod:`features <repro.core.initializer.features>` extracts the three
   general features (message number, message length, message similarity) and
   normalises them.
3. :mod:`predictor <repro.core.initializer.predictor>` scores windows with a
   logistic-regression model and selects the top-k windows subject to the
   minimum-spacing constraint (prediction stage).
4. :mod:`adjustment <repro.core.initializer.adjustment>` learns the chat
   reaction delay ``c`` and moves each window's chat peak backwards by ``c``
   to obtain the red-dot position (adjustment stage).
5. :mod:`initializer <repro.core.initializer.initializer>` wires the stages
   into Algorithm 1 and exposes training on labelled videos.
"""

from repro.core.initializer.windows import (
    SlidingWindow,
    StreamingWindowBuilder,
    build_sliding_windows,
    resolve_overlapping_windows,
)
from repro.core.initializer.features import (
    RunningWindowFeatures,
    WindowFeatureExtractor,
    WindowFeatures,
)
from repro.core.initializer.predictor import WindowPredictor, FeatureSet
from repro.core.initializer.adjustment import PeakAdjuster, learn_adjustment_constant
from repro.core.initializer.initializer import HighlightInitializer, InitializerModel

__all__ = [
    "SlidingWindow",
    "StreamingWindowBuilder",
    "build_sliding_windows",
    "resolve_overlapping_windows",
    "RunningWindowFeatures",
    "WindowFeatureExtractor",
    "WindowFeatures",
    "WindowPredictor",
    "FeatureSet",
    "PeakAdjuster",
    "learn_adjustment_constant",
    "HighlightInitializer",
    "InitializerModel",
]
