"""Prediction stage of the Highlight Initializer.

A logistic-regression model scores each sliding window with the probability
that its messages are discussing a highlight, then the top-k windows are
selected subject to the minimum-spacing constraint δ ("it is not useful to
generate two red dots that are very close to each other").

The :class:`FeatureSet` enum supports the paper's feature ablation (Fig. 6a):
``MSG_NUM`` uses only the message-number feature (the naive signal),
``MSG_NUM_LEN`` adds message length, and ``ALL`` adds message similarity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LightorConfig
from repro.core.initializer.features import WindowFeatureExtractor
from repro.core.initializer.windows import SlidingWindow
from repro.core.types import Highlight, VideoChatLog
from repro.ml.logistic import LogisticRegression
from repro.utils.validation import ValidationError

__all__ = ["FeatureSet", "WindowPredictor", "select_spaced_top_k"]


def select_spaced_top_k(
    records: list[tuple], k: int, min_spacing: float
) -> list[tuple]:
    """Greedy top-k under the δ spacing constraint, shared batch/stream.

    ``records`` are ``(item, score, peak, start)`` tuples.  Candidates are
    considered in decreasing score order (ties broken by start); one is
    skipped when its peak lies within ``min_spacing`` of an already selected
    peak (the paper's ``Top`` function "makes sure that H does not contain
    too close highlights").  Returns the selected records sorted by start.

    Both :meth:`WindowPredictor.top_k_windows` and the streaming engine's
    summary scorer select through this one function, so the batch/stream
    parity contract cannot drift here.
    """
    ranked = sorted(records, key=lambda record: (-(record[1] or 0.0), record[3]))
    selected: list[tuple] = []
    for record in ranked:
        if len(selected) >= k:
            break
        too_close = any(
            abs(record[2] - chosen[2]) <= min_spacing for chosen in selected
        )
        if too_close:
            continue
        selected.append(record)
    return sorted(selected, key=lambda record: record[3])


class FeatureSet(enum.Enum):
    """Which general features the predictor uses (paper Fig. 6a ablation)."""

    MSG_NUM = ("message_number",)
    MSG_NUM_LEN = ("message_number", "message_length")
    ALL = ("message_number", "message_length", "message_similarity")

    @property
    def column_indices(self) -> list[int]:
        """Columns of the full feature matrix used by this feature set."""
        all_names = ("message_number", "message_length", "message_similarity")
        return [all_names.index(name) for name in self.value]


@dataclass
class WindowPredictor:
    """Scores chat windows and returns the top-k highlight windows.

    Parameters
    ----------
    config:
        Workflow configuration (window size, spacing δ, default k).
    feature_set:
        Which subset of the three general features to use.
    reaction_delay:
        Label windows as positive when they overlap
        ``[start, end + reaction_delay]`` of a ground-truth highlight (the
        chat discussion period); only used during training.
    """

    config: LightorConfig = field(default_factory=LightorConfig)
    feature_set: FeatureSet = FeatureSet.ALL
    reaction_delay: float = 30.0
    model: LogisticRegression = field(default_factory=LogisticRegression)
    extractor: WindowFeatureExtractor = field(default_factory=WindowFeatureExtractor)
    is_fitted: bool = False

    # ---------------------------------------------------------------- train
    def fit(self, training_logs: list[tuple[VideoChatLog, list[Highlight]]]) -> "WindowPredictor":
        """Train the window scorer on labelled videos.

        Parameters
        ----------
        training_logs:
            Pairs of (chat log, ground-truth highlights).  The paper shows a
            single labelled video already yields a good model (Fig. 6b).
        """
        if not training_logs:
            raise ValidationError("fit requires at least one labelled video")
        feature_blocks: list[np.ndarray] = []
        label_blocks: list[np.ndarray] = []
        for chat_log, highlights in training_logs:
            windows = self._windows_for(chat_log)
            if not windows:
                continue
            features = self.extractor.feature_matrix(windows)
            labels = self.extractor.label_windows(
                windows, highlights, reaction_delay=self.reaction_delay
            )
            feature_blocks.append(features)
            label_blocks.append(labels)
        if not feature_blocks:
            raise ValidationError("no usable windows found in the training videos")
        features = np.vstack(feature_blocks)[:, self.feature_set.column_indices]
        labels = np.concatenate(label_blocks)
        self.model.fit(features, labels)
        self.is_fitted = True
        return self

    # ---------------------------------------------------------------- score
    def score_windows(self, chat_log: VideoChatLog) -> list[SlidingWindow]:
        """Return the video's windows with predicted probabilities attached."""
        self._check_fitted()
        windows = self._windows_for(chat_log)
        if not windows:
            return []
        features = self.extractor.feature_matrix(windows)[:, self.feature_set.column_indices]
        probabilities = self.model.predict_proba(features)
        for window, probability in zip(windows, probabilities):
            window.score = float(probability)
        return windows

    def top_k_windows(
        self, chat_log: VideoChatLog, k: int | None = None
    ) -> list[SlidingWindow]:
        """Return the top-k scored windows respecting the spacing constraint δ.

        Windows are considered in decreasing score order; a window is skipped
        when its peak lies within ``min_dot_spacing`` of an already selected
        window's peak (the paper's ``Top`` function "makes sure that H does
        not contain too close highlights").
        """
        if k is None:
            k = self.config.top_k
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k!r}")
        windows = self.score_windows(chat_log)
        records = [
            (window, window.score or 0.0, window.peak_timestamp(), window.start)
            for window in windows
        ]
        selected = select_spaced_top_k(records, k, self.config.min_dot_spacing)
        return [record[0] for record in selected]

    # -------------------------------------------------------------- helpers
    def _windows_for(self, chat_log: VideoChatLog) -> list[SlidingWindow]:
        from repro.core.initializer.windows import build_sliding_windows

        return build_sliding_windows(
            chat_log,
            window_size=self.config.window_size,
            stride=self.config.window_stride,
            resolve_overlaps=True,
        )

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise ValidationError("predictor is not fitted; call fit() first")
