"""Sliding-window construction over a chat stream (Algorithm 1, line 1).

The Initializer scans the chat log with fixed-length windows.  The paper's
``get_sliding_wins`` generates candidate windows and, when two windows
overlap, keeps the one with more messages.  We reproduce that greedy
resolution: windows are generated on a regular stride, ranked by message
count, and accepted greedily unless they overlap an already-accepted denser
window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import ChatMessage, VideoChatLog
from repro.utils.validation import ValidationError, require_positive

__all__ = ["SlidingWindow", "build_sliding_windows", "window_for_timestamp"]


@dataclass
class SlidingWindow:
    """A chat sliding window ``[start, end)`` with its member messages."""

    start: float
    end: float
    messages: list[ChatMessage] = field(default_factory=list)
    score: float | None = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValidationError(
                f"window end ({self.end}) must be after start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Window length in seconds."""
        return self.end - self.start

    @property
    def message_count(self) -> int:
        """Number of chat messages falling in the window."""
        return len(self.messages)

    @property
    def texts(self) -> list[str]:
        """Raw texts of the window's messages."""
        return [message.text for message in self.messages]

    def overlaps(self, other: "SlidingWindow") -> bool:
        """Whether two half-open windows intersect."""
        return self.start < other.end and other.start < self.end

    def peak_timestamp(self, bin_size: float = 1.0, refine_radius: float = 3.0) -> float:
        """Timestamp (second) at which the message count peaks inside the window.

        The paper detects "the time when the message number reaches the top"
        within the window.  We bin the window at ``bin_size`` seconds, find
        the densest bin, then refine the estimate to the mean timestamp of
        the messages within ``refine_radius`` seconds of that bin's centre —
        the refinement removes most of the one-second quantisation noise,
        which matters because the adjustment constant is learned to within a
        few seconds.  An empty window returns its start.
        """
        if not self.messages:
            return self.start
        require_positive(bin_size, "bin_size")
        n_bins = max(1, int(round(self.duration / bin_size)))
        counts = [0] * n_bins
        for message in self.messages:
            offset = message.timestamp - self.start
            index = min(n_bins - 1, int(offset // bin_size))
            counts[index] += 1
        best_bin = max(range(n_bins), key=lambda i: counts[i])
        coarse_peak = self.start + (best_bin + 0.5) * bin_size
        nearby = [
            message.timestamp
            for message in self.messages
            if abs(message.timestamp - coarse_peak) <= refine_radius
        ]
        if not nearby:
            return coarse_peak
        return float(sum(nearby) / len(nearby))

    def contains(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls inside ``[start, end)``."""
        return self.start <= timestamp < self.end


def build_sliding_windows(
    chat_log: VideoChatLog,
    window_size: float,
    stride: float | None = None,
    resolve_overlaps: bool = True,
    min_messages: int = 1,
) -> list[SlidingWindow]:
    """Generate candidate sliding windows over ``chat_log``.

    Parameters
    ----------
    chat_log:
        The video's chat messages (sorted by timestamp).
    window_size:
        Window length ``l`` in seconds (paper default 25 s).
    stride:
        Step between window starts; defaults to ``window_size`` (non-
        overlapping windows, as used in the paper's Fig. 2b analysis).  A
        smaller stride produces overlapping candidates which are resolved by
        keeping the denser window, matching Algorithm 1.
    resolve_overlaps:
        When True (default), overlapping candidates are resolved greedily by
        message count so the returned windows are mutually disjoint.
    min_messages:
        Windows with fewer messages than this are dropped (empty windows
        cannot be talking about a highlight).

    Returns
    -------
    list[SlidingWindow]
        Windows sorted by start time.
    """
    require_positive(window_size, "window_size")
    if stride is None:
        stride = window_size
    require_positive(stride, "stride")

    duration = chat_log.video.duration
    candidates: list[SlidingWindow] = []
    start = 0.0
    while start < duration:
        end = min(start + window_size, duration)
        if end - start > 0:
            messages = chat_log.messages_between(start, end)
            if len(messages) >= min_messages:
                candidates.append(SlidingWindow(start=start, end=end, messages=messages))
        start += stride

    if not resolve_overlaps or stride >= window_size:
        return candidates

    # Greedy resolution: densest window first, reject anything overlapping an
    # already-accepted window ("when two sliding windows have an overlap, we
    # keep the one with more messages").
    ranked = sorted(candidates, key=lambda w: (-w.message_count, w.start))
    accepted: list[SlidingWindow] = []
    for window in ranked:
        if any(window.overlaps(existing) for existing in accepted):
            continue
        accepted.append(window)
    return sorted(accepted, key=lambda w: w.start)


def window_for_timestamp(
    windows: list[SlidingWindow], timestamp: float
) -> SlidingWindow | None:
    """Return the window containing ``timestamp``, or None."""
    for window in windows:
        if window.contains(timestamp):
            return window
    return None
