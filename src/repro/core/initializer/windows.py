"""Sliding-window construction over a chat stream (Algorithm 1, line 1).

The Initializer scans the chat log with fixed-length windows.  The paper's
``get_sliding_wins`` generates candidate windows and, when two windows
overlap, keeps the one with more messages.  We reproduce that greedy
resolution: windows are generated on a regular stride, ranked by message
count, and accepted greedily unless they overlap an already-accepted denser
window.

The construction is *streaming-first*: :class:`StreamingWindowBuilder`
consumes one :class:`~repro.core.types.ChatMessage` at a time (in timestamp
order, as a live chat delivers them) and seals windows as the stream moves
past their end.  The batch entry point :func:`build_sliding_windows` is a
replay of that stream, so the recorded-video path and the live path produce
identical windows by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.types import ChatMessage, VideoChatLog
from repro.utils.validation import ValidationError, require_positive

__all__ = [
    "SlidingWindow",
    "StreamingWindowBuilder",
    "build_sliding_windows",
    "resolve_overlapping_windows",
    "window_for_timestamp",
]


@dataclass
class SlidingWindow:
    """A chat sliding window ``[start, end)`` with its member messages."""

    start: float
    end: float
    messages: list[ChatMessage] = field(default_factory=list)
    score: float | None = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValidationError(
                f"window end ({self.end}) must be after start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Window length in seconds."""
        return self.end - self.start

    @property
    def message_count(self) -> int:
        """Number of chat messages falling in the window."""
        return len(self.messages)

    @property
    def texts(self) -> list[str]:
        """Raw texts of the window's messages."""
        return [message.text for message in self.messages]

    def overlaps(self, other: "SlidingWindow") -> bool:
        """Whether two half-open windows intersect."""
        return self.start < other.end and other.start < self.end

    def peak_timestamp(self, bin_size: float = 1.0, refine_radius: float = 3.0) -> float:
        """Timestamp (second) at which the message count peaks inside the window.

        The paper detects "the time when the message number reaches the top"
        within the window.  We bin the window at ``bin_size`` seconds, find
        the densest bin, then refine the estimate to the mean timestamp of
        the messages within ``refine_radius`` seconds of that bin's centre —
        the refinement removes most of the one-second quantisation noise,
        which matters because the adjustment constant is learned to within a
        few seconds.  An empty window returns its start.
        """
        if not self.messages:
            return self.start
        require_positive(bin_size, "bin_size")
        n_bins = max(1, int(round(self.duration / bin_size)))
        timestamps = np.fromiter(
            (message.timestamp for message in self.messages),
            dtype=float,
            count=len(self.messages),
        )
        indices = np.minimum(n_bins - 1, ((timestamps - self.start) // bin_size).astype(np.int64))
        if int(indices.min()) < 0:
            # A message before the window start (possible only on hand-built
            # windows — the builders never produce one) would wrap to a
            # negative Python list index in the reference formulation; fall
            # back to it rather than replicate that quirk vectorised.
            counts = [0] * n_bins
            for index in indices:
                counts[int(index)] += 1
            best_bin = max(range(n_bins), key=lambda i: counts[i])
        else:
            # Binning counts are exact integers, and np.argmax picks the
            # first maximum exactly like max(range, key=...), so this is
            # bit-identical to the per-message loop it replaces.
            best_bin = int(np.argmax(np.bincount(indices, minlength=n_bins)))
        coarse_peak = self.start + (best_bin + 0.5) * bin_size
        nearby = timestamps[np.abs(timestamps - coarse_peak) <= refine_radius]
        if nearby.size == 0:
            return coarse_peak
        return float(sum(nearby) / len(nearby))

    def contains(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls inside ``[start, end)``."""
        return self.start <= timestamp < self.end


@dataclass
class StreamingWindowBuilder:
    """Incrementally assigns a chat stream to candidate sliding windows.

    Candidate window ``i`` spans ``[i * stride, i * stride + window_size)``.
    Messages must arrive in non-decreasing timestamp order (live chat order);
    each message is appended to every candidate window containing it, and a
    window is *sealed* — handed back to the caller, never to change again —
    once a message arrives at or beyond its end.  :meth:`flush` closes the
    remaining windows when the stream ends, truncating them at the video
    duration exactly like the batch builder.

    Memory is bounded by the live edge: the builder only holds the windows
    that can still receive messages (``ceil(window_size / stride)`` of them),
    never the whole stream.
    """

    window_size: float
    stride: float | None = None
    min_messages: int = 1
    _active: dict[int, SlidingWindow] = field(default_factory=dict, repr=False)
    _next_seal: int = 0
    _last_timestamp: float = field(default=-math.inf, repr=False)
    messages_seen: int = 0
    windows_sealed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.window_size, "window_size")
        if self.stride is None:
            self.stride = self.window_size
        require_positive(self.stride, "stride")

    # ------------------------------------------------------------------ feed
    def add(self, message: ChatMessage) -> list[SlidingWindow]:
        """Feed one message; return the windows sealed by its arrival.

        Sealed windows are complete: every message they can ever contain has
        been seen.  They are returned in start order and removed from the
        builder's state.
        """
        timestamp = message.timestamp
        if timestamp < self._last_timestamp:
            raise ValidationError(
                f"messages must arrive in timestamp order; got {timestamp} "
                f"after {self._last_timestamp}"
            )
        self._last_timestamp = timestamp
        self.messages_seen += 1

        sealed = self._seal_through(timestamp)

        # Append to every live window [s, s + window_size) containing the
        # message.  The index range is derived arithmetically and then each
        # candidate is verified with the exact membership predicate, so
        # floating-point rounding of the division can never change membership.
        lowest = max(
            self._next_seal, self._index_at_or_before(timestamp - self.window_size) - 1
        )
        highest = self._index_at_or_before(timestamp) + 1
        for index in range(max(0, lowest), highest + 1):
            start = index * self.stride
            if start <= timestamp < start + self.window_size:
                window = self._active.get(index)
                if window is None:
                    window = SlidingWindow(start=start, end=start + self.window_size)
                    self._active[index] = window
                window.messages.append(message)
        return sealed

    def add_batch(self, messages: Sequence[ChatMessage]) -> list[SlidingWindow]:
        """Feed a timestamp-ordered batch; return every window it sealed.

        Semantically identical to calling :meth:`add` once per message — the
        same windows receive the same messages in the same order and the same
        windows seal — but window membership is computed in one NumPy pass:
        because the batch is sorted, the members of window ``[s, s + l)`` are
        a contiguous slice of the batch found with two ``searchsorted`` calls
        (the comparisons are the exact ``s <= t < s + l`` membership
        predicate, so no float-rounding drift against the per-message path is
        possible).  Cost is O(windows touched · log batch) plus the slice
        appends, instead of O(batch · windows-per-message) Python iterations.

        Raises :class:`ValidationError` (before mutating any state) if the
        batch is internally unsorted or starts before a previously seen
        timestamp.
        """
        if not messages:
            return []
        if len(messages) == 1:
            return self.add(messages[0])
        timestamps = np.fromiter(
            (message.timestamp for message in messages), dtype=float, count=len(messages)
        )
        first, last = float(timestamps[0]), float(timestamps[-1])
        if first < self._last_timestamp or np.any(np.diff(timestamps) < 0.0):
            out_of_order = first if first < self._last_timestamp else "within the batch"
            raise ValidationError(
                f"messages must arrive in timestamp order; got {out_of_order} "
                f"after {self._last_timestamp}"
            )

        # Candidate indices: every window whose [start, start + l) span can
        # intersect [first, last].  The same over-approximation as add()'s
        # per-message range; the searchsorted slice is the exact predicate.
        lowest = max(0, self._next_seal, self._index_at_or_before(first - self.window_size) - 1)
        highest = self._index_at_or_before(last) + 1
        for index in range(lowest, highest + 1):
            start = index * self.stride
            lo = int(np.searchsorted(timestamps, start, side="left"))
            hi = int(np.searchsorted(timestamps, start + self.window_size, side="left"))
            if lo >= hi:
                continue
            window = self._active.get(index)
            if window is None:
                window = SlidingWindow(start=start, end=start + self.window_size)
                self._active[index] = window
            window.messages.extend(messages[lo:hi])
        self._last_timestamp = last
        self.messages_seen += len(messages)
        # Sealing after the appends matches the per-message order: a message
        # at/after a window's end can never be a member of it, so no batch
        # message reaches a window the per-message path would have sealed.
        return self._seal_through(last)

    def flush(self, duration: float) -> list[SlidingWindow]:
        """Close the stream at ``duration`` and return the remaining windows.

        Windows extending past ``duration`` are truncated to end there, and
        messages at or beyond the truncated end are dropped (the batch
        semantics of ``messages_between(start, min(start + l, duration))``).
        """
        require_positive(duration, "duration")
        remaining: list[SlidingWindow] = []
        index = self._next_seal
        while index * self.stride < duration:
            start = index * self.stride
            end = min(start + self.window_size, duration)
            window = self._active.pop(index, None)
            if window is None:
                if self.min_messages <= 0:
                    window = SlidingWindow(start=start, end=end)
                else:
                    index += 1
                    continue
            else:
                window.end = end
                window.messages = [m for m in window.messages if m.timestamp < end]
            if len(window.messages) >= self.min_messages:
                remaining.append(window)
                self.windows_sealed += 1
            index += 1
        self._next_seal = index
        self._active.clear()
        return remaining

    # -------------------------------------------------------------- internals
    def _seal_through(self, timestamp: float) -> list[SlidingWindow]:
        """Seal every window whose end lies at or before ``timestamp``."""
        sealed: list[SlidingWindow] = []
        while self._next_seal * self.stride + self.window_size <= timestamp:
            index = self._next_seal
            window = self._active.pop(index, None)
            if window is None and self.min_messages <= 0:
                start = index * self.stride
                window = SlidingWindow(start=start, end=start + self.window_size)
            if window is not None and len(window.messages) >= self.min_messages:
                sealed.append(window)
                self.windows_sealed += 1
            self._next_seal += 1
        return sealed

    def _index_at_or_before(self, timestamp: float) -> int:
        """Largest window index whose start could lie at or before ``timestamp``."""
        if timestamp < 0:
            return -1
        return int(math.floor(timestamp / self.stride))

    @property
    def active_window_count(self) -> int:
        """Number of windows currently able to receive messages."""
        return len(self._active)

    @property
    def frontier_start(self) -> float:
        """Start of the oldest window that can still receive messages.

        Everything before this point is sealed history; callers keyed on
        message lifetime (e.g. token caches) can drop state older than it.
        """
        return self._next_seal * self.stride


def resolve_overlapping_windows(candidates: list) -> list:
    """Greedy overlap resolution: densest window first, reject overlaps.

    Reproduces the paper's rule — "when two sliding windows have an overlap,
    we keep the one with more messages".  Works on anything exposing
    ``start``, ``end`` and ``message_count`` (both :class:`SlidingWindow` and
    the streaming engine's window summaries), so the batch and live paths
    share one resolution.  Returns the accepted windows sorted by start.

    Accepted windows are mutually disjoint, so a candidate can only collide
    with its immediate neighbours in start order — the check is two bisected
    comparisons instead of a scan over everything accepted, which keeps the
    streaming engine's periodic re-resolution cheap on long channels.
    """
    from bisect import bisect_left

    ranked = sorted(candidates, key=lambda w: (-w.message_count, w.start))
    accepted: list = []
    accepted_starts: list[float] = []
    for window in ranked:
        index = bisect_left(accepted_starts, window.start)
        if index > 0 and accepted[index - 1].end > window.start:
            continue
        if index < len(accepted) and accepted[index].start < window.end:
            continue
        accepted_starts.insert(index, window.start)
        accepted.insert(index, window)
    return accepted


def build_sliding_windows(
    chat_log: VideoChatLog,
    window_size: float,
    stride: float | None = None,
    resolve_overlaps: bool = True,
    min_messages: int = 1,
) -> list[SlidingWindow]:
    """Generate candidate sliding windows over ``chat_log``.

    This is a replay of the streaming construction: the recorded messages are
    fed through a :class:`StreamingWindowBuilder` in timestamp order and the
    stream is flushed at the video duration, which guarantees the batch and
    live engines agree window-for-window.

    Parameters
    ----------
    chat_log:
        The video's chat messages (sorted by timestamp).
    window_size:
        Window length ``l`` in seconds (paper default 25 s).
    stride:
        Step between window starts; defaults to ``window_size`` (non-
        overlapping windows, as used in the paper's Fig. 2b analysis).  A
        smaller stride produces overlapping candidates which are resolved by
        keeping the denser window, matching Algorithm 1.
    resolve_overlaps:
        When True (default), overlapping candidates are resolved greedily by
        message count so the returned windows are mutually disjoint.
    min_messages:
        Windows with fewer messages than this are dropped (empty windows
        cannot be talking about a highlight).

    Returns
    -------
    list[SlidingWindow]
        Windows sorted by start time.
    """
    require_positive(window_size, "window_size")
    if stride is None:
        stride = window_size
    require_positive(stride, "stride")

    builder = StreamingWindowBuilder(
        window_size=window_size, stride=stride, min_messages=min_messages
    )
    candidates: list[SlidingWindow] = []
    for message in chat_log.messages:
        candidates.extend(builder.add(message))
    candidates.extend(builder.flush(chat_log.video.duration))

    if not resolve_overlaps or stride >= window_size:
        return candidates
    return resolve_overlapping_windows(candidates)


def window_for_timestamp(
    windows: list[SlidingWindow], timestamp: float
) -> SlidingWindow | None:
    """Return the window containing ``timestamp``, or None."""
    for window in windows:
        if window.contains(timestamp):
            return window
    return None
