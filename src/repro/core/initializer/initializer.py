"""Highlight Initializer: Algorithm 1 of the paper.

Combines the prediction stage (:class:`WindowPredictor`) and the adjustment
stage (:class:`PeakAdjuster`) into the component that, given a recorded
video's chat log and a desired ``k``, returns ``k`` red dots — approximate
highlight start positions rendered on the progress bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import LightorConfig
from repro.core.initializer.adjustment import PeakAdjuster
from repro.core.initializer.predictor import FeatureSet, WindowPredictor
from repro.core.initializer.windows import SlidingWindow
from repro.core.types import Highlight, RedDot, VideoChatLog
from repro.utils.validation import ValidationError

__all__ = ["InitializerModel", "HighlightInitializer"]


@dataclass
class InitializerModel:
    """The trained state of a Highlight Initializer.

    Wraps the fitted window predictor (logistic regression over the general
    features) and the fitted peak adjuster (the reaction-delay constant ``c``)
    so a trained Initializer can be handed around, persisted or inspected.
    """

    predictor: WindowPredictor
    adjuster: PeakAdjuster

    @property
    def adjustment_constant(self) -> float:
        """The learned chat reaction delay ``c`` in seconds."""
        return self.adjuster.constant

    @property
    def feature_weights(self) -> dict[str, float]:
        """Learned logistic-regression weight per feature name."""
        names = self.predictor.feature_set.value
        weights = self.predictor.model.weights_
        if weights is None:
            raise ValidationError("the predictor has not been fitted")
        return {name: float(weight) for name, weight in zip(names, weights)}


@dataclass
class HighlightInitializer:
    """Algorithm 1: chat messages → top-k red dots.

    Typical usage::

        initializer = HighlightInitializer(config)
        initializer.fit(labelled_videos)           # 1 labelled video suffices
        red_dots = initializer.propose(chat_log, k=5)

    Parameters
    ----------
    config:
        Workflow configuration (window size, δ spacing, tolerances).
    feature_set:
        Which general features the prediction stage uses; ``FeatureSet.ALL``
        reproduces the full system, the smaller sets reproduce the Fig. 6a
        ablation.
    """

    config: LightorConfig = field(default_factory=LightorConfig)
    feature_set: FeatureSet = FeatureSet.ALL
    model: InitializerModel | None = None

    # ---------------------------------------------------------------- train
    def fit(
        self, training_logs: list[tuple[VideoChatLog, list[Highlight]]]
    ) -> "HighlightInitializer":
        """Train both stages on labelled videos.

        Parameters
        ----------
        training_logs:
            Pairs of (chat log, ground-truth highlights).  The paper's key
            result is that a single labelled video is enough (Fig. 6b/7b).
        """
        predictor = WindowPredictor(config=self.config, feature_set=self.feature_set)
        predictor.fit(training_logs)
        adjuster = PeakAdjuster(config=self.config)
        adjuster.fit(training_logs, predictor=predictor)
        self.model = InitializerModel(predictor=predictor, adjuster=adjuster)
        return self

    # -------------------------------------------------------------- propose
    def propose(self, chat_log: VideoChatLog, k: int | None = None) -> list[RedDot]:
        """Return the top-k red dots for a video (Algorithm 1).

        Steps: score all sliding windows, keep the top-k subject to the δ
        spacing constraint, then move each window's chat peak backwards by
        the learned constant ``c``.
        """
        model = self._require_model()
        if k is None:
            k = self.config.top_k
        windows = model.predictor.top_k_windows(chat_log, k=k)
        dots = [
            model.adjuster.red_dot_for_window(window, video_id=chat_log.video.video_id)
            for window in windows
        ]
        return sorted(dots, key=lambda dot: dot.position)

    def top_windows(self, chat_log: VideoChatLog, k: int | None = None) -> list[SlidingWindow]:
        """Return the top-k *windows* (before adjustment).

        Exposed because the Chat Precision@K metric evaluates the prediction
        stage on windows, not on adjusted positions.
        """
        model = self._require_model()
        if k is None:
            k = self.config.top_k
        return model.predictor.top_k_windows(chat_log, k=k)

    def is_applicable(self, chat_log: VideoChatLog) -> bool:
        """Whether the video meets the chat-rate applicability threshold.

        The paper's Section VII-D finds the Initializer needs at least
        ``min_messages_per_hour`` (default 500) chat messages per hour.
        """
        return chat_log.messages_per_hour >= self.config.min_messages_per_hour

    # -------------------------------------------------------------- helpers
    def _require_model(self) -> InitializerModel:
        if self.model is None:
            raise ValidationError("initializer is not fitted; call fit() first")
        return self.model
