"""General chat features of the Highlight Initializer (Section IV-C).

For every sliding window the Initializer computes three *general* features —
features that do not depend on the game being streamed:

* **message number** — how many messages fall in the window; reaction bursts
  follow highlights.
* **message length** — the average number of words per message; reaction
  messages are short ("Kill!", emotes), off-topic chatter is longer.
* **message similarity** — the average cosine similarity of each message's
  binary bag-of-words vector to the window's one-cluster k-means centre;
  reactions repeat the same few tokens, random chatter does not.

Features are normalised to ``[0, 1]`` per video so the learned logistic
regression transfers across videos and games.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.initializer.windows import SlidingWindow
from repro.ml.kmeans import average_similarity_to_center
from repro.ml.scaler import MinMaxScaler
from repro.ml.text import BagOfWordsVectorizer, tokenize
from repro.utils.validation import ValidationError

__all__ = [
    "WindowFeatures",
    "RunningWindowFeatures",
    "WindowFeatureExtractor",
    "FEATURE_NAMES",
]

FEATURE_NAMES = ("message_number", "message_length", "message_similarity")


@dataclass(frozen=True)
class WindowFeatures:
    """Raw (unnormalised) feature values for one sliding window."""

    message_number: float
    message_length: float
    message_similarity: float

    def as_array(self) -> np.ndarray:
        """Return the features as a ``(3,)`` numpy vector."""
        return np.array(
            [self.message_number, self.message_length, self.message_similarity],
            dtype=float,
        )


@dataclass
class RunningWindowFeatures:
    """Per-message accumulator of one window's raw general features.

    The streaming engine feeds each arriving :class:`ChatMessage` into the
    accumulators of the windows containing it; :meth:`raw` then produces the
    exact :class:`WindowFeatures` the batch extractor would compute for the
    same member messages.  The batch path
    (:meth:`WindowFeatureExtractor.raw_features`) is itself implemented as a
    replay through this class, so the two can never disagree.

    State kept per window: the message count, the per-message token counts
    (for the length feature) and the token lists of non-blank messages (for
    the similarity feature, whose leave-one-out cosine needs the full
    bag-of-words of the window and is therefore computed once, when the
    window is sealed).
    """

    message_count: int = 0
    _token_counts: list[int] = field(default_factory=list, repr=False)
    _token_lists: list[list[str]] = field(default_factory=list, repr=False)

    def add(self, text: str, tokens: list[str] | None = None) -> None:
        """Fold one message into the window state.

        ``tokens`` lets the caller tokenize a message once and share the
        result across every window containing it (a message belongs to
        ``ceil(window_size / stride)`` overlapping windows).
        """
        if tokens is None:
            tokens = tokenize(text)
        self.message_count += 1
        self._token_counts.append(len(tokens))
        if text.strip():
            self._token_lists.append(tokens)

    def raw(self) -> WindowFeatures:
        """The raw feature triple for the messages folded in so far."""
        return WindowFeatures(
            message_number=float(self.message_count),
            message_length=self._average_length(),
            message_similarity=self._similarity(),
        )

    def _average_length(self) -> float:
        if not self._token_counts:
            return 0.0
        return float(np.mean(self._token_counts))

    def _similarity(self) -> float:
        if len(self._token_lists) < 2:
            return 0.0
        vectors = BagOfWordsVectorizer(binary=True).fit_transform_tokens(
            self._token_lists
        )
        if vectors.shape[1] == 0:
            return 0.0
        return average_similarity_to_center(vectors, exclude_self=True)


class WindowFeatureExtractor:
    """Computes and normalises the three general features for windows.

    The extractor is stateless with respect to training data: normalisation
    is per-video (fit on the video's own windows), exactly because the
    feature *ranges* differ wildly across videos (a tournament stream has 10×
    the chat rate of a personal stream) while their *relative* shape within a
    video is what signals highlights.
    """

    def __init__(self, invert_length: bool = True) -> None:
        # The raw "average words per message" is inversely related to
        # highlight likelihood (short messages ⇒ reactions).  The paper plots
        # the raw value (Fig. 2b) and lets logistic regression learn the
        # negative weight; we keep the raw orientation by default and expose
        # ``invert_length`` for ablations.
        self.invert_length = invert_length

    # ----------------------------------------------------------- raw values
    def raw_features(self, window: SlidingWindow) -> WindowFeatures:
        """Compute unnormalised features for one window.

        Implemented as a replay of the streaming accumulator so the batch
        and live engines compute bit-identical features for identical window
        membership.
        """
        running = RunningWindowFeatures()
        for message in window.messages:
            running.add(message.text)
        return running.raw()

    # --------------------------------------------------------- feature matrix
    def normalise(self, raw: np.ndarray) -> np.ndarray:
        """Scale a raw ``(n, 3)`` feature matrix to ``[0, 1]`` per column.

        The message-length column is flipped (``1 - scaled``) when
        ``invert_length`` is set so that larger always means "more
        highlight-like" for every feature.  Both the batch path
        (:meth:`feature_matrix`) and the streaming engine's summary scorer
        normalise through this one method, so they cannot drift apart.
        """
        scaled = MinMaxScaler().fit_transform(raw)
        if self.invert_length:
            scaled[:, 1] = 1.0 - scaled[:, 1]
        return scaled

    def feature_matrix(
        self, windows: list[SlidingWindow], normalise: bool = True
    ) -> np.ndarray:
        """Return an ``(n_windows, 3)`` feature matrix for ``windows``.

        With ``normalise=True`` (default) the matrix is scaled through
        :meth:`normalise`.
        """
        if not windows:
            raise ValidationError("feature_matrix requires at least one window")
        raw = np.vstack([self.raw_features(window).as_array() for window in windows])
        if not normalise:
            return raw
        return self.normalise(raw)

    def label_windows(
        self,
        windows: list[SlidingWindow],
        highlights: list,
        reaction_delay: float = 30.0,
    ) -> np.ndarray:
        """Return binary labels: is each window *talking about* a highlight?

        Because chat reacts *after* the highlight, a window is labelled
        positive when it overlaps the interval
        ``[highlight.start, highlight.end + reaction_delay]`` — i.e. the
        discussion period of some ground-truth highlight.  This mirrors how
        the paper labels its 109 windows into 13 highlight / 96 non-highlight
        windows (Fig. 2b).
        """
        labels = np.zeros(len(windows), dtype=int)
        for index, window in enumerate(windows):
            for highlight in highlights:
                discussion_start = highlight.start
                discussion_end = highlight.end + reaction_delay
                if window.start < discussion_end and discussion_start < window.end:
                    labels[index] = 1
                    break
        return labels
