"""LIGHTOR core: the paper's primary contribution.

The core package contains the two components of the LIGHTOR workflow —
the chat-driven :mod:`Highlight Initializer <repro.core.initializer>`
(Section IV of the paper) and the interaction-driven
:mod:`Highlight Extractor <repro.core.extractor>` (Section V) — plus the
shared data types, configuration and the end-to-end
:class:`~repro.core.pipeline.LightorPipeline`.
"""

from repro.core.types import (
    ChatMessage,
    Highlight,
    Interaction,
    InteractionKind,
    PlayRecord,
    RedDot,
    RedDotType,
    Video,
    VideoChatLog,
)
from repro.core.config import LightorConfig
from repro.core.initializer import HighlightInitializer, InitializerModel
from repro.core.extractor import HighlightExtractor
from repro.core.pipeline import LightorPipeline, PipelineResult

__all__ = [
    "ChatMessage",
    "Highlight",
    "Interaction",
    "InteractionKind",
    "PlayRecord",
    "RedDot",
    "RedDotType",
    "Video",
    "VideoChatLog",
    "LightorConfig",
    "HighlightInitializer",
    "InitializerModel",
    "HighlightExtractor",
    "LightorPipeline",
    "PipelineResult",
]
