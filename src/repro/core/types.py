"""Shared value objects of the LIGHTOR workflow.

All timestamps are seconds from the start of the recorded video (floats).
The types mirror the vocabulary of the paper:

* :class:`ChatMessage` — a time-stamped live-chat message.
* :class:`Highlight` — a ground-truth or extracted highlight interval.
* :class:`RedDot` — an approximate highlight start position placed on the
  progress bar by the Highlight Initializer.
* :class:`Interaction` / :class:`PlayRecord` — raw viewer interactions and the
  derived ``play(s, e)`` records used by the Highlight Extractor.
* :class:`Video` / :class:`VideoChatLog` — a recorded live video and its chat.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.utils.validation import ValidationError, require_non_negative

__all__ = [
    "ChatMessage",
    "Highlight",
    "RedDot",
    "RedDotType",
    "InteractionKind",
    "Interaction",
    "PlayRecord",
    "Video",
    "VideoChatLog",
]


@dataclass(frozen=True, order=True)
class ChatMessage:
    """A single time-stamped chat message.

    Attributes
    ----------
    timestamp:
        Seconds from the start of the video at which the message was posted.
    user:
        Poster's user name (synthetic in the simulated datasets).
    text:
        Raw message text.
    """

    timestamp: float
    user: str = field(compare=False, default="anonymous")
    text: str = field(compare=False, default="")

    def __post_init__(self) -> None:
        require_non_negative(self.timestamp, "timestamp")

    @property
    def word_count(self) -> int:
        """Number of whitespace-separated words in the message."""
        return len(self.text.split())


@dataclass(frozen=True)
class Highlight:
    """A highlight interval ``[start, end]`` in seconds.

    Used both for ground-truth labels and for extracted results.
    """

    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        require_non_negative(self.start, "start")
        if self.end < self.start:
            raise ValidationError(
                f"highlight end ({self.end}) must not precede start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Length of the highlight in seconds."""
        return self.end - self.start

    @property
    def midpoint(self) -> float:
        """Centre of the highlight in seconds."""
        return (self.start + self.end) / 2.0

    def contains(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls inside ``[start, end]``."""
        return self.start <= timestamp <= self.end

    def overlaps(self, other: "Highlight") -> bool:
        """Whether this interval overlaps ``other`` (closed intervals)."""
        return self.start <= other.end and other.start <= self.end

    def shifted(self, offset: float) -> "Highlight":
        """Return a copy shifted by ``offset`` seconds (clamped at 0)."""
        new_start = max(0.0, self.start + offset)
        new_end = max(new_start, self.end + offset)
        return replace(self, start=new_start, end=new_end)


class RedDotType(enum.Enum):
    """Relative position of a red dot and the end of its highlight.

    ``TYPE_I`` — the red dot lies *after* the end of the highlight, so viewers
    starting at the dot miss the highlight and hunt for it (noisy plays).
    ``TYPE_II`` — the red dot lies *before* the end of the highlight, so
    viewers starting at the dot see the highlight (consistent plays).
    ``UNKNOWN`` — not yet classified.
    """

    TYPE_I = "type_i"
    TYPE_II = "type_ii"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class RedDot:
    """An approximate highlight start position on the progress bar.

    Attributes
    ----------
    position:
        Seconds from the start of the video where the dot is rendered.
    score:
        The Initializer's confidence that a highlight is nearby (higher is
        more confident); used to rank dots when selecting the top-k.
    window:
        The ``(start, end)`` of the chat sliding window the dot came from.
    video_id:
        Identifier of the video the dot belongs to.
    """

    position: float
    score: float = 0.0
    window: tuple[float, float] | None = None
    video_id: str = ""

    def __post_init__(self) -> None:
        require_non_negative(self.position, "position")

    def moved_to(self, new_position: float) -> "RedDot":
        """Return a copy of the dot at ``new_position`` (clamped at 0)."""
        return replace(self, position=max(0.0, new_position))


class InteractionKind(enum.Enum):
    """Kinds of raw viewer interactions logged by the platform front end."""

    PLAY = "play"
    PAUSE = "pause"
    SEEK_FORWARD = "seek_forward"
    SEEK_BACKWARD = "seek_backward"
    STOP = "stop"


@dataclass(frozen=True, order=True)
class Interaction:
    """A raw, time-ordered viewer interaction event.

    ``timestamp`` is the *video* position at which the interaction happened.
    For seeks, ``target`` is the video position the viewer jumped to.
    """

    timestamp: float
    kind: InteractionKind = field(compare=False)
    user: str = field(compare=False, default="anonymous")
    target: float | None = field(compare=False, default=None)

    def __post_init__(self) -> None:
        require_non_negative(self.timestamp, "timestamp")
        if self.kind in (InteractionKind.SEEK_FORWARD, InteractionKind.SEEK_BACKWARD):
            if self.target is None:
                raise ValidationError(f"{self.kind.value} interactions require a target")
            require_non_negative(self.target, "target")


@dataclass(frozen=True)
class PlayRecord:
    """A continuous viewing interval ``play(start, end)`` by one user.

    This is the unit of implicit feedback consumed by the Highlight
    Extractor: ``<user, play(s, e)>`` means the user played the video from
    ``s`` to ``e`` without seeking away.
    """

    user: str
    start: float
    end: float

    def __post_init__(self) -> None:
        require_non_negative(self.start, "start")
        if self.end < self.start:
            raise ValidationError(
                f"play end ({self.end}) must not precede start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Length of the play in seconds."""
        return self.end - self.start

    def overlaps(self, other: "PlayRecord") -> bool:
        """Whether two plays share at least one instant (closed intervals)."""
        return self.start <= other.end and other.start <= self.end

    def covers(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls inside the play interval."""
        return self.start <= timestamp <= self.end


@dataclass(frozen=True)
class Video:
    """Metadata of a recorded live video.

    ``highlights`` holds the ground-truth annotation when available (labelled
    training/test videos); it is empty for unlabelled videos.
    """

    video_id: str
    duration: float
    game: str = "dota2"
    channel: str = ""
    viewer_count: int = 0
    highlights: tuple[Highlight, ...] = ()

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValidationError(f"video duration must be positive, got {self.duration!r}")
        for highlight in self.highlights:
            if highlight.end > self.duration:
                raise ValidationError(
                    f"highlight {highlight} extends past the video duration {self.duration}"
                )

    @property
    def n_highlights(self) -> int:
        """Number of ground-truth highlights."""
        return len(self.highlights)

    def with_highlights(self, highlights: Sequence[Highlight]) -> "Video":
        """Return a copy carrying ``highlights`` as ground truth."""
        return replace(self, highlights=tuple(highlights))


@dataclass
class VideoChatLog:
    """A video together with its time-stamped chat messages.

    The messages are stored sorted by timestamp; the constructor sorts them if
    needed so downstream windowing can rely on order.
    """

    video: Video
    messages: list[ChatMessage] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.messages = sorted(self.messages, key=lambda message: message.timestamp)
        for message in self.messages:
            if message.timestamp > self.video.duration:
                raise ValidationError(
                    f"chat message at {message.timestamp}s is outside the video "
                    f"duration {self.video.duration}s"
                )

    def __iter__(self) -> Iterator[ChatMessage]:
        return iter(self.messages)

    def __len__(self) -> int:
        return len(self.messages)

    @property
    def messages_per_hour(self) -> float:
        """Average chat rate of the video, in messages per hour."""
        hours = self.video.duration / 3600.0
        return len(self.messages) / hours if hours > 0 else 0.0

    def messages_between(self, start: float, end: float) -> list[ChatMessage]:
        """Return messages with ``start <= timestamp < end``."""
        return [m for m in self.messages if start <= m.timestamp < end]

    def timestamps(self) -> list[float]:
        """Return the list of message timestamps (sorted)."""
        return [message.timestamp for message in self.messages]

    @classmethod
    def from_pairs(
        cls, video: Video, pairs: Iterable[tuple[float, str]]
    ) -> "VideoChatLog":
        """Build a log from ``(timestamp, text)`` pairs with anonymous users."""
        messages = [ChatMessage(timestamp=t, text=text) for t, text in pairs]
        return cls(video=video, messages=messages)
