"""End-to-end LIGHTOR pipeline.

Glues the Highlight Initializer and the Highlight Extractor into the workflow
of Figure 1: chat messages of a recorded live video → top-k red dots →
crowd-refined highlight boundaries.  The pipeline also records its training
time, which Table I compares against the deep-learning baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import LightorConfig
from repro.core.extractor.extractor import ExtractionResult, HighlightExtractor, InteractionSource
from repro.core.initializer.initializer import HighlightInitializer
from repro.core.initializer.predictor import FeatureSet
from repro.core.types import Highlight, RedDot, VideoChatLog
from repro.utils.validation import ValidationError

__all__ = ["PipelineResult", "LightorPipeline"]


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one video."""

    video_id: str
    red_dots: list[RedDot]
    extractions: list[ExtractionResult]

    @property
    def highlights(self) -> list[Highlight]:
        """The extracted highlight boundaries (skipping unrefined dots)."""
        return [e.highlight for e in self.extractions if e.highlight is not None]

    @property
    def start_positions(self) -> list[float]:
        """Refined start positions; falls back to the dot position when the
        extractor could not refine a boundary."""
        positions: list[float] = []
        for extraction in self.extractions:
            if extraction.highlight is not None:
                positions.append(extraction.highlight.start)
            else:
                positions.append(extraction.dot.position)
        return positions

    @property
    def end_positions(self) -> list[float]:
        """Refined end positions, aligned index-wise with ``start_positions``.

        Falls back to the dot position when the extractor could not refine a
        boundary, mirroring :attr:`start_positions`, so consumers can safely
        ``zip(start_positions, end_positions)`` — the k-th entry of both
        lists always describes the k-th red dot.
        """
        positions: list[float] = []
        for extraction in self.extractions:
            if extraction.highlight is not None:
                positions.append(extraction.highlight.end)
            else:
                positions.append(extraction.dot.position)
        return positions


@dataclass
class LightorPipeline:
    """Train-once, run-per-video LIGHTOR workflow.

    Typical usage::

        pipeline = LightorPipeline(config)
        pipeline.fit(labelled_videos)                        # Initializer training
        result = pipeline.run(chat_log, crowd.interaction_source(chat_log.video), k=5)

    ``fit`` only trains the Initializer; the Extractor is parameter-free
    (rule-based classifier) unless a learned Type-I/II classifier is injected.
    """

    config: LightorConfig = field(default_factory=LightorConfig)
    feature_set: FeatureSet = FeatureSet.ALL
    initializer: HighlightInitializer | None = None
    extractor: HighlightExtractor | None = None
    training_seconds_: float = 0.0

    def __post_init__(self) -> None:
        if self.initializer is None:
            self.initializer = HighlightInitializer(
                config=self.config, feature_set=self.feature_set
            )
        if self.extractor is None:
            self.extractor = HighlightExtractor(config=self.config)

    # ---------------------------------------------------------------- train
    def fit(
        self, training_logs: list[tuple[VideoChatLog, list[Highlight]]]
    ) -> "LightorPipeline":
        """Train the Initializer on labelled videos and record the wall time."""
        start = time.perf_counter()
        self.initializer.fit(training_logs)
        self.training_seconds_ = time.perf_counter() - start
        return self

    # ------------------------------------------------------------------ run
    def propose(self, chat_log: VideoChatLog, k: int | None = None) -> list[RedDot]:
        """Run only the Initializer (chat → red dots)."""
        self._check_fitted()
        return self.initializer.propose(chat_log, k=k)

    def run(
        self,
        chat_log: VideoChatLog,
        interaction_source: InteractionSource,
        k: int | None = None,
    ) -> PipelineResult:
        """Run the full workflow on one video.

        Parameters
        ----------
        chat_log:
            The recorded video's chat messages.
        interaction_source:
            Where the Extractor gets viewer interactions from — the platform
            log, the crowd simulator, or a fixture.
        k:
            Number of highlights to extract (defaults to ``config.top_k``).
        """
        dots = self.propose(chat_log, k=k)
        extractions = self.extractor.extract_all(
            dots, interaction_source, video_duration=chat_log.video.duration
        )
        return PipelineResult(
            video_id=chat_log.video.video_id,
            red_dots=dots,
            extractions=extractions,
        )

    def run_many(
        self,
        chat_logs: Sequence[VideoChatLog],
        interaction_source_factory,
        k: int | None = None,
    ) -> list[PipelineResult]:
        """Run the workflow on several videos.

        ``interaction_source_factory`` is called with each video and must
        return the interaction source for that video.
        """
        results = []
        for chat_log in chat_logs:
            source = interaction_source_factory(chat_log.video)
            results.append(self.run(chat_log, source, k=k))
        return results

    # -------------------------------------------------------------- helpers
    def _check_fitted(self) -> None:
        if self.initializer is None or self.initializer.model is None:
            raise ValidationError("pipeline is not fitted; call fit() first")
        if self.extractor is None:
            raise ValidationError(
                "pipeline has no extractor configured; assign a HighlightExtractor "
                "before running"
            )
