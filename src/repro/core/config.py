"""Configuration of the LIGHTOR workflow.

All tunables named in the paper live here with the paper's default values:

* sliding-window size ``l`` = 25 s (Section VII-A),
* minimum red-dot spacing ``δ`` = 120 s (Section IV-A),
* play-selection radius ``Δ`` = 60 s around a red dot (Section V-A),
* tolerated start delay = 10 s (good-red-dot definition, Section IV-A),
* Type-I backward move ``m`` = 20 s (Section V-C),
* convergence tolerance ``ε`` for the extractor iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["LightorConfig"]


@dataclass(frozen=True)
class LightorConfig:
    """Immutable configuration shared by the Initializer and the Extractor.

    Attributes
    ----------
    window_size:
        Sliding-window length ``l`` in seconds used to group chat messages.
    window_stride:
        Step between consecutive candidate windows; the paper's Algorithm 1
        resolves overlapping windows by keeping the denser one, which we
        reproduce, so a stride of half a window gives the same behaviour.
    top_k:
        Default number of highlights requested from the Initializer.
    min_dot_spacing:
        Minimum distance ``δ`` between two returned red dots in seconds.
    start_tolerance:
        Maximum acceptable gap between a red dot and the true highlight start
        (the "10-second patience" bound from the good-red-dot definition).
    end_tolerance:
        Symmetric tolerance used when scoring extracted end positions.
    play_radius:
        Radius ``Δ`` around a red dot within which plays are attributed to it.
    min_play_duration / max_play_duration:
        Filtering bounds on play length (too-short probes and whole-video
        sessions carry no boundary information).
    type1_backward_move:
        Seconds ``m`` by which a Type-I red dot is moved backwards before a
        new crowd round is collected.
    convergence_epsilon:
        The extractor iterates until the dot moves less than this.
    max_extractor_iterations:
        Safety cap on the number of crowd rounds.
    min_messages_per_hour:
        Applicability threshold: below this chat rate the Initializer is not
        expected to perform well (Section VII-D).
    min_viewers:
        Applicability threshold on the number of distinct viewers required by
        the Extractor.
    """

    window_size: float = 25.0
    window_stride: float = 12.5
    top_k: int = 10
    min_dot_spacing: float = 120.0
    start_tolerance: float = 10.0
    end_tolerance: float = 10.0
    play_radius: float = 60.0
    min_play_duration: float = 6.0
    max_play_duration: float = 300.0
    type1_backward_move: float = 20.0
    convergence_epsilon: float = 3.0
    max_extractor_iterations: int = 8
    min_messages_per_hour: float = 500.0
    min_viewers: int = 100

    def __post_init__(self) -> None:
        require_positive(self.window_size, "window_size")
        require_positive(self.window_stride, "window_stride")
        require_positive(self.top_k, "top_k")
        require_non_negative(self.min_dot_spacing, "min_dot_spacing")
        require_non_negative(self.start_tolerance, "start_tolerance")
        require_non_negative(self.end_tolerance, "end_tolerance")
        require_positive(self.play_radius, "play_radius")
        require_non_negative(self.min_play_duration, "min_play_duration")
        require_positive(self.max_play_duration, "max_play_duration")
        if self.max_play_duration <= self.min_play_duration:
            raise ValueError("max_play_duration must exceed min_play_duration")
        require_positive(self.type1_backward_move, "type1_backward_move")
        require_non_negative(self.convergence_epsilon, "convergence_epsilon")
        require_positive(self.max_extractor_iterations, "max_extractor_iterations")
        require_non_negative(self.min_messages_per_hour, "min_messages_per_hour")
        require_non_negative(self.min_viewers, "min_viewers")

    def with_overrides(self, **overrides: Any) -> "LightorConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def paper_defaults(cls) -> "LightorConfig":
        """The configuration used throughout the paper's evaluation."""
        return cls()
