"""One-cluster k-means used by the message-similarity feature.

The paper represents each chat message in a sliding window as a binary
bag-of-words vector, runs one-cluster k-means to find the centre of the
window's messages, and defines *message similarity* as the average cosine
similarity of each message to that centre.  With a single cluster, k-means
reduces to computing the mean vector, but we keep the iterative formulation
(mean → assignment → mean) so the module generalises to ``k > 1`` and matches
the description in Section IV-B of the paper.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ml.text import cosine_similarity
from repro.utils.validation import ValidationError, require_positive

__all__ = ["one_cluster_center", "average_similarity_to_center", "kmeans"]


def one_cluster_center(vectors: np.ndarray) -> np.ndarray:
    """Return the centroid of ``vectors`` (the k=1 k-means solution).

    Parameters
    ----------
    vectors:
        Array of shape ``(n_messages, n_terms)``.
    """
    data = np.asarray(vectors, dtype=float)
    if data.ndim != 2:
        raise ValidationError("vectors must be a 2-D array")
    if data.shape[0] == 0:
        raise ValidationError("cannot compute the centre of zero vectors")
    return data.mean(axis=0)


def average_similarity_to_center(vectors: np.ndarray, exclude_self: bool = True) -> float:
    """Return the mean cosine similarity of each vector to the k=1 centroid.

    This is the *message similarity* feature of the Highlight Initializer:
    close to 1 when all messages in the window repeat the same few tokens
    (typical highlight reaction spam), lower when the window contains
    unrelated chatter.  Zero vectors (empty messages) contribute a similarity
    of 0.

    With ``exclude_self=True`` (default) each message is compared against the
    centre of the *other* messages in the window.  Including a message in its
    own centre makes any window of ``m`` mutually unrelated messages score
    about ``1/sqrt(m)`` — i.e. the feature degenerates into an inverse
    message count and stops measuring whether viewers are echoing each other.
    The leave-one-out form keeps the paper's intent ("are the messages about
    the same topic?") while removing that artefact; a window with a single
    message scores 0 because there is nothing to agree with.
    """
    data = np.asarray(vectors, dtype=float)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValidationError("vectors must be a non-empty 2-D array")
    n_messages = data.shape[0]
    if n_messages == 1:
        return 0.0 if exclude_self else 1.0
    if not exclude_self:
        center = one_cluster_center(data)
        return float(np.mean([cosine_similarity(row, center) for row in data]))
    total = data.sum(axis=0)
    similarities = []
    dot = np.dot
    # This loop runs once per message at every window seal on the streaming
    # hot path, so the cosine is inlined rather than calling
    # cosine_similarity per row.  Bit-exactness with the reference
    # formulation is preserved: np.linalg.norm on a 1-D vector is
    # sqrt(dot(x, x)), elementwise ops ((total - data) / (n-1)) are
    # independent of batching, and for binary vectors dot(row, row) is an
    # exact small integer under any summation order, so the row norms can
    # come from the (exact) row sums.
    if ((data == 0.0) | (data == 1.0)).all():
        centers = (total - data) / (n_messages - 1)
        row_norms = np.sqrt(data.sum(axis=1))
        for index in range(n_messages):
            norm_row = float(row_norms[index])
            center = centers[index]
            norm_center = math.sqrt(float(dot(center, center)))
            if norm_row == 0.0 or norm_center == 0.0:
                similarities.append(0.0)
            else:
                similarities.append(float(dot(data[index], center) / (norm_row * norm_center)))
        return float(np.mean(similarities))
    for row in data:
        others_center = (total - row) / (n_messages - 1)
        similarities.append(cosine_similarity(row, others_center))
    return float(np.mean(similarities))


def kmeans(
    vectors: np.ndarray,
    k: int,
    n_iterations: int = 50,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm; returns ``(centers, assignments)``.

    Only ``k == 1`` is used by the Highlight Initializer, but the general
    implementation is exercised by tests and available for extensions (e.g.
    clustering windows into topics).
    """
    data = np.asarray(vectors, dtype=float)
    if data.ndim != 2:
        raise ValidationError("vectors must be a 2-D array")
    require_positive(k, "k")
    if data.shape[0] < k:
        raise ValidationError(f"need at least k={k} vectors, got {data.shape[0]}")
    if k == 1:
        center = one_cluster_center(data)
        return center.reshape(1, -1), np.zeros(data.shape[0], dtype=int)

    rng = np.random.default_rng(seed)
    centers = data[rng.choice(data.shape[0], size=k, replace=False)].copy()
    assignments = np.zeros(data.shape[0], dtype=int)
    for _ in range(int(n_iterations)):
        distances = np.linalg.norm(data[:, None, :] - centers[None, :, :], axis=2)
        new_assignments = np.argmin(distances, axis=1)
        if np.array_equal(new_assignments, assignments) and _ > 0:
            break
        assignments = new_assignments
        for cluster in range(k):
            members = data[assignments == cluster]
            if members.shape[0] > 0:
                centers[cluster] = members.mean(axis=0)
    return centers, assignments
