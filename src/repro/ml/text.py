"""Chat-text processing: tokenisation, bag-of-words and cosine similarity.

Live-stream chat is short, emote-heavy and noisy.  The Highlight Initializer
only needs two lightweight representations:

* token counts per message (for the *message length* feature), and
* binary bag-of-words vectors (for the *message similarity* feature via
  one-cluster k-means).

Everything here is intentionally simple, deterministic and free of external
dependencies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import ValidationError

__all__ = [
    "tokenize",
    "vocabulary_from_messages",
    "BagOfWordsVectorizer",
    "cosine_similarity",
    "jaccard_similarity",
]

# Words are runs of letters/digits; emotes such as ``PogChamp`` or ``:D`` and
# punctuation-only tokens are preserved as-is because they carry most of the
# reaction signal in game chat.
_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9_]+|[^\sA-Za-z0-9_]+")


def tokenize(message: str) -> list[str]:
    """Split a chat message into lowercase tokens.

    >>> tokenize("KILL!! PogChamp PogChamp")
    ['kill', '!!', 'pogchamp', 'pogchamp']
    >>> tokenize("")
    []
    """
    if not isinstance(message, str):
        raise ValidationError(f"message must be a string, got {type(message).__name__}")
    return [token.lower() for token in _TOKEN_PATTERN.findall(message)]


def vocabulary_from_messages(messages: Iterable[str]) -> dict[str, int]:
    """Build a token → column-index vocabulary from ``messages``.

    Tokens are indexed in first-seen order so the mapping is deterministic
    for a fixed message order.
    """
    return vocabulary_from_token_lists(tokenize(message) for message in messages)


def vocabulary_from_token_lists(
    token_lists: Iterable[Sequence[str]],
) -> dict[str, int]:
    """Build a first-seen-order vocabulary from pre-tokenised messages.

    The streaming engine tokenizes each chat message once and shares the
    token list across the windows containing it; this entry point lets it
    build the same vocabulary :func:`vocabulary_from_messages` would,
    without re-tokenizing.
    """
    vocabulary: dict[str, int] = {}
    for tokens in token_lists:
        for token in tokens:
            if token not in vocabulary:
                vocabulary[token] = len(vocabulary)
    return vocabulary


@dataclass
class BagOfWordsVectorizer:
    """Binary bag-of-words vectoriser over a fixed vocabulary.

    The vocabulary can be supplied explicitly or learned with :meth:`fit`.
    Unknown tokens at transform time are ignored (standard out-of-vocabulary
    behaviour), which matters because test videos always contain emotes the
    training video never showed.
    """

    binary: bool = True
    vocabulary_: dict[str, int] = field(default_factory=dict)

    def fit(self, messages: Sequence[str]) -> "BagOfWordsVectorizer":
        """Learn the vocabulary from ``messages``."""
        self.vocabulary_ = vocabulary_from_messages(messages)
        return self

    def transform(self, messages: Sequence[str]) -> np.ndarray:
        """Vectorise ``messages`` into an ``(n_messages, n_terms)`` matrix.

        With an empty vocabulary the result has zero columns.
        """
        return self.transform_tokens([tokenize(message) for message in messages])

    def fit_transform(self, messages: Sequence[str]) -> np.ndarray:
        """Fit the vocabulary on ``messages`` and vectorise them."""
        return self.fit(messages).transform(messages)

    # ------------------------------------------------------ pre-tokenised path
    def fit_tokens(self, token_lists: Sequence[Sequence[str]]) -> "BagOfWordsVectorizer":
        """Learn the vocabulary from pre-tokenised messages."""
        self.vocabulary_ = vocabulary_from_token_lists(token_lists)
        return self

    def transform_tokens(self, token_lists: Sequence[Sequence[str]]) -> np.ndarray:
        """Vectorise pre-tokenised messages (same semantics as :meth:`transform`)."""
        n_terms = len(self.vocabulary_)
        matrix = np.zeros((len(token_lists), n_terms), dtype=float)
        if self.binary:
            # Hot path (window similarity feature): collect the (row, column)
            # hits and set them in one fancy-indexed assignment — setting a
            # cell to 1.0 is idempotent, so duplicate tokens need no care,
            # and per-cell ``ndarray.__setitem__`` dispatch is avoided.
            rows: list[int] = []
            columns: list[int] = []
            lookup = self.vocabulary_.get
            for row, tokens in enumerate(token_lists):
                for token in tokens:
                    column = lookup(token)
                    if column is not None:
                        rows.append(row)
                        columns.append(column)
            if rows:
                matrix[rows, columns] = 1.0
            return matrix
        for row, tokens in enumerate(token_lists):
            for token in tokens:
                column = self.vocabulary_.get(token)
                if column is not None:
                    matrix[row, column] += 1.0
        return matrix

    def fit_transform_tokens(self, token_lists: Sequence[Sequence[str]]) -> np.ndarray:
        """Fit on and vectorise pre-tokenised messages in one call."""
        return self.fit_tokens(token_lists).transform_tokens(token_lists)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two vectors; 0.0 if either is all-zero."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.size != b.size:
        raise ValidationError(f"vector sizes differ: {a.size} vs {b.size}")
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


def jaccard_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity between two token collections; 0.0 if both empty."""
    set_a = set(a)
    set_b = set(b)
    if not set_a and not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)
