"""Machine-learning substrate.

The paper trains its Highlight Initializer with scikit-learn logistic
regression and compares against PyTorch LSTM baselines.  Neither library is
available offline, so this package implements the required models on top of
numpy:

* :class:`~repro.ml.logistic.LogisticRegression` — binary logistic regression
  trained with full-batch gradient descent and L2 regularisation.
* :func:`~repro.ml.kmeans.one_cluster_center` — the single-centroid k-means
  used by the message-similarity feature.
* :class:`~repro.ml.scaler.MinMaxScaler` / :class:`~repro.ml.scaler.StandardScaler`
  — feature normalisation to keep the general features comparable across
  videos and games.
* :mod:`~repro.ml.text` — tokenisation, bag-of-words vectorisation and cosine
  similarity for chat messages.
* :class:`~repro.ml.lstm.CharLSTMClassifier` — a character-level LSTM
  classifier (forward pass + backpropagation through time) standing in for
  the paper's Chat-LSTM deep baseline.
* :mod:`~repro.ml.metrics_ml` — standard classification metrics.
"""

from repro.ml.logistic import LogisticRegression
from repro.ml.kmeans import one_cluster_center, average_similarity_to_center
from repro.ml.scaler import MinMaxScaler, StandardScaler
from repro.ml.text import (
    BagOfWordsVectorizer,
    cosine_similarity,
    tokenize,
    vocabulary_from_messages,
)
from repro.ml.lstm import CharLSTMClassifier
from repro.ml.metrics_ml import accuracy, precision_recall_f1, roc_auc

__all__ = [
    "LogisticRegression",
    "one_cluster_center",
    "average_similarity_to_center",
    "MinMaxScaler",
    "StandardScaler",
    "BagOfWordsVectorizer",
    "cosine_similarity",
    "tokenize",
    "vocabulary_from_messages",
    "CharLSTMClassifier",
    "accuracy",
    "precision_recall_f1",
    "roc_auc",
]
