"""Feature scaling.

The Highlight Initializer normalises its three general features to ``[0, 1]``
so the learned logistic-regression weights transfer across videos and games
(Section IV-C of the paper).  :class:`MinMaxScaler` implements that
normalisation; :class:`StandardScaler` (z-score) is provided for the deep
baselines' auxiliary features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["MinMaxScaler", "StandardScaler"]


@dataclass
class MinMaxScaler:
    """Scale each feature column to the ``[0, 1]`` range.

    Columns that are constant in the training data map to 0.0 so they carry
    no information instead of producing division-by-zero artefacts.
    Transforms of unseen data are clipped into ``[0, 1]`` — a window with more
    messages than anything seen in training should saturate the feature, not
    explode it.
    """

    clip: bool = True
    data_min_: np.ndarray | None = field(default=None, repr=False)
    data_max_: np.ndarray | None = field(default=None, repr=False)

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        """Learn per-column minima and maxima."""
        x = self._as_matrix(features)
        if x.shape[0] == 0:
            raise ValidationError("cannot fit a scaler on an empty matrix")
        self.data_min_ = x.min(axis=0)
        self.data_max_ = x.max(axis=0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Scale ``features`` using the fitted minima and maxima."""
        if self.data_min_ is None or self.data_max_ is None:
            raise ValidationError("scaler is not fitted; call fit() first")
        x = self._as_matrix(features)
        if x.shape[1] != self.data_min_.size:
            raise ValidationError(
                f"expected {self.data_min_.size} features, got {x.shape[1]}"
            )
        span = self.data_max_ - self.data_min_
        safe_span = np.where(span > 0, span, 1.0)
        scaled = (x - self.data_min_) / safe_span
        scaled = np.where(span > 0, scaled, 0.0)
        if self.clip:
            scaled = np.clip(scaled, 0.0, 1.0)
        return scaled

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(features).transform(features)

    @staticmethod
    def _as_matrix(features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        if x.ndim != 2:
            raise ValidationError("features must be 1-D or 2-D")
        return x


@dataclass
class StandardScaler:
    """Scale each feature column to zero mean and unit variance.

    Constant columns map to 0.0, mirroring :class:`MinMaxScaler` behaviour.
    """

    mean_: np.ndarray | None = field(default=None, repr=False)
    std_: np.ndarray | None = field(default=None, repr=False)

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        x = MinMaxScaler._as_matrix(features)
        if x.shape[0] == 0:
            raise ValidationError("cannot fit a scaler on an empty matrix")
        self.mean_ = x.mean(axis=0)
        self.std_ = x.std(axis=0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardise ``features`` using the fitted statistics."""
        if self.mean_ is None or self.std_ is None:
            raise ValidationError("scaler is not fitted; call fit() first")
        x = MinMaxScaler._as_matrix(features)
        if x.shape[1] != self.mean_.size:
            raise ValidationError(f"expected {self.mean_.size} features, got {x.shape[1]}")
        safe_std = np.where(self.std_ > 0, self.std_, 1.0)
        standardised = (x - self.mean_) / safe_std
        return np.where(self.std_ > 0, standardised, 0.0)

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(features).transform(features)
