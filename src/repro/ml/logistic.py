"""Binary logistic regression on numpy.

This is the model the Highlight Initializer uses to combine the three general
chat features (message number, message length, message similarity) into a
probability that a sliding window is talking about a highlight.  The paper
uses scikit-learn; we provide an equivalent full-batch gradient-descent
implementation with L2 regularisation, deterministic initialisation and the
familiar ``fit`` / ``predict_proba`` / ``predict`` API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ValidationError, require_positive

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass
class LogisticRegression:
    """Binary logistic regression trained by full-batch gradient descent.

    Parameters
    ----------
    learning_rate:
        Step size for gradient descent.
    n_iterations:
        Number of full-batch gradient steps.
    l2:
        L2 regularisation strength applied to the weights (not the bias).
    class_weight:
        ``None`` for unweighted training or ``"balanced"`` to reweight
        examples inversely to class frequency — useful because highlight
        windows are a small minority of all sliding windows.
    tol:
        Early-stopping tolerance on the change of the loss between epochs.
    """

    learning_rate: float = 0.5
    n_iterations: int = 2000
    l2: float = 1e-3
    class_weight: str | None = "balanced"
    tol: float = 1e-8

    weights_: np.ndarray | None = field(default=None, repr=False)
    bias_: float = field(default=0.0, repr=False)
    loss_history_: list[float] = field(default_factory=list, repr=False)
    n_features_: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        require_positive(self.learning_rate, "learning_rate")
        require_positive(self.n_iterations, "n_iterations")
        if self.l2 < 0:
            raise ValidationError(f"l2 must be non-negative, got {self.l2!r}")
        if self.class_weight not in (None, "balanced"):
            raise ValidationError("class_weight must be None or 'balanced'")

    # ------------------------------------------------------------------ fit
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit the model on a feature matrix and binary labels.

        Parameters
        ----------
        features:
            Array of shape ``(n_samples, n_features)``.
        labels:
            Array of shape ``(n_samples,)`` containing 0/1 labels.
        """
        x = np.asarray(features, dtype=float)
        y = np.asarray(labels, dtype=float).ravel()
        if x.ndim != 2:
            raise ValidationError("features must be a 2-D array")
        if x.shape[0] != y.shape[0]:
            raise ValidationError(
                f"features has {x.shape[0]} rows but labels has {y.shape[0]} entries"
            )
        if x.shape[0] == 0:
            raise ValidationError("cannot fit on an empty training set")
        if not np.isin(y, (0.0, 1.0)).all():
            raise ValidationError("labels must be binary (0 or 1)")

        n_samples, n_features = x.shape
        self.n_features_ = n_features
        self.weights_ = np.zeros(n_features, dtype=float)
        self.bias_ = 0.0
        self.loss_history_ = []

        sample_weights = self._sample_weights(y)
        previous_loss = np.inf
        for _ in range(int(self.n_iterations)):
            logits = x @ self.weights_ + self.bias_
            probabilities = _sigmoid(logits)
            error = (probabilities - y) * sample_weights
            grad_w = x.T @ error / n_samples + self.l2 * self.weights_
            grad_b = float(np.sum(error) / n_samples)
            self.weights_ -= self.learning_rate * grad_w
            self.bias_ -= self.learning_rate * grad_b

            loss = self._loss(probabilities, y, sample_weights)
            self.loss_history_.append(loss)
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        return self

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        """Per-example weights implementing the ``balanced`` scheme."""
        if self.class_weight is None:
            return np.ones_like(y)
        n = y.size
        n_positive = float(np.sum(y))
        n_negative = n - n_positive
        if n_positive == 0 or n_negative == 0:
            # Degenerate single-class training set: fall back to uniform
            # weights rather than dividing by zero.
            return np.ones_like(y)
        weight_positive = n / (2.0 * n_positive)
        weight_negative = n / (2.0 * n_negative)
        return np.where(y > 0.5, weight_positive, weight_negative)

    def _loss(self, probabilities: np.ndarray, y: np.ndarray, weights: np.ndarray) -> float:
        eps = 1e-12
        clipped = np.clip(probabilities, eps, 1.0 - eps)
        nll = -np.mean(weights * (y * np.log(clipped) + (1 - y) * np.log(1 - clipped)))
        penalty = 0.5 * self.l2 * float(np.dot(self.weights_, self.weights_))
        return float(nll + penalty)

    # -------------------------------------------------------------- predict
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Return the probability of the positive class for each row."""
        self._check_fitted()
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.n_features_:
            raise ValidationError(
                f"expected {self.n_features_} features, got {x.shape[1]}"
            )
        return _sigmoid(x @ self.weights_ + self.bias_)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Return hard 0/1 predictions using ``threshold``."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Return raw logits (useful for ranking windows)."""
        self._check_fitted()
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        return x @ self.weights_ + self.bias_

    def _check_fitted(self) -> None:
        if self.weights_ is None:
            raise ValidationError("model is not fitted; call fit() first")

    # ------------------------------------------------------------- exports
    def coefficients(self) -> dict[str, object]:
        """Return learned parameters as a plain dictionary (for persistence)."""
        self._check_fitted()
        return {"weights": self.weights_.tolist(), "bias": self.bias_}

    @classmethod
    def from_coefficients(cls, weights: list[float], bias: float) -> "LogisticRegression":
        """Rebuild a fitted model from exported coefficients."""
        model = cls()
        model.weights_ = np.asarray(weights, dtype=float)
        model.bias_ = float(bias)
        model.n_features_ = model.weights_.size
        return model
