"""Character-level LSTM classifier implemented on numpy.

Stand-in for the paper's deep-learning baselines (Chat-LSTM and the chat half
of Joint-LSTM, [Fu et al., EMNLP 2017]).  The original is a 3-layer
character-level LSTM-RNN trained in PyTorch on 4 V100 GPUs for days; offline
we implement a single-layer character LSTM with full forward/backward passes
(backpropagation through time) and Adam, which preserves the properties the
paper's comparison relies on:

* it consumes raw chat characters, so it implicitly memorises game-specific
  vocabulary and does not transfer across games;
* it needs many labelled videos before the character statistics stabilise;
* training cost grows with data size and is orders of magnitude larger than
  fitting LIGHTOR's three-feature logistic regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ValidationError, require_positive

__all__ = ["CharLSTMClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


@dataclass
class _LSTMParams:
    """Weight matrices for a single LSTM layer plus the output head."""

    w_gates: np.ndarray  # (4*hidden, hidden + input)
    b_gates: np.ndarray  # (4*hidden,)
    w_out: np.ndarray  # (hidden,)
    b_out: float

    @classmethod
    def initialise(cls, input_size: int, hidden_size: int, rng: np.random.Generator) -> "_LSTMParams":
        scale = 1.0 / np.sqrt(hidden_size + input_size)
        w_gates = rng.normal(0.0, scale, size=(4 * hidden_size, hidden_size + input_size))
        b_gates = np.zeros(4 * hidden_size)
        # Forget-gate bias initialised to 1.0 — standard trick to keep memory
        # flowing early in training.
        b_gates[hidden_size : 2 * hidden_size] = 1.0
        w_out = rng.normal(0.0, 1.0 / np.sqrt(hidden_size), size=hidden_size)
        return cls(w_gates=w_gates, b_gates=b_gates, w_out=w_out, b_out=0.0)

    def flat(self) -> list[np.ndarray]:
        return [self.w_gates, self.b_gates, self.w_out, np.array([self.b_out])]


@dataclass
class CharLSTMClassifier:
    """Binary sequence classifier over characters.

    Parameters
    ----------
    hidden_size:
        Width of the LSTM hidden state.
    max_sequence_length:
        Sequences longer than this are truncated from the front (the most
        recent characters are the most informative for reaction bursts).
    n_epochs:
        Number of passes over the training set.
    learning_rate:
        Adam learning rate.
    seed:
        Seed for weight initialisation and batch shuffling.
    """

    hidden_size: int = 32
    max_sequence_length: int = 160
    n_epochs: int = 8
    learning_rate: float = 5e-3
    seed: int = 0

    char_to_index_: dict[str, int] = field(default_factory=dict, repr=False)
    params_: _LSTMParams | None = field(default=None, repr=False)
    loss_history_: list[float] = field(default_factory=list, repr=False)
    training_seconds_: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        require_positive(self.hidden_size, "hidden_size")
        require_positive(self.max_sequence_length, "max_sequence_length")
        require_positive(self.n_epochs, "n_epochs")
        require_positive(self.learning_rate, "learning_rate")

    # ------------------------------------------------------------ encoding
    def _build_vocabulary(self, texts: list[str]) -> None:
        charset: dict[str, int] = {}
        for text in texts:
            for char in text:
                if char not in charset:
                    charset[char] = len(charset)
        # Reserve the last index for unknown characters at prediction time.
        charset["\x00"] = len(charset)
        self.char_to_index_ = charset

    def _encode(self, text: str) -> np.ndarray:
        """One-hot encode ``text`` as an ``(T, vocab)`` matrix."""
        vocab_size = len(self.char_to_index_)
        unknown = self.char_to_index_["\x00"]
        clipped = text[-self.max_sequence_length :] if text else "\x00"
        matrix = np.zeros((len(clipped), vocab_size), dtype=float)
        for position, char in enumerate(clipped):
            matrix[position, self.char_to_index_.get(char, unknown)] = 1.0
        return matrix

    # ------------------------------------------------------------- forward
    def _forward(self, inputs: np.ndarray) -> tuple[float, dict[str, np.ndarray]]:
        """Run the LSTM over one sequence; return (probability, cache)."""
        params = self.params_
        hidden = self.hidden_size
        steps = inputs.shape[0]
        h = np.zeros((steps + 1, hidden))
        c = np.zeros((steps + 1, hidden))
        gates = np.zeros((steps, 4 * hidden))
        for t in range(steps):
            combined = np.concatenate([h[t], inputs[t]])
            pre = params.w_gates @ combined + params.b_gates
            i_gate = _sigmoid(pre[:hidden])
            f_gate = _sigmoid(pre[hidden : 2 * hidden])
            o_gate = _sigmoid(pre[2 * hidden : 3 * hidden])
            g_gate = np.tanh(pre[3 * hidden :])
            c[t + 1] = f_gate * c[t] + i_gate * g_gate
            h[t + 1] = o_gate * np.tanh(c[t + 1])
            gates[t] = np.concatenate([i_gate, f_gate, o_gate, g_gate])
        logit = float(params.w_out @ h[steps] + params.b_out)
        probability = float(_sigmoid(np.array([logit]))[0])
        cache = {"inputs": inputs, "h": h, "c": c, "gates": gates}
        return probability, cache

    def _backward(self, probability: float, label: float, cache: dict[str, np.ndarray]) -> list[np.ndarray]:
        """Backpropagation through time for one sequence; returns gradients."""
        params = self.params_
        hidden = self.hidden_size
        inputs, h, c, gates = cache["inputs"], cache["h"], cache["c"], cache["gates"]
        steps = inputs.shape[0]

        grad_w_gates = np.zeros_like(params.w_gates)
        grad_b_gates = np.zeros_like(params.b_gates)
        d_logit = probability - label
        grad_w_out = d_logit * h[steps]
        grad_b_out = d_logit

        d_h_next = d_logit * params.w_out
        d_c_next = np.zeros(hidden)
        for t in reversed(range(steps)):
            i_gate = gates[t, :hidden]
            f_gate = gates[t, hidden : 2 * hidden]
            o_gate = gates[t, 2 * hidden : 3 * hidden]
            g_gate = gates[t, 3 * hidden :]
            tanh_c = np.tanh(c[t + 1])

            d_o = d_h_next * tanh_c
            d_c = d_h_next * o_gate * (1.0 - tanh_c**2) + d_c_next
            d_i = d_c * g_gate
            d_f = d_c * c[t]
            d_g = d_c * i_gate

            d_pre = np.concatenate(
                [
                    d_i * i_gate * (1.0 - i_gate),
                    d_f * f_gate * (1.0 - f_gate),
                    d_o * o_gate * (1.0 - o_gate),
                    d_g * (1.0 - g_gate**2),
                ]
            )
            combined = np.concatenate([h[t], inputs[t]])
            grad_w_gates += np.outer(d_pre, combined)
            grad_b_gates += d_pre

            d_combined = params.w_gates.T @ d_pre
            d_h_next = d_combined[:hidden]
            d_c_next = d_c * f_gate
        return [grad_w_gates, grad_b_gates, grad_w_out, np.array([grad_b_out])]

    # ----------------------------------------------------------------- fit
    def fit(self, texts: list[str], labels: list[int]) -> "CharLSTMClassifier":
        """Train on raw chat texts and binary labels."""
        import time

        if len(texts) != len(labels):
            raise ValidationError("texts and labels must have the same length")
        if not texts:
            raise ValidationError("cannot fit on an empty training set")
        start_time = time.perf_counter()

        self._build_vocabulary(list(texts))
        rng = np.random.default_rng(self.seed)
        self.params_ = _LSTMParams.initialise(len(self.char_to_index_), self.hidden_size, rng)
        self.loss_history_ = []

        # Adam state per parameter tensor.
        parameters = self.params_.flat()
        first_moments = [np.zeros_like(p) for p in parameters]
        second_moments = [np.zeros_like(p) for p in parameters]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        label_array = np.asarray(labels, dtype=float)
        for _ in range(int(self.n_epochs)):
            order = rng.permutation(len(texts))
            epoch_loss = 0.0
            for index in order:
                encoded = self._encode(texts[index])
                probability, cache = self._forward(encoded)
                label = float(label_array[index])
                clipped = min(max(probability, 1e-9), 1.0 - 1e-9)
                epoch_loss += -(label * np.log(clipped) + (1 - label) * np.log(1 - clipped))
                gradients = self._backward(probability, label, cache)

                step += 1
                parameters = self.params_.flat()
                for slot, (param, grad) in enumerate(zip(parameters, gradients)):
                    np.clip(grad, -5.0, 5.0, out=grad)
                    first_moments[slot] = beta1 * first_moments[slot] + (1 - beta1) * grad
                    second_moments[slot] = beta2 * second_moments[slot] + (1 - beta2) * grad**2
                    m_hat = first_moments[slot] / (1 - beta1**step)
                    v_hat = second_moments[slot] / (1 - beta2**step)
                    param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                # b_out is a python float inside the dataclass; re-sync it.
                self.params_.b_out = float(parameters[3][0])
            self.loss_history_.append(epoch_loss / len(texts))
        self.training_seconds_ = time.perf_counter() - start_time
        return self

    # ------------------------------------------------------------- predict
    def predict_proba(self, texts: list[str]) -> np.ndarray:
        """Return the positive-class probability for each text."""
        if self.params_ is None:
            raise ValidationError("model is not fitted; call fit() first")
        probabilities = np.zeros(len(texts), dtype=float)
        for index, text in enumerate(texts):
            probabilities[index], _ = self._forward(self._encode(text))
        return probabilities

    def predict(self, texts: list[str], threshold: float = 0.5) -> np.ndarray:
        """Return hard 0/1 predictions."""
        return (self.predict_proba(texts) >= threshold).astype(int)
