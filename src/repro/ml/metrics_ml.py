"""Standard classification metrics.

Used to evaluate the Type I / Type II classifier of the Highlight Extractor
(the paper reports ~80 % accuracy) and the window predictor of the Highlight
Initializer during development.  The precision@K metrics defined by the paper
itself live in :mod:`repro.eval.metrics`; this module is generic ML plumbing.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["accuracy", "precision_recall_f1", "roc_auc", "confusion_matrix"]


def _check_pair(y_true: np.ndarray, y_other: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(y_true).ravel()
    b = np.asarray(y_other).ravel()
    if a.size != b.size:
        raise ValidationError(f"length mismatch: {a.size} vs {b.size}")
    if a.size == 0:
        raise ValidationError("metrics require at least one example")
    return a, b


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of predictions that match the true labels."""
    a, b = _check_pair(y_true, y_pred)
    return float(np.mean(a == b))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, int]:
    """Return a binary confusion matrix as a dictionary of counts."""
    a, b = _check_pair(y_true, y_pred)
    a = a.astype(int)
    b = b.astype(int)
    return {
        "tp": int(np.sum((a == 1) & (b == 1))),
        "fp": int(np.sum((a == 0) & (b == 1))),
        "tn": int(np.sum((a == 0) & (b == 0))),
        "fn": int(np.sum((a == 1) & (b == 0))),
    }


def precision_recall_f1(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, float]:
    """Precision, recall and F1 for the positive class.

    Undefined ratios (no predicted positives, no actual positives) are
    reported as 0.0 rather than raising, matching common tooling behaviour.
    """
    counts = confusion_matrix(y_true, y_pred)
    tp, fp, fn = counts["tp"], counts["fp"], counts["fn"]
    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    if precision + recall > 0:
        f1 = 2 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return {"precision": precision, "recall": recall, "f1": f1}


def roc_auc(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Returns 0.5 when only one class is present (no ranking information).
    """
    labels, scores = _check_pair(y_true, y_score)
    labels = labels.astype(float)
    positives = scores[labels == 1]
    negatives = scores[labels == 0]
    if positives.size == 0 or negatives.size == 0:
        return 0.5
    # Rank-based computation handles ties by average ranks.
    order = np.argsort(np.concatenate([positives, negatives]), kind="mergesort")
    ranks = np.empty(order.size, dtype=float)
    sorted_scores = np.concatenate([positives, negatives])[order]
    ranks[order] = _average_ranks(sorted_scores)
    positive_ranks = ranks[: positives.size]
    u_statistic = positive_ranks.sum() - positives.size * (positives.size + 1) / 2.0
    return float(u_statistic / (positives.size * negatives.size))


def _average_ranks(sorted_scores: np.ndarray) -> np.ndarray:
    """Return 1-based ranks with ties assigned their average rank."""
    ranks = np.zeros(sorted_scores.size, dtype=float)
    i = 0
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        ranks[i : j + 1] = average_rank
        i = j + 1
    return ranks
