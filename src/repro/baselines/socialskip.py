"""SocialSkip baseline: seek-based interaction histogram (Chorianopoulos 2013).

SocialSkip builds a per-second histogram over the video timeline from viewer
*seek* interactions: a backward seek over a range suggests the range is
interesting (+1 to its bins), a forward seek suggests it is skippable (-1).
The smoothed curve's local maxima are reported as highlights, with the start
placed 10 s before the maximum and the end 10 s after — the fixed-width
recipe the paper describes in Section VII-C.

The paper's finding — which this reimplementation lets us reproduce — is that
casual-video viewers seek for many reasons (hunting for a highlight,
re-watching, checking something), so the seek histogram is a weak signal
compared to LIGHTOR's filtered play data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Highlight, Interaction, InteractionKind
from repro.utils.histograms import Histogram
from repro.utils.smoothing import find_local_maxima, gaussian_smooth
from repro.utils.validation import require_positive

__all__ = ["SocialSkipExtractor"]


@dataclass
class SocialSkipExtractor:
    """Highlights from seek interactions via a +1/-1 histogram."""

    smoothing_sigma: float = 8.0
    boundary_margin: float = 10.0
    min_separation: float = 60.0

    def extract(
        self,
        interactions: list[Interaction],
        video_duration: float,
        k: int,
    ) -> list[Highlight]:
        """Return up to ``k`` highlights from the seek histogram."""
        require_positive(k, "k")
        require_positive(video_duration, "video_duration")
        histogram = Histogram(duration=video_duration, bin_size=1.0)
        for event in interactions:
            if event.kind is InteractionKind.SEEK_BACKWARD and event.target is not None:
                histogram.add_range(event.target, event.timestamp, weight=+1.0)
            elif event.kind is InteractionKind.SEEK_FORWARD and event.target is not None:
                histogram.add_range(event.timestamp, event.target, weight=-1.0)
        smoothed = gaussian_smooth(histogram.to_array(), sigma=self.smoothing_sigma)
        return self._maxima_to_highlights(smoothed, video_duration, k)

    def _maxima_to_highlights(
        self, curve: np.ndarray, video_duration: float, k: int
    ) -> list[Highlight]:
        maxima = find_local_maxima(curve, min_height=1e-9)
        ranked = sorted(maxima, key=lambda index: -curve[index])
        selected: list[int] = []
        for index in ranked:
            if len(selected) >= k:
                break
            if any(abs(index - chosen) <= self.min_separation for chosen in selected):
                continue
            selected.append(index)
        highlights = []
        for index in sorted(selected):
            start = max(0.0, index - self.boundary_margin)
            end = min(video_duration, index + self.boundary_margin)
            highlights.append(Highlight(start=start, end=end, label="socialskip"))
        return highlights
