"""Chat-LSTM baseline (Fu et al., EMNLP 2017) on the numpy LSTM substrate.

The baseline classifies individual video *frames* as highlight or not: for a
frame at time ``t`` it feeds the chat messages of the next 7-second window
into a character-level LSTM.  At prediction time every sampled frame gets a
probability, and the top-k frames are returned with the same 120-second
spacing rule LIGHTOR uses so the comparison is fair (Section VII-E).

Properties preserved from the original that matter for the comparison:

* the model sees raw characters, so what it learns is largely the reaction
  vocabulary of the training game — it does not transfer across games
  (Fig. 11b);
* it needs many labelled videos before that vocabulary coverage is adequate
  (Fig. 10);
* it has no mechanism for the delay between a highlight and its chat, so its
  frame picks trail the true start;
* training cost is orders of magnitude above fitting LIGHTOR's three-feature
  logistic regression (Table I).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.types import Highlight, RedDot, VideoChatLog
from repro.datasets.generate import LabeledVideo
from repro.ml.lstm import CharLSTMClassifier
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError, require_positive

__all__ = ["ChatLSTMBaseline"]


@dataclass
class ChatLSTMBaseline:
    """Frame-level highlight classifier over chat characters.

    Parameters
    ----------
    chat_window:
        Length of the chat window following each frame (7 s in the paper).
    frame_step:
        Spacing of sampled frames, both for training-example extraction and
        for prediction.
    frames_per_video:
        Cap on the number of training frames drawn from one video (balanced
        between positives and negatives); keeps the numpy LSTM trainable in
        benchmark time while preserving the data-hunger property.
    min_dot_spacing:
        Spacing applied when selecting the top-k predicted frames.
    """

    chat_window: float = 7.0
    frame_step: float = 15.0
    frames_per_video: int = 24
    min_dot_spacing: float = 120.0
    hidden_size: int = 24
    n_epochs: int = 3
    max_sequence_length: int = 140
    seed: int = 13
    model: CharLSTMClassifier | None = field(default=None, repr=False)
    training_seconds_: float = field(default=0.0, repr=False)
    n_training_examples_: int = field(default=0, repr=False)

    # ------------------------------------------------------------- training
    def fit(self, train_videos: list[LabeledVideo]) -> "ChatLSTMBaseline":
        """Train the character LSTM on frames sampled from labelled videos."""
        if not train_videos:
            raise ValidationError("fit requires at least one labelled video")
        start_time = time.perf_counter()
        texts: list[str] = []
        labels: list[int] = []
        seeds = SeedSequenceFactory(self.seed)
        for labelled in train_videos:
            video_texts, video_labels = self._training_frames(labelled, seeds)
            texts.extend(video_texts)
            labels.extend(video_labels)
        if not texts:
            raise ValidationError("no training frames could be extracted")
        self.model = CharLSTMClassifier(
            hidden_size=self.hidden_size,
            n_epochs=self.n_epochs,
            max_sequence_length=self.max_sequence_length,
            seed=self.seed,
        )
        self.model.fit(texts, labels)
        self.n_training_examples_ = len(texts)
        self.training_seconds_ = time.perf_counter() - start_time
        return self

    def _training_frames(
        self, labelled: LabeledVideo, seeds: SeedSequenceFactory
    ) -> tuple[list[str], list[int]]:
        """Sample balanced positive/negative frames from one labelled video."""
        rng = seeds.rng("frames", labelled.video.video_id)
        positives: list[str] = []
        negatives: list[str] = []
        duration = labelled.video.duration
        frame_times = np.arange(0.0, duration - self.chat_window, self.frame_step)
        for frame_time in frame_times:
            text = self._frame_text(labelled.chat_log, float(frame_time))
            if not text:
                continue
            if self._is_highlight_frame(float(frame_time), labelled.highlights):
                positives.append(text)
            else:
                negatives.append(text)
        per_class = self.frames_per_video // 2
        rng.shuffle(positives)
        rng.shuffle(negatives)
        positives = positives[:per_class]
        negatives = negatives[: max(per_class, len(positives))]
        texts = positives + negatives
        labels = [1] * len(positives) + [0] * len(negatives)
        return texts, labels

    def _frame_text(self, chat_log: VideoChatLog, frame_time: float) -> str:
        """Concatenate the chat messages in the frame's next-7-second window."""
        messages = chat_log.messages_between(frame_time, frame_time + self.chat_window)
        return " ".join(message.text for message in messages)

    @staticmethod
    def _is_highlight_frame(frame_time: float, highlights: list[Highlight]) -> bool:
        return any(h.contains(frame_time) for h in highlights)

    # ------------------------------------------------------------ prediction
    def propose(self, chat_log: VideoChatLog, k: int) -> list[RedDot]:
        """Return the top-k predicted highlight frames as red dots."""
        require_positive(k, "k")
        if self.model is None:
            raise ValidationError("baseline is not fitted; call fit() first")
        duration = chat_log.video.duration
        frame_times = np.arange(0.0, max(self.frame_step, duration - self.chat_window), self.frame_step)
        texts = [self._frame_text(chat_log, float(t)) for t in frame_times]
        keep = [i for i, text in enumerate(texts) if text]
        if not keep:
            return []
        probabilities = self.model.predict_proba([texts[i] for i in keep])

        ranked = sorted(zip(keep, probabilities), key=lambda pair: -pair[1])
        selected: list[RedDot] = []
        for index, probability in ranked:
            if len(selected) >= k:
                break
            position = float(frame_times[index])
            if any(abs(position - dot.position) <= self.min_dot_spacing for dot in selected):
                continue
            selected.append(
                RedDot(
                    position=position,
                    score=float(probability),
                    video_id=chat_log.video.video_id,
                )
            )
        return sorted(selected, key=lambda dot: dot.position)
