"""Baseline highlight detectors the paper compares against.

* :mod:`naive <repro.baselines.naive>` — put red dots at the largest chat
  message counts (the strawman of Section IV-C).
* :mod:`toretter <repro.baselines.toretter>` — social-network burst/event
  detection applied to chat (Sakaki et al.'s earthquake detector, Fig. 7a).
* :mod:`socialskip <repro.baselines.socialskip>` — seek-based interaction
  histogram (Chorianopoulos, Fig. 8).
* :mod:`moocer <repro.baselines.moocer>` — play-based interaction histogram
  (Kim et al.'s MOOC interaction peaks, Fig. 8).
* :mod:`chat_lstm <repro.baselines.chat_lstm>` — character-level LSTM over
  chat windows (Fu et al., Figs. 10/11).
* :mod:`joint_lstm <repro.baselines.joint_lstm>` — chat LSTM plus simulated
  visual features (Table I).
"""

from repro.baselines.naive import NaivePeakDetector
from repro.baselines.toretter import ToretterDetector
from repro.baselines.socialskip import SocialSkipExtractor
from repro.baselines.moocer import MoocerExtractor
from repro.baselines.chat_lstm import ChatLSTMBaseline
from repro.baselines.joint_lstm import JointLSTMBaseline

__all__ = [
    "NaivePeakDetector",
    "ToretterDetector",
    "SocialSkipExtractor",
    "MoocerExtractor",
    "ChatLSTMBaseline",
    "JointLSTMBaseline",
]
