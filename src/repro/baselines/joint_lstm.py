"""Joint-LSTM baseline: chat LSTM + simulated visual features (Table I).

The original Joint-LSTM stacks a video LSTM over CNN image features on top of
the chat LSTM.  Offline we combine the :class:`ChatLSTMBaseline` frame
probability with the synthetic per-second visual-excitement track
(:class:`~repro.simulation.visual.VisualTrackSimulator`) through a logistic
blend whose weights are fitted on the training videos.  The combination keeps
the two properties Table I relies on: it is somewhat better than chat alone
on the training game but still behind LIGHTOR (its frame picks trail the true
start and the visual track has non-highlight bumps), and its training cost is
dominated by the LSTM, i.e. orders of magnitude above LIGHTOR's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.chat_lstm import ChatLSTMBaseline
from repro.core.types import RedDot, VideoChatLog
from repro.datasets.generate import LabeledVideo
from repro.ml.logistic import LogisticRegression
from repro.simulation.visual import VisualTrackSimulator
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError, require_positive

__all__ = ["JointLSTMBaseline"]


@dataclass
class JointLSTMBaseline:
    """Chat-LSTM probabilities fused with the visual-excitement track."""

    chat_baseline: ChatLSTMBaseline = field(default_factory=ChatLSTMBaseline)
    visual_seed: int = 29
    frame_step: float = 15.0
    min_dot_spacing: float = 120.0
    fusion_model: LogisticRegression | None = field(default=None, repr=False)
    training_seconds_: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        self._visual = VisualTrackSimulator(seeds=SeedSequenceFactory(self.visual_seed))

    # ------------------------------------------------------------- training
    def fit(self, train_videos: list[LabeledVideo]) -> "JointLSTMBaseline":
        """Train the chat LSTM, then fit the chat/visual fusion weights."""
        if not train_videos:
            raise ValidationError("fit requires at least one labelled video")
        start_time = time.perf_counter()
        self.chat_baseline.fit(train_videos)

        features: list[list[float]] = []
        labels: list[int] = []
        for labelled in train_videos:
            frame_times, chat_probs, visual_values = self._frame_features(labelled.chat_log)
            for frame_time, chat_prob, visual in zip(frame_times, chat_probs, visual_values):
                features.append([chat_prob, visual])
                is_positive = any(h.contains(frame_time) for h in labelled.highlights)
                labels.append(1 if is_positive else 0)
        if not features:
            raise ValidationError("no fusion training frames could be extracted")
        self.fusion_model = LogisticRegression(n_iterations=1500, learning_rate=0.5)
        self.fusion_model.fit(np.asarray(features), np.asarray(labels))
        self.training_seconds_ = time.perf_counter() - start_time
        return self

    # ------------------------------------------------------------ prediction
    def propose(self, chat_log: VideoChatLog, k: int) -> list[RedDot]:
        """Return the top-k fused-score frames as red dots."""
        require_positive(k, "k")
        if self.fusion_model is None:
            raise ValidationError("baseline is not fitted; call fit() first")
        frame_times, chat_probs, visual_values = self._frame_features(chat_log)
        if len(frame_times) == 0:
            return []
        fused = self.fusion_model.predict_proba(
            np.column_stack([chat_probs, visual_values])
        )
        ranked = sorted(range(len(frame_times)), key=lambda i: -fused[i])
        selected: list[RedDot] = []
        for index in ranked:
            if len(selected) >= k:
                break
            position = float(frame_times[index])
            if any(abs(position - dot.position) <= self.min_dot_spacing for dot in selected):
                continue
            selected.append(
                RedDot(position=position, score=float(fused[index]), video_id=chat_log.video.video_id)
            )
        return sorted(selected, key=lambda dot: dot.position)

    # -------------------------------------------------------------- helpers
    def _frame_features(
        self, chat_log: VideoChatLog
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-frame (times, chat probability, visual excitement)."""
        if self.chat_baseline.model is None:
            raise ValidationError("the chat LSTM must be fitted before computing features")
        duration = chat_log.video.duration
        frame_times = np.arange(
            0.0, max(self.frame_step, duration - self.chat_baseline.chat_window), self.frame_step
        )
        texts = [self.chat_baseline._frame_text(chat_log, float(t)) for t in frame_times]
        chat_probs = np.zeros(len(frame_times))
        non_empty = [i for i, text in enumerate(texts) if text]
        if non_empty:
            chat_probs[non_empty] = self.chat_baseline.model.predict_proba(
                [texts[i] for i in non_empty]
            )
        track = self._visual.simulate(chat_log.video)
        indices = np.clip(frame_times.astype(int), 0, track.size - 1)
        visual_values = track[indices]
        return frame_times, chat_probs, visual_values
