"""Naive message-count detector (Section IV-C's strawman).

Counts chat messages per second, smooths the curve, and places red dots at
the highest peaks subject to a minimum spacing.  It fails for the two reasons
the paper identifies: bot-spam bursts have high counts without any highlight,
and the chat peak lags the highlight start by the reaction delay, so the dot
lands after the highlight has begun (or ended).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import RedDot, VideoChatLog
from repro.utils.histograms import Histogram
from repro.utils.smoothing import gaussian_smooth
from repro.utils.validation import require_positive

__all__ = ["NaivePeakDetector"]


@dataclass
class NaivePeakDetector:
    """Red dots at the k largest smoothed chat-count peaks."""

    smoothing_sigma: float = 5.0
    min_dot_spacing: float = 120.0

    def propose(self, chat_log: VideoChatLog, k: int) -> list[RedDot]:
        """Return up to ``k`` red dots at the highest chat-rate positions."""
        require_positive(k, "k")
        video = chat_log.video
        if not chat_log.messages:
            return []
        histogram = Histogram(duration=video.duration, bin_size=1.0)
        for message in chat_log.messages:
            histogram.add_point(min(message.timestamp, video.duration - 1e-6))
        smoothed = gaussian_smooth(histogram.to_array(), sigma=self.smoothing_sigma)

        order = np.argsort(-smoothed)
        centers = histogram.bin_centers()
        selected: list[RedDot] = []
        for index in order:
            if len(selected) >= k:
                break
            position = float(centers[index])
            if any(abs(position - dot.position) <= self.min_dot_spacing for dot in selected):
                continue
            selected.append(
                RedDot(
                    position=position,
                    score=float(smoothed[index]),
                    video_id=video.video_id,
                )
            )
        return sorted(selected, key=lambda dot: dot.position)
