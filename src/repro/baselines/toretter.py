"""Toretter-style social-network event detection applied to chat.

Sakaki et al.'s earthquake detection system (TKDE 2013) monitors the rate of
relevant tweets and raises an event when the observed count in a window is
improbably high under an exponential model of the recent baseline rate.  The
paper applies the same idea to chat messages to detect highlight *starts*
(Fig. 7a) and finds it performs poorly because it places events at the burst
itself — it has no notion of the delay between a highlight and the chat that
reacts to it.

The reimplementation follows that recipe: per-window message counts, an
exponentially weighted baseline, a Poisson-tail surprise score, and top-k
event windows with a minimum spacing; the event position is the window start
(no delay adjustment — exactly the deficiency the comparison illustrates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import RedDot, VideoChatLog
from repro.utils.validation import require_positive

__all__ = ["ToretterDetector"]


@dataclass
class ToretterDetector:
    """Burst detector over chat-message counts.

    Parameters
    ----------
    window_size:
        Length of the counting window in seconds.
    baseline_decay:
        Exponential decay factor of the baseline rate estimate per window.
    min_dot_spacing:
        Minimum spacing between reported events (matches LIGHTOR's δ so the
        comparison is fair).
    """

    window_size: float = 25.0
    baseline_decay: float = 0.85
    min_dot_spacing: float = 120.0

    def propose(self, chat_log: VideoChatLog, k: int) -> list[RedDot]:
        """Return up to ``k`` event positions ranked by burst surprise."""
        require_positive(k, "k")
        video = chat_log.video
        n_windows = max(1, int(np.ceil(video.duration / self.window_size)))
        counts = np.zeros(n_windows)
        for message in chat_log.messages:
            index = min(n_windows - 1, int(message.timestamp // self.window_size))
            counts[index] += 1

        surprises = self._surprise_scores(counts)
        order = np.argsort(-surprises)
        selected: list[RedDot] = []
        for index in order:
            if len(selected) >= k:
                break
            # An online burst detector raises the event when the anomalous
            # window has been observed, i.e. at the window's end — it has no
            # notion of how far the discussion lags the highlight, which is
            # exactly the deficiency Fig. 7a illustrates.
            position = float(min(video.duration, (index + 1) * self.window_size))
            if any(abs(position - dot.position) <= self.min_dot_spacing for dot in selected):
                continue
            selected.append(
                RedDot(position=position, score=float(surprises[index]), video_id=video.video_id)
            )
        return sorted(selected, key=lambda dot: dot.position)

    def _surprise_scores(self, counts: np.ndarray) -> np.ndarray:
        """Poisson-tail surprise of each window count against the decayed baseline."""
        surprises = np.zeros_like(counts, dtype=float)
        baseline = max(counts[0], 1.0)
        for index, count in enumerate(counts):
            expected = max(baseline, 1e-6)
            if count > expected:
                # -log P[X >= count] under Poisson(expected), via a Chernoff
                # style bound; monotone in the excess so ranking is faithful.
                surprises[index] = count * np.log(count / expected) - (count - expected)
            baseline = self.baseline_decay * baseline + (1.0 - self.baseline_decay) * count
        return surprises
