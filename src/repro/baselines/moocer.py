"""MOOCer baseline: play-based interaction histogram (Kim et al., L@S 2014).

The MOOC interaction-peak analysis accumulates, for every second of the
video, how many viewer play sessions covered it.  After smoothing, local
maxima are interaction peaks; each peak's highlight boundary is delimited by
the nearest *turning points* (where the curve stops decreasing) on either
side.  As with SocialSkip, the technique was designed for lecture videos
where viewing is goal-directed; on casual live-video viewing the play curve
is diffuse, which is why LIGHTOR's dot-conditioned filtering wins (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Highlight, PlayRecord
from repro.utils.histograms import Histogram
from repro.utils.smoothing import find_local_maxima, gaussian_smooth
from repro.utils.validation import require_positive

__all__ = ["MoocerExtractor"]


@dataclass
class MoocerExtractor:
    """Highlights from play-coverage interaction peaks."""

    smoothing_sigma: float = 8.0
    min_separation: float = 60.0
    max_extent: float = 60.0

    def extract(
        self,
        plays: list[PlayRecord],
        video_duration: float,
        k: int,
    ) -> list[Highlight]:
        """Return up to ``k`` highlights from the play-coverage histogram."""
        require_positive(k, "k")
        require_positive(video_duration, "video_duration")
        histogram = Histogram(duration=video_duration, bin_size=1.0)
        for play in plays:
            histogram.add_range(play.start, play.end, weight=1.0)
        smoothed = gaussian_smooth(histogram.to_array(), sigma=self.smoothing_sigma)

        maxima = find_local_maxima(smoothed, min_height=1e-9)
        ranked = sorted(maxima, key=lambda index: -smoothed[index])
        selected: list[int] = []
        for index in ranked:
            if len(selected) >= k:
                break
            if any(abs(index - chosen) <= self.min_separation for chosen in selected):
                continue
            selected.append(index)

        highlights = []
        for peak in sorted(selected):
            start, end = self._turning_points(smoothed, peak)
            highlights.append(
                Highlight(
                    start=float(max(0.0, start)),
                    end=float(min(video_duration, end)),
                    label="moocer",
                )
            )
        return highlights

    def _turning_points(self, curve: np.ndarray, peak: int) -> tuple[float, float]:
        """Walk outwards from ``peak`` to the curve's turning points.

        The walk stops when the curve starts rising again (the classic
        turning point), when it drops below half of the peak height (the
        interaction bump has ended), or after ``max_extent`` seconds — the
        half-height cut keeps long shallow tails produced by passive viewers
        from stretching the boundary tens of seconds past the actual bump.
        """
        half_height = curve[peak] / 2.0
        left = peak
        while (
            left > 0
            and curve[left - 1] <= curve[left]
            and curve[left - 1] >= half_height
            and peak - left < self.max_extent
        ):
            left -= 1
        right = peak
        n = curve.size
        while (
            right < n - 1
            and curve[right + 1] <= curve[right]
            and curve[right + 1] >= half_height
            and right - peak < self.max_extent
        ):
            right += 1
        return float(left), float(right)
