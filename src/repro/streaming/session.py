"""Per-channel stream sessions and the multi-channel orchestrator.

A :class:`StreamSession` owns one live channel's engines — the incremental
Initializer and the play-accumulating Extractor — and keeps them in sync:
when the Initializer emits or retracts provisional dots, the Extractor's
tracked set is reconciled so viewer plays accumulate against the dots that
are actually on screen.

:class:`StreamOrchestrator` multiplexes many concurrent channels under a
bounded memory budget: at most ``max_sessions`` live sessions are kept, in
LRU order; opening one more finalizes and evicts the least recently active
channel (its final dots are handed to ``on_evict`` so a back end can persist
them).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.config import LightorConfig
from repro.core.initializer.initializer import HighlightInitializer, InitializerModel
from repro.core.types import ChatMessage, Highlight, Interaction, RedDot
from repro.streaming.events import StreamEvent
from repro.streaming.extractor import StreamingExtractor
from repro.streaming.initializer import EmitPolicy, StreamingInitializer
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError, require_positive

__all__ = ["StreamSession", "StreamOrchestrator"]

_LOGGER = get_logger("streaming.session")


@dataclass
class StreamSession:
    """One live channel: chat in, provisional dots and refinements out."""

    video_id: str
    initializer: StreamingInitializer
    extractor: StreamingExtractor
    messages_ingested: int = 0
    interactions_ingested: int = 0
    events_produced: int = 0
    closed: bool = False

    def ingest_message(self, message: ChatMessage) -> list[StreamEvent]:
        """Feed one chat message; returns emit/retract events."""
        self._require_open()
        events = self.initializer.ingest(message)
        self.messages_ingested += 1
        if events:
            # The provisional top-k changed — point the extractor's play
            # accumulators at the dots now on screen.
            self.extractor.sync_dots(self.initializer.current_dots())
        self.events_produced += len(events)
        return events

    def ingest_messages(self, messages: Sequence[ChatMessage]) -> list[StreamEvent]:
        """Feed a timestamp-ordered chat batch; returns emit/retract events.

        Equivalent to feeding the messages through :meth:`ingest_message`
        one at a time except that the emit-policy checkpoint is evaluated
        once per batch instead of once per message (see
        :meth:`~repro.streaming.initializer.StreamingInitializer.ingest_batch`);
        the finalized dots and the extractor's play attribution are
        byte-identical either way.
        """
        self._require_open()
        events = self.initializer.ingest_batch(messages)
        self.messages_ingested += len(messages)
        if events:
            self.extractor.sync_dots(self.initializer.current_dots())
        self.events_produced += len(events)
        return events

    def ingest_interaction(self, interaction: Interaction) -> list[StreamEvent]:
        """Feed one viewer interaction; returns refinement events.

        A stale provisional set is refreshed first (emitting any resulting
        emit/retract events ahead of the refinements), so the play is
        attributed against the dots implied by *all* chat seen so far — see
        :meth:`ingest_interactions` for why.
        """
        self._require_open()
        events = self._refresh_dots()
        events.extend(self.extractor.ingest(interaction))
        self.interactions_ingested += 1
        self.events_produced += len(events)
        return events

    def ingest_interactions(self, interactions: Sequence[Interaction]) -> list[StreamEvent]:
        """Feed a batch of viewer interactions; returns refinement events.

        Like :meth:`ingest_interaction`, the provisional dots are refreshed
        before any play is attributed.  The refresh makes interaction
        handling independent of how chat was chunked: the tracked-dot set at
        every interaction is a pure function of the events ingested so far,
        which is what makes batched ingest byte-equivalent to per-event
        ingest all the way down to the persisted highlight records.
        """
        self._require_open()
        events = self._refresh_dots()
        events.extend(self.extractor.ingest_batch(interactions))
        self.interactions_ingested += len(interactions)
        self.events_produced += len(events)
        return events

    def _refresh_dots(self) -> list[StreamEvent]:
        """Bring the provisional dots current; sync the extractor if they moved."""
        events = self.initializer.refresh()
        if events:
            self.extractor.sync_dots(self.initializer.current_dots())
        return events

    def finalize(self, duration: float | None = None) -> list[RedDot]:
        """Close the stream: final batch-parity dots + last refinements."""
        if self.closed:
            return self.initializer.current_dots()
        dots = self.initializer.finalize(duration)
        self.events_produced += len(self.initializer.final_events)
        # The video length is only known for sure once the stream ends; hand
        # it to the extractor so dangling plays are clamped to it, exactly
        # like the batch path's interactions_to_plays(..., video_duration).
        self.extractor.video_duration = (
            duration if duration is not None else self.initializer.last_stream_time
        )
        self.extractor.sync_dots(dots)
        self.events_produced += len(self.extractor.flush())
        self.closed = True
        return dots

    # ------------------------------------------------------------- durability
    def snapshot(self) -> dict:
        """A JSON-safe dict of the whole session, round-trip exact.

        Bundles both engines' snapshots with the session counters.  The
        trained model and workflow config are shared serving state and are
        supplied again at :meth:`restore` (normally by
        :meth:`StreamOrchestrator.restore_session`).
        """
        return {
            "video_id": self.video_id,
            "messages_ingested": self.messages_ingested,
            "interactions_ingested": self.interactions_ingested,
            "events_produced": self.events_produced,
            "closed": self.closed,
            "initializer": self.initializer.snapshot(),
            "extractor": self.extractor.snapshot(),
        }

    @classmethod
    def restore(
        cls,
        payload: dict,
        *,
        model: InitializerModel,
        config: LightorConfig | None = None,
        feature_set=None,
    ) -> "StreamSession":
        """Rebuild a session from :meth:`snapshot` around shared serving state."""
        return cls(
            video_id=payload["video_id"],
            initializer=StreamingInitializer.restore(
                payload["initializer"],
                model=model,
                config=config,
                feature_set=feature_set,
            ),
            extractor=StreamingExtractor.restore(payload["extractor"], config=config),
            messages_ingested=payload["messages_ingested"],
            interactions_ingested=payload["interactions_ingested"],
            events_produced=payload["events_produced"],
            closed=payload["closed"],
        )

    def current_dots(self) -> list[RedDot]:
        """The dots currently on screen (refined positions when available)."""
        refined = self.extractor.tracked_dots()
        return refined if refined else self.initializer.current_dots()

    def refined_highlights(self) -> list[Highlight]:
        """Exact boundaries the extractor has produced so far."""
        return self.extractor.refined_highlights()

    def _require_open(self) -> None:
        if self.closed:
            raise ValidationError(
                f"stream session for {self.video_id!r} is already finalized"
            )


@dataclass
class StreamOrchestrator:
    """Routes live traffic for many channels into bounded per-channel state.

    Parameters
    ----------
    initializer:
        A *fitted* batch Initializer whose model every session shares (the
        model is read-only at serve time, so sharing is safe and keeps the
        per-channel footprint to window state only).
    config:
        Workflow configuration; defaults to the initializer's.
    policy:
        Emit/retract policy for every session.
    k:
        Provisional top-k per channel (defaults to ``config.top_k``).
    max_sessions:
        LRU bound on concurrently tracked channels.
    max_window_summaries:
        Optional per-channel window summary cap (see
        :class:`~repro.streaming.state.IncrementalWindowState`).
    on_evict:
        Callback ``(video_id, final_dots)`` invoked when a session is
        LRU-evicted or closed, so results can be persisted.
    on_evict_highlights:
        Callback ``(video_id, refined_highlights)`` invoked alongside
        ``on_evict`` when the finalized session produced exact boundaries —
        without it an LRU eviction would silently drop the extractor's
        refinement work.
    on_evict_snapshot:
        Callback ``(video_id, session)`` invoked on LRU eviction **before**
        the session is finalized, with the session still open.  A durable
        tier checkpoints the live state here, so an evicted channel — which
        is still live, eviction is a memory decision — can later be rebuilt
        via :meth:`restore_session` and continue where it left off.
    """

    initializer: HighlightInitializer
    config: LightorConfig | None = None
    policy: EmitPolicy = field(default_factory=EmitPolicy)
    k: int | None = None
    max_sessions: int = 64
    max_window_summaries: int | None = None
    min_plays_for_refinement: int = 10
    on_evict: Callable[[str, list[RedDot]], None] | None = None
    on_evict_highlights: Callable[[str, list[Highlight]], None] | None = None
    on_evict_snapshot: Callable[[str, StreamSession], None] | None = None
    _sessions: "OrderedDict[str, StreamSession]" = field(
        default_factory=OrderedDict, repr=False
    )
    sessions_opened: int = 0
    sessions_evicted: int = 0
    sessions_restored: int = 0

    def __post_init__(self) -> None:
        require_positive(self.max_sessions, "max_sessions")
        if self.initializer.model is None:
            raise ValidationError(
                "orchestrator needs a fitted initializer; call fit() first"
            )
        if self.config is None:
            self.config = self.initializer.config

    @property
    def model(self) -> InitializerModel:
        """The shared trained model."""
        return self.initializer.model

    # -------------------------------------------------------------- sessions
    def open_session(self, video_id: str) -> StreamSession:
        """Open (or touch) the live session for ``video_id``."""
        session = self._sessions.get(video_id)
        if session is not None:
            self._sessions.move_to_end(video_id)
            return session
        session = StreamSession(
            video_id=video_id,
            initializer=StreamingInitializer(
                model=self.initializer.model,
                config=self.config,
                feature_set=self.initializer.feature_set,
                k=self.k,
                policy=self.policy,
                video_id=video_id,
                max_window_summaries=self.max_window_summaries,
            ),
            extractor=StreamingExtractor(
                config=self.config,
                min_plays_for_refinement=self.min_plays_for_refinement,
            ),
        )
        self._sessions[video_id] = session
        self.sessions_opened += 1
        self._evict_over_budget()
        return session

    def restore_session(self, payload: dict) -> StreamSession:
        """Rebuild a checkpointed session around the shared trained model.

        The inverse of :meth:`StreamSession.snapshot` at the orchestrator
        level: engine geometry, policy and counters come from the payload;
        the model, config and feature set are this orchestrator's own (they
        are deterministic retraining products, not per-session state).  The
        restored session joins the LRU like a freshly opened one.  Restoring
        over an already-live session is an error — it would silently discard
        the newer in-memory state.
        """
        video_id = payload["video_id"]
        if video_id in self._sessions:
            raise ValidationError(
                f"video {video_id!r} already has a live session; refuse to "
                "overwrite it with a snapshot"
            )
        session = StreamSession.restore(
            payload,
            model=self.initializer.model,
            config=self.config,
            feature_set=self.initializer.feature_set,
        )
        self._sessions[video_id] = session
        self.sessions_restored += 1
        self._evict_over_budget()
        return session

    def session(self, video_id: str) -> StreamSession:
        """The session for ``video_id``, opened on first use."""
        return self.open_session(video_id)

    def has_session(self, video_id: str) -> bool:
        """Whether a live session is currently tracked for ``video_id``."""
        return video_id in self._sessions

    def open_video_ids(self) -> list[str]:
        """Ids of the currently tracked sessions, least recently used first."""
        return list(self._sessions)

    # ------------------------------------------------------------------ feed
    def ingest_message(self, video_id: str, message: ChatMessage) -> list[StreamEvent]:
        """Route one chat message to its channel's session."""
        return self.session(video_id).ingest_message(message)

    def ingest_messages(
        self, video_id: str, messages: Sequence[ChatMessage]
    ) -> list[StreamEvent]:
        """Route a timestamp-ordered chat batch to its channel's session."""
        return self.session(video_id).ingest_messages(messages)

    def ingest_interactions(
        self, video_id: str, interactions: Iterable[Interaction] | Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Route a batch of viewer interactions to their channel's session."""
        return self.session(video_id).ingest_interactions(list(interactions))

    def close_session(
        self, video_id: str, duration: float | None = None
    ) -> list[RedDot]:
        """Finalize and drop a channel; returns its final red dots.

        The session is removed only after a successful finalize: a rejected
        ``duration`` (earlier than chat already observed) leaves the channel
        live, so the caller can retry with a valid closing point.
        """
        session = self._sessions.get(video_id)
        if session is None:
            raise ValidationError(f"no live session for video {video_id!r}")
        dots = session.finalize(duration)
        del self._sessions[video_id]
        self._notify_evicted(video_id, session, dots)
        return dots

    def drop_session(self, video_id: str) -> None:
        """Remove a session without finalizing it (migration detach).

        No eviction callbacks fire and no closing red dots are computed: the
        caller has already checkpointed the session's full state and will
        rebuild it elsewhere (the destination shard of a channel migration).
        Unknown sessions are errors — silently dropping nothing would mask a
        routing bug in the caller.
        """
        if video_id not in self._sessions:
            raise ValidationError(f"no live session for video {video_id!r}")
        del self._sessions[video_id]

    def close_all_sessions(self) -> dict[str, list[RedDot]]:
        """Finalize every live session (graceful shutdown); returns final dots.

        Results flow through the same eviction callbacks as a normal close,
        so nothing is dropped when a service shuts down mid-stream.
        """
        results: dict[str, list[RedDot]] = {}
        while self._sessions:
            video_id = next(iter(self._sessions))
            results[video_id] = self.close_session(video_id)
        return results

    def current_dots(self, video_id: str) -> list[RedDot]:
        """The dots currently live for ``video_id`` (empty when untracked)."""
        session = self._sessions.get(video_id)
        return session.current_dots() if session is not None else []

    # ----------------------------------------------------------------- stats
    def stats(self) -> dict[str, int]:
        """Coarse gauges for monitoring and tests."""
        return {
            "sessions_live": len(self._sessions),
            "sessions_opened": self.sessions_opened,
            "sessions_evicted": self.sessions_evicted,
            "messages_ingested": sum(
                s.messages_ingested for s in self._sessions.values()
            ),
            "interactions_ingested": sum(
                s.interactions_ingested for s in self._sessions.values()
            ),
            "window_summaries": sum(
                s.initializer.window_summary_count for s in self._sessions.values()
            ),
        }

    # -------------------------------------------------------------- internals
    def _evict_over_budget(self) -> None:
        while len(self._sessions) > self.max_sessions:
            video_id, session = self._sessions.popitem(last=False)
            if self.on_evict_snapshot is not None:
                # Checkpoint the still-open state first: eviction reclaims
                # memory from a channel that is *still live*, and finalize
                # below is irreversible.
                self.on_evict_snapshot(video_id, session)
            dots = session.finalize()
            self.sessions_evicted += 1
            _LOGGER.info(
                "evicted LRU stream session %s (%d messages, %d dots)",
                video_id,
                session.messages_ingested,
                len(dots),
            )
            self._notify_evicted(video_id, session, dots)

    def _notify_evicted(
        self, video_id: str, session: StreamSession, dots: list[RedDot]
    ) -> None:
        """Hand a finalized session's results to the persistence callbacks."""
        if self.on_evict is not None:
            self.on_evict(video_id, dots)
        if self.on_evict_highlights is not None:
            highlights = session.refined_highlights()
            if highlights:
                self.on_evict_highlights(video_id, highlights)
