"""Events emitted by the streaming highlight engine.

The live engine cannot wait for the video to end before showing red dots, so
it emits *provisional* dots while the stream runs and retracts them when
later chat shifts the ranking.  Consumers (the web service, the CLI, tests)
observe the engine through these value objects:

* :class:`DotEmitted` — a provisional red dot became part of the current
  top-k and should be rendered on the progress bar.
* :class:`DotRetracted` — a previously emitted dot fell out of the top-k
  (newer chat produced stronger windows) and should be removed.
* :class:`HighlightRefined` — the streaming extractor accumulated enough
  viewer plays around a dot to run a refinement round and produced an exact
  highlight boundary (or moved the dot).

``stream_time`` is the chat/interaction timestamp at which the engine made
the decision — video seconds, the same clock every other timestamp in the
system uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Highlight, RedDot

__all__ = ["StreamEvent", "DotEmitted", "DotRetracted", "HighlightRefined"]


@dataclass(frozen=True)
class StreamEvent:
    """Base class for everything the streaming engine announces."""

    stream_time: float


@dataclass(frozen=True)
class DotEmitted(StreamEvent):
    """A provisional red dot entered the current top-k."""

    dot: RedDot


@dataclass(frozen=True)
class DotRetracted(StreamEvent):
    """A previously emitted provisional dot left the current top-k."""

    dot: RedDot


@dataclass(frozen=True)
class HighlightRefined(StreamEvent):
    """A refinement round around ``dot`` produced a boundary or moved it.

    ``highlight`` is set when the round converged on an exact boundary;
    ``moved_to`` is set when the round only repositioned the dot (Type I).
    """

    dot: RedDot
    highlight: Highlight | None = None
    moved_to: float | None = None
