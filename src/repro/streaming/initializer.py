"""Online Highlight Initializer: Algorithm 1 over a live chat stream.

:class:`StreamingInitializer` wraps a *trained* batch model
(:class:`~repro.core.initializer.initializer.InitializerModel`) and runs its
prediction + adjustment stages incrementally:

* every arriving :class:`ChatMessage` updates the incremental window state
  (O(1) amortised — the message joins a constant number of open windows);
* at evaluation points (every ``eval_every_messages`` messages or
  ``eval_every_seconds`` of stream time, whichever comes first) the sealed
  windows are re-scored and the provisional top-k is diffed against the
  previously emitted set, producing :class:`DotEmitted` /
  :class:`DotRetracted` events;
* :meth:`finalize` closes the stream at the video duration and returns the
  final red dots, which are **exactly** the dots the batch
  ``HighlightInitializer.propose`` computes for the recorded log — same
  positions, same scores, same order.

The scoring pass mirrors the batch code path operation-for-operation
(min-max normalise over all windows, flip the length column, logistic
probabilities, greedy top-k under the δ spacing constraint, peak − c
adjustment) but runs over O(#windows) cached summaries instead of
re-processing O(#messages) chat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import LightorConfig
from repro.core.initializer.initializer import HighlightInitializer, InitializerModel
from repro.core.initializer.predictor import FeatureSet, select_spaced_top_k
from repro.core.types import ChatMessage, RedDot
from repro.streaming.events import DotEmitted, DotRetracted, StreamEvent
from repro.streaming.state import IncrementalWindowState, WindowSummary
from repro.utils.validation import ValidationError, require_positive

__all__ = ["EmitPolicy", "StreamingInitializer"]


@dataclass(frozen=True)
class EmitPolicy:
    """When the live engine re-evaluates and which dots it shows.

    Attributes
    ----------
    eval_every_messages:
        Re-score after this many new messages (count trigger).
    eval_every_seconds:
        Re-score when stream time advanced this far since the last
        evaluation (time trigger).  Either trigger suffices.
    min_score:
        Provisional dots need at least this predicted probability to be
        emitted; retraction still applies when a previously emitted dot
        falls below the bar.  The final :meth:`StreamingInitializer.finalize`
        set ignores this bar for batch parity.
    """

    eval_every_messages: int = 50
    eval_every_seconds: float = 30.0
    min_score: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.eval_every_messages, "eval_every_messages")
        require_positive(self.eval_every_seconds, "eval_every_seconds")
        if not 0.0 <= self.min_score <= 1.0:
            raise ValidationError(
                f"min_score must lie in [0, 1], got {self.min_score!r}"
            )


@dataclass
class StreamingInitializer:
    """Incremental chat → red dots engine for one live channel.

    Parameters
    ----------
    model:
        A trained :class:`InitializerModel` (predictor + adjuster).  Use
        :meth:`from_initializer` to borrow it from a fitted batch
        :class:`HighlightInitializer`.
    config:
        Workflow configuration; defaults to the predictor's own config so
        window geometry always matches the trained model.
    k:
        Size of the provisional top-k (defaults to ``config.top_k``).
    policy:
        Emit/retract policy (evaluation cadence and score bar).
    video_id:
        Stamped on every produced :class:`RedDot`.
    max_window_summaries:
        Optional memory bound forwarded to the window state; ``None`` keeps
        exact batch parity at the cost of O(video length) summaries.
    """

    model: InitializerModel
    config: LightorConfig | None = None
    feature_set: FeatureSet | None = None
    k: int | None = None
    policy: EmitPolicy = field(default_factory=EmitPolicy)
    video_id: str = ""
    max_window_summaries: int | None = None
    _state: IncrementalWindowState = field(init=False, repr=False)
    _live: dict[tuple[float, float], RedDot] = field(default_factory=dict, repr=False)
    _messages_since_eval: int = 0
    _sealed_since_eval: bool = False
    _last_eval_time: float = 0.0
    evaluations_run: int = 0
    final_dots: list[RedDot] | None = None
    final_events: list[StreamEvent] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.model.predictor.is_fitted:
            raise ValidationError(
                "streaming initializer needs a fitted model; train the batch "
                "HighlightInitializer first"
            )
        if self.config is None:
            self.config = self.model.predictor.config
        if self.feature_set is None:
            self.feature_set = self.model.predictor.feature_set
        if self.k is None:
            self.k = self.config.top_k
        require_positive(self.k, "k")
        self._state = IncrementalWindowState(
            window_size=self.config.window_size,
            stride=self.config.window_stride,
            max_summaries=self.max_window_summaries,
        )

    @classmethod
    def from_initializer(
        cls, initializer: HighlightInitializer, **overrides
    ) -> "StreamingInitializer":
        """Build a streaming engine sharing a fitted batch Initializer's model."""
        if initializer.model is None:
            raise ValidationError("initializer is not fitted; call fit() first")
        overrides.setdefault("config", initializer.config)
        overrides.setdefault("feature_set", initializer.feature_set)
        return cls(model=initializer.model, **overrides)

    # ------------------------------------------------------------------ feed
    def ingest(self, message: ChatMessage) -> list[StreamEvent]:
        """Fold one chat message in; return any emit/retract events.

        Messages must arrive in timestamp order (live chat order).  The
        engine re-evaluates only at policy-defined checkpoints, so most
        calls return an empty list in O(1).
        """
        if self.final_dots is not None:
            raise ValidationError("stream already finalized; no further messages")
        sealed = self._state.add(message)
        self._messages_since_eval += 1
        if sealed:
            self._sealed_since_eval = True
        if not self._should_evaluate(message.timestamp):
            return []
        return self._reevaluate(message.timestamp)

    def ingest_batch(self, messages: Sequence[ChatMessage]) -> list[StreamEvent]:
        """Fold a timestamp-ordered batch in; return any emit/retract events.

        The window summaries after the call are bit-identical to feeding the
        messages one at a time through :meth:`ingest` (the fold is
        order-exact), so the **finalized** dots cannot depend on how the
        stream was chunked.  The *evaluation* checkpoints, however, coalesce
        to the batch boundary: the emit policy is checked once after the
        whole batch is folded, exactly as :meth:`ingest` checks it once per
        message.  Larger batches therefore mean fewer provisional re-scores —
        that is where batched ingest gets its throughput (see
        ``docs/performance.md``) — while :meth:`refresh` lets a caller force
        the provisional set current at any instant.
        """
        if not messages:
            return []
        if self.final_dots is not None:
            raise ValidationError("stream already finalized; no further messages")
        sealed = self._state.add_batch(messages)
        self._messages_since_eval += len(messages)
        if sealed:
            self._sealed_since_eval = True
        last_timestamp = messages[-1].timestamp
        if not self._should_evaluate(last_timestamp):
            return []
        return self._reevaluate(last_timestamp)

    def refresh(self) -> list[StreamEvent]:
        """Re-evaluate now if any window sealed since the last evaluation.

        Because the provisional top-k is a pure function of the sealed
        window summaries, a refreshed engine's dots depend only on the chat
        ingested so far — never on how it was chunked into calls.  Ingesting
        viewer interactions refreshes first for exactly that reason: plays
        are attributed against the dots for the chat seen so far, making
        batched and per-event ingest attribute identically (the
        batch-equivalence property suite holds the service to this).
        Returns the emit/retract events of the evaluation, if one ran.
        """
        if self.final_dots is not None or not self._sealed_since_eval:
            return []
        return self._reevaluate(self._state.last_timestamp)

    def finalize(self, duration: float | None = None) -> list[RedDot]:
        """Close the stream and return the final (batch-identical) red dots.

        ``duration`` should be the video duration; it defaults to the last
        message timestamp.  Emit/retract events reconciling the provisional
        set with the final set are recorded in :attr:`final_events`.
        """
        if self.final_dots is not None:
            return list(self.final_dots)
        summaries = self._state.finalize(duration)
        stream_time = duration if duration is not None else self._state.last_timestamp
        dots = self._score_and_select(summaries)
        self.final_events = self._diff_live(dots, stream_time, min_score=None)
        self.final_dots = dots
        return list(dots)

    # ------------------------------------------------------------- durability
    def snapshot(self) -> dict:
        """A JSON-safe dict of the whole engine state, round-trip exact.

        Includes the window state, the emitted provisional set (in emission
        order — retraction ordering at the next evaluation depends on it),
        every emit-policy counter and the policy itself, so a restored
        engine evaluates at exactly the checkpoints the original would have.
        The trained model is **not** serialized: it is shared, read-only
        serving state that :meth:`restore` receives from the orchestrator.

        ``final_events`` (the close-time reconciliation diff) is transient
        hand-off data and is not captured; a restored finalized engine
        reports its final dots with an empty reconciliation log.
        """
        from repro.platform import codecs

        return {
            "k": self.k,
            "video_id": self.video_id,
            "max_window_summaries": self.max_window_summaries,
            "policy": codecs.emit_policy_to_dict(self.policy),
            "state": self._state.snapshot(),
            "live": [codecs.red_dot_to_dict(dot) for dot in self._live.values()],
            "messages_since_eval": self._messages_since_eval,
            "sealed_since_eval": self._sealed_since_eval,
            "last_eval_time": self._last_eval_time,
            "evaluations_run": self.evaluations_run,
            "final_dots": (
                None
                if self.final_dots is None
                else [codecs.red_dot_to_dict(dot) for dot in self.final_dots]
            ),
        }

    @classmethod
    def restore(
        cls,
        payload: dict,
        *,
        model: InitializerModel,
        config: LightorConfig | None = None,
        feature_set: FeatureSet | None = None,
    ) -> "StreamingInitializer":
        """Rebuild an engine from :meth:`snapshot` around a fitted ``model``.

        ``model``/``config``/``feature_set`` are the shared serving state the
        snapshot deliberately omits; they must be the same trained objects
        the snapshotted engine used (deterministic retraining reproduces
        them — see ``docs/architecture.md``).
        """
        from repro.platform import codecs

        engine = cls(
            model=model,
            config=config,
            feature_set=feature_set,
            k=payload["k"],
            policy=codecs.emit_policy_from_dict(payload["policy"]),
            video_id=payload["video_id"],
            max_window_summaries=payload["max_window_summaries"],
        )
        engine._state = IncrementalWindowState.restore(payload["state"])
        live = [codecs.red_dot_from_dict(dot) for dot in payload["live"]]
        engine._live = {dot.window: dot for dot in live}
        engine._messages_since_eval = payload["messages_since_eval"]
        engine._sealed_since_eval = payload["sealed_since_eval"]
        engine._last_eval_time = payload["last_eval_time"]
        engine.evaluations_run = payload["evaluations_run"]
        if payload["final_dots"] is not None:
            engine.final_dots = [
                codecs.red_dot_from_dict(dot) for dot in payload["final_dots"]
            ]
        return engine

    # ------------------------------------------------------------------ views
    def current_dots(self) -> list[RedDot]:
        """The currently emitted provisional dots (final dots once closed)."""
        if self.final_dots is not None:
            return list(self.final_dots)
        return sorted(self._live.values(), key=lambda dot: dot.position)

    @property
    def messages_ingested(self) -> int:
        """Total messages folded into the engine."""
        return self._state.messages_seen

    @property
    def last_stream_time(self) -> float:
        """Timestamp of the newest chat message observed."""
        return self._state.last_timestamp

    @property
    def window_summary_count(self) -> int:
        """Sealed windows currently retained (memory gauge)."""
        return self._state.summary_count

    # -------------------------------------------------------------- internals
    def _should_evaluate(self, stream_time: float) -> bool:
        # Scores only depend on sealed windows, so until one seals a re-score
        # would reproduce the previous result — skip it regardless of cadence.
        if not self._sealed_since_eval:
            return False
        if self._messages_since_eval >= self.policy.eval_every_messages:
            return True
        return stream_time - self._last_eval_time >= self.policy.eval_every_seconds

    def _reevaluate(self, stream_time: float) -> list[StreamEvent]:
        self._messages_since_eval = 0
        self._sealed_since_eval = False
        self._last_eval_time = stream_time
        self.evaluations_run += 1
        dots = self._score_and_select(self._state.scorable_summaries())
        return self._diff_live(dots, stream_time, min_score=self.policy.min_score)

    def _score_and_select(self, summaries: list[WindowSummary]) -> list[RedDot]:
        """The batch prediction + adjustment stages over window summaries.

        Normalisation (``WindowFeatureExtractor.normalise``), the logistic
        model, the top-k selection (``select_spaced_top_k``) and the peak
        adjustment (``PeakAdjuster.adjust``) are all the *same objects and
        functions* the batch path runs, applied to the cached summaries —
        parity with ``HighlightInitializer.propose`` is structural.
        """
        if not summaries:
            return []
        raw = np.vstack([summary.raw_array for summary in summaries])
        scaled = self.model.predictor.extractor.normalise(raw)
        features = scaled[:, self.feature_set.column_indices]
        probabilities = self.model.predictor.model.predict_proba(features)
        records = [
            (summary, float(probability), summary.peak, summary.start)
            for summary, probability in zip(summaries, probabilities)
        ]
        selected = select_spaced_top_k(records, self.k, self.config.min_dot_spacing)
        dots = [
            RedDot(
                position=self.model.adjuster.adjust(summary.peak),
                score=score,
                window=(summary.start, summary.end),
                video_id=self.video_id,
            )
            for summary, score, _, _ in selected
        ]
        return sorted(dots, key=lambda dot: dot.position)

    def _diff_live(
        self, dots: list[RedDot], stream_time: float, min_score: float | None
    ) -> list[StreamEvent]:
        """Diff the new top-k against the emitted set → emit/retract events."""
        if min_score is not None:
            dots = [dot for dot in dots if dot.score >= min_score]
        new_live = {dot.window: dot for dot in dots}
        events: list[StreamEvent] = []
        for key, dot in self._live.items():
            if key not in new_live:
                events.append(DotRetracted(stream_time=stream_time, dot=dot))
        for key, dot in new_live.items():
            previous = self._live.get(key)
            if previous is None:
                events.append(DotEmitted(stream_time=stream_time, dot=dot))
            elif previous.position != dot.position:
                # Same window, new position: retract + re-emit keeps the
                # consumer protocol to two verbs.  Score-only wiggles (the
                # running re-normalisation moves every score a little at
                # each evaluation) are updated silently — re-rendering an
                # unmoved dot would be pure churn.
                events.append(DotRetracted(stream_time=stream_time, dot=previous))
                events.append(DotEmitted(stream_time=stream_time, dot=dot))
        self._live = new_live
        return events
