"""Streaming highlight detection: the LIGHTOR workflow over live channels.

The batch pipeline answers "where are the highlights in this *recorded*
video?".  This package answers the deployment question — "where are the
highlights in the stream that is running *right now*?" — with three layers:

1. :mod:`initializer <repro.streaming.initializer>` — an incremental
   prediction + adjustment engine that folds chat messages in one at a time
   (``ingest``) or as a batch in one NumPy pass (``ingest_batch``) and
   maintains a provisional top-k of red dots under an emit/retract policy.
   Finalizing a stream reproduces the batch
   ``HighlightInitializer.propose`` output exactly regardless of how the
   chat was chunked (the parity and batch-equivalence suites pin this
   down).
2. :mod:`extractor <repro.streaming.extractor>` — folds live viewer
   interactions into bounded per-dot play buffers and runs a refinement
   round whenever a dot has gathered enough evidence.
3. :mod:`session <repro.streaming.session>` — per-channel sessions and an
   LRU-bounded orchestrator multiplexing many concurrent channels.

Every stateful class in the stack serializes itself round-trip exactly
(``snapshot()`` / ``restore()``), which is what makes live sessions
crash-safe at the platform tier — see :mod:`repro.platform.recovery`.

Typical usage::

    from repro.streaming import StreamOrchestrator

    orchestrator = StreamOrchestrator(initializer=fitted_initializer)
    for message in live_chat:                      # any number of channels
        events = orchestrator.ingest_message(channel_id, message)
        for event in events:
            render(event)                          # DotEmitted / DotRetracted
    final_dots = orchestrator.close_session(channel_id, duration)
"""

from repro.streaming.events import (
    DotEmitted,
    DotRetracted,
    HighlightRefined,
    StreamEvent,
)
from repro.streaming.extractor import DotAccumulator, StreamingExtractor
from repro.streaming.initializer import EmitPolicy, StreamingInitializer
from repro.streaming.session import StreamOrchestrator, StreamSession
from repro.streaming.state import IncrementalWindowState, WindowSummary

__all__ = [
    "DotAccumulator",
    "DotEmitted",
    "DotRetracted",
    "EmitPolicy",
    "HighlightRefined",
    "IncrementalWindowState",
    "StreamEvent",
    "StreamOrchestrator",
    "StreamSession",
    "StreamingExtractor",
    "StreamingInitializer",
    "WindowSummary",
]
