"""Online Highlight Extractor: Algorithm 2 over a live interaction stream.

The batch Extractor pulls rounds of crowd interactions on demand.  In a live
deployment interactions *arrive* — viewers click red dots while the stream is
still running — so :class:`StreamingExtractor` inverts the control flow:

* raw :class:`Interaction` events are folded into per-user open-play state
  (the same play-reconstruction semantics as
  :func:`repro.core.extractor.plays.interactions_to_plays`);
* completed plays are attributed to the tracked red dots whose ±Δ band they
  touch and accumulate in bounded ring buffers;
* once a dot has gathered ``min_plays_for_refinement`` new plays, one
  refinement round runs — the batch Extractor's filtering → classification →
  aggregation dataflow over the accumulated plays — and the dot moves (or
  gains an exact boundary), emitting a :class:`HighlightRefined` event.

Memory is bounded: each dot keeps at most ``max_plays_per_dot`` plays (a
ring buffer — old evidence ages out) and per-user state is one open-play
record.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import LightorConfig
from repro.core.extractor.extractor import HighlightExtractor
from repro.core.extractor.plays import plays_near_dot
from repro.core.types import Highlight, Interaction, InteractionKind, PlayRecord, RedDot
from repro.streaming.events import HighlightRefined, StreamEvent
from repro.utils.validation import require_positive

__all__ = ["DotAccumulator", "StreamingExtractor"]


@dataclass
class DotAccumulator:
    """Play evidence and refinement state for one tracked red dot."""

    dot: RedDot
    plays: deque = field(default_factory=deque)
    plays_since_refinement: int = 0
    refinement_rounds: int = 0
    highlight: Highlight | None = None

    @property
    def play_count(self) -> int:
        """Plays currently buffered for this dot."""
        return len(self.plays)


@dataclass
class StreamingExtractor:
    """Folds live viewer interactions into per-dot refinement rounds.

    Parameters
    ----------
    config:
        Workflow configuration (Δ radius, filters, iteration caps).
    extractor:
        The batch Extractor whose filtering/classification/aggregation a
        refinement round reuses.
    min_plays_for_refinement:
        New plays a dot must gather before the next refinement round.
    max_plays_per_dot:
        Ring-buffer bound on buffered plays per dot.
    video_duration:
        Used to close dangling plays at end of stream, when known.
    """

    config: LightorConfig = field(default_factory=LightorConfig)
    extractor: HighlightExtractor | None = None
    min_plays_for_refinement: int = 10
    max_plays_per_dot: int = 256
    video_duration: float | None = None
    _dots: dict[tuple, DotAccumulator] = field(default_factory=dict, repr=False)
    _open_play: dict[str, float] = field(default_factory=dict, repr=False)
    _last_position: dict[str, float] = field(default_factory=dict, repr=False)
    interactions_seen: int = 0
    plays_completed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.min_plays_for_refinement, "min_plays_for_refinement")
        require_positive(self.max_plays_per_dot, "max_plays_per_dot")
        if self.extractor is None:
            self.extractor = HighlightExtractor(config=self.config)

    # ------------------------------------------------------------------ dots
    def track(self, dot: RedDot) -> None:
        """Start accumulating plays for ``dot`` (idempotent per window key)."""
        key = self._key(dot)
        if key not in self._dots:
            self._dots[key] = DotAccumulator(
                dot=dot, plays=deque(maxlen=self.max_plays_per_dot)
            )

    def untrack(self, dot: RedDot) -> None:
        """Stop tracking ``dot`` (a retraction); its evidence is dropped."""
        self._dots.pop(self._key(dot), None)

    def sync_dots(self, dots: list[RedDot]) -> None:
        """Reconcile the tracked set with the engine's current dots."""
        wanted = {self._key(dot): dot for dot in dots}
        for key in list(self._dots):
            if key not in wanted:
                del self._dots[key]
        for key, dot in wanted.items():
            if key not in self._dots:
                self._dots[key] = DotAccumulator(
                    dot=dot, plays=deque(maxlen=self.max_plays_per_dot)
                )

    def tracked_dots(self) -> list[RedDot]:
        """Current positions of the tracked dots, sorted by position."""
        return sorted(
            (accumulator.dot for accumulator in self._dots.values()),
            key=lambda dot: dot.position,
        )

    def refined_highlights(self) -> list[Highlight]:
        """The exact boundaries extracted so far, sorted by start."""
        return sorted(
            (
                accumulator.highlight
                for accumulator in self._dots.values()
                if accumulator.highlight is not None
            ),
            key=lambda highlight: highlight.start,
        )

    # ------------------------------------------------------------------ feed
    def ingest(self, interaction: Interaction) -> list[StreamEvent]:
        """Fold one raw interaction in; returns refinement events, if any."""
        self.interactions_seen += 1
        completed = self._advance_user(interaction)
        events: list[StreamEvent] = []
        for play in completed:
            events.extend(self._attribute(play))
        return events

    def ingest_batch(self, interactions: Sequence[Interaction]) -> list[StreamEvent]:
        """Fold a batch of raw interactions in; returns refinement events.

        The per-user open-play state machine is inherently sequential, so
        this simply delegates to :meth:`ingest` per event in arrival order —
        the batch entry point exists so callers can hand a whole batch over
        one boundary, and so the two paths can never drift apart.
        """
        events: list[StreamEvent] = []
        for interaction in interactions:
            events.extend(self.ingest(interaction))
        return events

    def ingest_play(self, play: PlayRecord) -> list[StreamEvent]:
        """Fold an already-reconstructed play in (platform pre-aggregation)."""
        self.plays_completed += 1
        return self._attribute(play)

    def flush(self) -> list[StreamEvent]:
        """Close every open play (end of stream) and attribute the remains."""
        events: list[StreamEvent] = []
        for user, start in list(self._open_play.items()):
            end = self._last_position.get(user, start)
            if self.video_duration is not None:
                end = min(max(end, start), self.video_duration)
            if end > start:
                self.plays_completed += 1
                events.extend(self._attribute(PlayRecord(user=user, start=start, end=end)))
        self._open_play.clear()
        self._last_position.clear()
        return events

    # ------------------------------------------------------------- durability
    def snapshot(self) -> dict:
        """A JSON-safe dict of the extractor state, round-trip exact.

        Tracked dots are serialized **in insertion order** — attribution
        iterates the tracked set in that order, so preserving it keeps a
        restored extractor's refinement events byte-identical to an
        uninterrupted run.  Per-user open-play state and the completed-play
        ring buffers are captured in full; the workflow config and the batch
        extractor are shared serving state supplied again at :meth:`restore`.
        """
        from repro.platform import codecs

        return {
            "min_plays_for_refinement": self.min_plays_for_refinement,
            "max_plays_per_dot": self.max_plays_per_dot,
            "video_duration": self.video_duration,
            "interactions_seen": self.interactions_seen,
            "plays_completed": self.plays_completed,
            # Pair lists, not JSON objects: insertion order is semantic (it
            # is flush()'s iteration order) and a serializer is free to
            # reorder object keys (sort_keys), which would scramble it.
            "open_play": [[user, start] for user, start in self._open_play.items()],
            "last_position": [
                [user, position] for user, position in self._last_position.items()
            ],
            "dots": [
                {
                    "dot": codecs.red_dot_to_dict(accumulator.dot),
                    "plays": [codecs.play_record_to_dict(p) for p in accumulator.plays],
                    "plays_since_refinement": accumulator.plays_since_refinement,
                    "refinement_rounds": accumulator.refinement_rounds,
                    "highlight": (
                        None
                        if accumulator.highlight is None
                        else codecs.highlight_to_dict(accumulator.highlight)
                    ),
                }
                for accumulator in self._dots.values()
            ],
        }

    @classmethod
    def restore(
        cls, payload: dict, *, config: LightorConfig | None = None
    ) -> "StreamingExtractor":
        """Rebuild an extractor from :meth:`snapshot` over a shared config."""
        from repro.platform import codecs

        extractor = cls(
            config=config if config is not None else LightorConfig(),
            min_plays_for_refinement=payload["min_plays_for_refinement"],
            max_plays_per_dot=payload["max_plays_per_dot"],
            video_duration=payload["video_duration"],
        )
        extractor.interactions_seen = payload["interactions_seen"]
        extractor.plays_completed = payload["plays_completed"]
        extractor._open_play = {user: start for user, start in payload["open_play"]}
        extractor._last_position = {
            user: position for user, position in payload["last_position"]
        }
        for entry in payload["dots"]:
            dot = codecs.red_dot_from_dict(entry["dot"])
            accumulator = DotAccumulator(
                dot=dot,
                plays=deque(
                    (codecs.play_record_from_dict(p) for p in entry["plays"]),
                    maxlen=extractor.max_plays_per_dot,
                ),
                plays_since_refinement=entry["plays_since_refinement"],
                refinement_rounds=entry["refinement_rounds"],
                highlight=(
                    None
                    if entry["highlight"] is None
                    else codecs.highlight_from_dict(entry["highlight"])
                ),
            )
            extractor._dots[extractor._key(dot)] = accumulator
        return extractor

    # -------------------------------------------------------------- internals
    @staticmethod
    def _key(dot: RedDot) -> tuple:
        """Stable identity of a dot across refinement moves.

        The source chat window identifies a dot even as refinement shifts
        its position; dots without a window (hand-placed) key on position.
        """
        if dot.window is not None:
            return ("window", dot.window)
        return ("position", dot.position)

    def _advance_user(self, interaction: Interaction) -> list[PlayRecord]:
        """Per-user open-play bookkeeping, mirroring ``interactions_to_plays``."""
        user = interaction.user
        completed: list[PlayRecord] = []
        self._last_position[user] = interaction.timestamp
        open_start = self._open_play.get(user)
        if interaction.kind is InteractionKind.PLAY:
            if open_start is None:
                self._open_play[user] = interaction.timestamp
        elif interaction.kind in (InteractionKind.PAUSE, InteractionKind.STOP):
            if open_start is not None and interaction.timestamp > open_start:
                completed.append(
                    PlayRecord(user=user, start=open_start, end=interaction.timestamp)
                )
            self._open_play.pop(user, None)
        elif interaction.kind in (
            InteractionKind.SEEK_FORWARD,
            InteractionKind.SEEK_BACKWARD,
        ):
            if open_start is not None and interaction.timestamp > open_start:
                completed.append(
                    PlayRecord(user=user, start=open_start, end=interaction.timestamp)
                )
            # Seeking restarts playback at the target position.
            if interaction.target is not None:
                self._open_play[user] = interaction.target
                self._last_position[user] = interaction.target
            else:
                self._open_play.pop(user, None)
        self.plays_completed += len(completed)
        return completed

    def _attribute(self, play: PlayRecord) -> list[StreamEvent]:
        """Credit a completed play to every dot whose ±Δ band it touches."""
        events: list[StreamEvent] = []
        radius = self.config.play_radius
        for accumulator in self._dots.values():
            position = accumulator.dot.position
            if play.start <= position + radius and play.end >= position - radius:
                accumulator.plays.append(play)
                accumulator.plays_since_refinement += 1
                if (
                    accumulator.plays_since_refinement >= self.min_plays_for_refinement
                    and accumulator.refinement_rounds
                    < self.config.max_extractor_iterations
                ):
                    event = self._refine(accumulator, play.end)
                    if event is not None:
                        events.append(event)
        return events

    def _refine(self, accumulator: DotAccumulator, stream_time: float) -> StreamEvent | None:
        """One refinement round over the accumulated plays."""
        accumulator.plays_since_refinement = 0
        accumulator.refinement_rounds += 1
        buffered = list(accumulator.plays)

        def replay_source(current_dot: RedDot, round_index: int) -> list[PlayRecord]:
            # A live refinement round reuses the buffered plays; fresh
            # evidence arrives via future rounds, not within one.
            return plays_near_dot(buffered, current_dot, radius=self.config.play_radius)

        result = self.extractor.extract(
            accumulator.dot, replay_source, video_duration=self.video_duration
        )
        if result.highlight is not None:
            accumulator.highlight = result.highlight
            accumulator.dot = accumulator.dot.moved_to(result.highlight.start)
            return HighlightRefined(
                stream_time=stream_time,
                dot=accumulator.dot,
                highlight=result.highlight,
            )
        if result.dot.position != accumulator.dot.position:
            moved = result.dot.position
            accumulator.dot = accumulator.dot.moved_to(moved)
            return HighlightRefined(
                stream_time=stream_time, dot=accumulator.dot, moved_to=moved
            )
        return None
