"""Incremental per-channel window state for the streaming engine.

The batch Initializer re-windows, re-tokenizes and re-featurises the whole
chat log on every call — O(video) work per request.  The streaming engine
instead folds each arriving message into the open windows (a constant number
of them) and *seals* a window once the stream has moved past its end: at
seal time the window's raw feature triple and chat peak are computed once,
its messages are dropped, and only a small :class:`WindowSummary` is kept.

Scoring (normalise → logistic → top-k) is deferred to evaluation points and
runs over the summaries — O(#windows), never O(#messages) — which is what
makes per-message updates cheap enough for live traffic.

Parity: sealing uses :class:`~repro.core.initializer.features.RunningWindowFeatures`
and :meth:`~repro.core.initializer.windows.SlidingWindow.peak_timestamp`,
the same code the batch path replays, so a finalized stream reproduces the
batch windows, features and peaks exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.initializer.features import RunningWindowFeatures, WindowFeatures
from repro.core.initializer.windows import (
    SlidingWindow,
    StreamingWindowBuilder,
    resolve_overlapping_windows,
)
from repro.core.types import ChatMessage
from repro.ml.text import tokenize
from repro.utils.validation import ValidationError

__all__ = ["WindowSummary", "IncrementalWindowState"]


@dataclass(frozen=True)
class WindowSummary:
    """Everything the scorer needs from a sealed window, messages dropped."""

    start: float
    end: float
    message_count: int
    peak: float
    raw: WindowFeatures

    @property
    def raw_array(self) -> np.ndarray:
        """The raw feature triple as a ``(3,)`` vector."""
        return self.raw.as_array()


@dataclass
class IncrementalWindowState:
    """Maintains sealed window summaries for one live chat stream.

    Parameters
    ----------
    window_size / stride / min_messages:
        The sliding-window geometry (must match the trained Initializer's
        configuration for parity with the batch path).
    max_summaries:
        Optional hard cap on retained summaries.  ``None`` (default) keeps
        every sealed window, which exact batch parity requires — the final
        normalisation spans the whole video.  A bounded engine drops the
        oldest summaries once the cap is hit, trading exact parity at
        ``finalize`` for O(1) memory on endless streams.
    """

    window_size: float
    stride: float
    min_messages: int = 1
    max_summaries: int | None = None
    _builder: StreamingWindowBuilder = field(init=False, repr=False)
    _summaries: list[WindowSummary] = field(default_factory=list, repr=False)
    # With overlapping windows (stride < window_size) a message is sealed
    # into several windows; its tokens are computed once at the first seal
    # and shared until the seal frontier moves past it.  Keyed by object id
    # with the message held alongside, so an id can never be recycled while
    # its entry is alive.
    _token_cache: dict[int, tuple[ChatMessage, list[str]]] = field(
        default_factory=dict, repr=False
    )
    dropped_summaries: int = 0
    last_timestamp: float = 0.0
    finalized: bool = False

    def __post_init__(self) -> None:
        self._builder = StreamingWindowBuilder(
            window_size=self.window_size,
            stride=self.stride,
            min_messages=self.min_messages,
        )

    # ------------------------------------------------------------------ feed
    def add(self, message: ChatMessage) -> list[WindowSummary]:
        """Fold one message in; return summaries of any windows it sealed."""
        self.last_timestamp = max(self.last_timestamp, message.timestamp)
        sealed = [self._summarise(window) for window in self._builder.add(message)]
        if sealed:
            self._summaries.extend(sealed)
            self._enforce_cap()
            self._prune_token_cache()
        return sealed

    def add_batch(self, messages: Sequence[ChatMessage]) -> list[WindowSummary]:
        """Fold a timestamp-ordered batch in; return the summaries it sealed.

        Equivalent to calling :meth:`add` once per message — identical window
        membership, identical seal order, bit-identical summaries — but the
        membership fold runs through
        :meth:`~repro.core.initializer.windows.StreamingWindowBuilder.add_batch`
        (one NumPy pass over the batch timestamps) and cap enforcement plus
        token-cache pruning run once per batch instead of once per message.
        """
        if not messages:
            return []
        sealed = [self._summarise(window) for window in self._builder.add_batch(messages)]
        self.last_timestamp = max(self.last_timestamp, messages[-1].timestamp)
        if sealed:
            self._summaries.extend(sealed)
            self._enforce_cap()
            self._prune_token_cache()
        return sealed

    def finalize(self, duration: float | None = None) -> list[WindowSummary]:
        """Close the stream and return the *scorable* window set.

        The remaining open windows are flushed (truncated at ``duration``,
        exactly like the batch builder), then the min-message filter and the
        greedy overlap resolution run over all summaries — the same global
        steps :func:`~repro.core.initializer.windows.build_sliding_windows`
        applies — so the returned list corresponds one-to-one with the batch
        windows.

        ``duration`` defaults to the last seen message timestamp.  A
        duration *before* chat already observed is rejected: the batch
        engine's ``VideoChatLog`` refuses such data outright, and silently
        scoring windows past the declared end would hand out red dots beyond
        the video.
        """
        if duration is not None and duration < self.last_timestamp:
            raise ValidationError(
                f"cannot finalize at {duration}s: chat was already observed at "
                f"{self.last_timestamp}s"
            )
        if not self.finalized:
            closing = duration if duration is not None else self.last_timestamp
            if closing > 0:
                self._summaries.extend(
                    self._summarise(window) for window in self._builder.flush(closing)
                )
                self._enforce_cap()
            self._token_cache.clear()
            self.finalized = True
        return self._resolved(self._summaries)

    # ------------------------------------------------------------- durability
    def snapshot(self) -> dict:
        """A JSON-safe dict capturing the full window state, round-trip exact.

        Everything the fold depends on is included: the sealed summaries, the
        builder's open windows (with their member messages), the seal
        frontier and the monotonicity watermark.  :meth:`restore` rebuilds a
        state object that is *bit-identical in behaviour* — feeding the same
        subsequent messages to the original and the restored state produces
        the same sealed summaries and the same finalized window set.

        The token cache is deliberately absent: it is a pure cache keyed on
        message object identity (which cannot survive a process restart) and
        tokenisation is deterministic, so a restored state simply re-derives
        tokens on the next seal.
        """
        from repro.platform import codecs

        builder = self._builder
        return {
            "window_size": self.window_size,
            "stride": self.stride,
            "min_messages": self.min_messages,
            "max_summaries": self.max_summaries,
            "summaries": [codecs.window_summary_to_dict(s) for s in self._summaries],
            "dropped_summaries": self.dropped_summaries,
            "last_timestamp": self.last_timestamp,
            "finalized": self.finalized,
            "builder": {
                "next_seal": builder._next_seal,
                # -inf ("no message seen yet") is mapped to None so the
                # payload stays strict-JSON (allow_nan=False never raises).
                "last_timestamp": codecs.finite_or_none(builder._last_timestamp),
                "messages_seen": builder.messages_seen,
                "windows_sealed": builder.windows_sealed,
                "active": [
                    [index, [codecs.chat_message_to_dict(m) for m in window.messages]]
                    for index, window in sorted(builder._active.items())
                ],
            },
        }

    @classmethod
    def restore(cls, payload: dict) -> "IncrementalWindowState":
        """Rebuild a window state from :meth:`snapshot`'s payload."""
        from repro.platform import codecs

        state = cls(
            window_size=payload["window_size"],
            stride=payload["stride"],
            min_messages=payload["min_messages"],
            max_summaries=payload["max_summaries"],
        )
        state._summaries = [
            codecs.window_summary_from_dict(s) for s in payload["summaries"]
        ]
        state.dropped_summaries = payload["dropped_summaries"]
        state.last_timestamp = payload["last_timestamp"]
        state.finalized = payload["finalized"]
        builder = state._builder
        builder_payload = payload["builder"]
        builder._next_seal = builder_payload["next_seal"]
        builder._last_timestamp = codecs.none_or_neg_inf(builder_payload["last_timestamp"])
        builder.messages_seen = builder_payload["messages_seen"]
        builder.windows_sealed = builder_payload["windows_sealed"]
        for index, messages in builder_payload["active"]:
            # Open-window geometry is arithmetic over the index, the exact
            # expression the builder itself uses, so restored floats match.
            start = index * builder.stride
            window = SlidingWindow(start=start, end=start + builder.window_size)
            window.messages = [codecs.chat_message_from_dict(m) for m in messages]
            builder._active[index] = window
        return state

    # ------------------------------------------------------------------ views
    def scorable_summaries(self) -> list[WindowSummary]:
        """The current sealed windows after overlap resolution.

        This is the *provisional* view used mid-stream: it only covers
        windows whose chat has fully played out (a window seals
        ``window_size`` seconds after it opens), so the live engine's dots
        trail the live edge by at most one window.
        """
        return self._resolved(self._summaries)

    @property
    def summary_count(self) -> int:
        """Number of sealed windows currently retained."""
        return len(self._summaries)

    @property
    def active_window_count(self) -> int:
        """Number of windows still open at the live edge."""
        return self._builder.active_window_count

    @property
    def messages_seen(self) -> int:
        """Total messages folded into this state."""
        return self._builder.messages_seen

    # -------------------------------------------------------------- internals
    def _summarise(self, window: SlidingWindow) -> WindowSummary:
        running = RunningWindowFeatures()
        for message in window.messages:
            running.add(message.text, tokens=self._tokens_for(message))
        return WindowSummary(
            start=window.start,
            end=window.end,
            message_count=window.message_count,
            peak=window.peak_timestamp(),
            raw=running.raw(),
        )

    def _tokens_for(self, message: ChatMessage) -> list[str]:
        if self.stride >= self.window_size:
            # Disjoint windows: each message is summarised exactly once, so
            # a cache would be pure overhead.
            return tokenize(message.text)
        entry = self._token_cache.get(id(message))
        if entry is not None and entry[0] is message:
            return entry[1]
        tokens = tokenize(message.text)
        self._token_cache[id(message)] = (message, tokens)
        return tokens

    def _prune_token_cache(self) -> None:
        if not self._token_cache:
            return
        frontier = self._builder.frontier_start
        self._token_cache = {
            key: entry
            for key, entry in self._token_cache.items()
            if entry[0].timestamp >= frontier
        }

    def _resolved(self, summaries: list[WindowSummary]) -> list[WindowSummary]:
        if self.stride >= self.window_size:
            return sorted(summaries, key=lambda s: s.start)
        return resolve_overlapping_windows(summaries)

    def _enforce_cap(self) -> None:
        if self.max_summaries is not None and len(self._summaries) > self.max_summaries:
            overflow = len(self._summaries) - self.max_summaries
            del self._summaries[:overflow]
            self.dropped_summaries += overflow
