"""Chat crawler (Figure 5's "Web Crawler" box).

The crawler pulls chat replays from the streaming platform's API into the
back-end store.  Two modes mirror the paper:

* **offline crawling** — periodically scans a configured list of popular
  channels and crawls chat for any recorded video that is not in the store
  yet;
* **online crawling** — crawls a single video on demand, triggered by the web
  service when a user opens a video whose chat has not been crawled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platform.api import SimulatedStreamingAPI
from repro.platform.backends import StorageBackend
from repro.utils.logging import get_logger
from repro.utils.validation import require_positive

__all__ = ["ChatCrawler", "CrawlReport"]

_LOGGER = get_logger("platform.crawler")


@dataclass(frozen=True)
class CrawlReport:
    """Summary of one crawling pass."""

    channels_visited: int
    videos_seen: int
    videos_crawled: int
    messages_stored: int


@dataclass
class ChatCrawler:
    """Crawls chat replays from the platform API into the store."""

    api: SimulatedStreamingAPI
    store: StorageBackend
    watched_channels: list[str] = field(default_factory=list)

    # --------------------------------------------------------------- online
    def crawl_video(self, video_id: str) -> int:
        """Crawl one video's chat on demand; returns the message count.

        Already-crawled videos are skipped (the store is authoritative).
        """
        if not self.store.has_video(video_id):
            self.store.put_video(self.api.get_video(video_id))
        if self.store.has_chat(video_id):
            return len(self.store.get_chat(video_id))
        messages = self.api.get_chat_replay(video_id)
        count = self.store.put_chat(video_id, messages)
        _LOGGER.debug("crawled %d chat messages for %s", count, video_id)
        return count

    # -------------------------------------------------------------- offline
    def watch_channel(self, channel: str) -> None:
        """Add a channel to the offline crawling list."""
        if channel not in self.watched_channels:
            self.watched_channels.append(channel)

    def watch_top_channels(self, game: str, count: int = 10) -> None:
        """Watch the top ``count`` channels of ``game``."""
        require_positive(count, "count")
        for channel in self.api.top_channels(game, count):
            self.watch_channel(channel)

    def offline_pass(self, videos_per_channel: int | None = None) -> CrawlReport:
        """Scan every watched channel and crawl any un-crawled recorded video."""
        videos_seen = 0
        videos_crawled = 0
        messages_stored = 0
        for channel in self.watched_channels:
            for video in self.api.recent_videos(channel, videos_per_channel):
                videos_seen += 1
                if not self.store.has_video(video.video_id):
                    self.store.put_video(video)
                if self.store.has_chat(video.video_id):
                    continue
                messages_stored += self.crawl_video(video.video_id)
                videos_crawled += 1
        return CrawlReport(
            channels_visited=len(self.watched_channels),
            videos_seen=videos_seen,
            videos_crawled=videos_crawled,
            messages_stored=messages_stored,
        )
