"""In-memory reference implementation of the storage-backend contract.

This is the store the seed platform shipped with, now expressed as a
:class:`~repro.platform.backends.base.StorageBackend`.  It remains the
default backend: dependency-free, fast, and the semantic reference the
contract test suite holds every other backend to.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video
from repro.platform.backends.base import HighlightRecord, StorageBackend
from repro.utils.validation import ValidationError

__all__ = ["InMemoryStore"]


@dataclass
class InMemoryStore(StorageBackend):
    """Stores videos, chat, interactions, red dots and highlight results."""

    _videos: dict[str, Video] = field(default_factory=dict, repr=False)
    _chat: dict[str, list[ChatMessage]] = field(default_factory=dict, repr=False)
    _interactions: dict[str, list[Interaction]] = field(default_factory=dict, repr=False)
    _red_dots: dict[str, list[RedDot]] = field(default_factory=dict, repr=False)
    _highlights: dict[str, list[HighlightRecord]] = field(default_factory=dict, repr=False)
    _session_snapshots: dict[str, str] = field(default_factory=dict, repr=False)

    # ---------------------------------------------------------------- videos
    def put_video(self, video: Video) -> None:
        """Insert or replace video metadata."""
        self._videos[video.video_id] = video

    def get_video(self, video_id: str) -> Video:
        """Return the stored video or raise if unknown."""
        try:
            return self._videos[video_id]
        except KeyError as error:
            raise ValidationError(f"unknown video id {video_id!r}") from error

    def has_video(self, video_id: str) -> bool:
        """Whether the video is known to the store."""
        return video_id in self._videos

    def list_videos(self) -> list[Video]:
        """All stored videos, ordered by id."""
        return [self._videos[key] for key in sorted(self._videos)]

    # ------------------------------------------------------------------ chat
    def put_chat(self, video_id: str, messages: Iterable[ChatMessage]) -> int:
        """Store chat for a video (idempotent: replaces any previous crawl).

        Returns the number of messages stored.
        """
        self._require_known_video(video_id, "store chat")
        stored = sorted(messages, key=lambda m: m.timestamp)
        self._chat[video_id] = stored
        return len(stored)

    def append_chat(self, video_id: str, messages: Iterable[ChatMessage]) -> int:
        """Append live-ingested chat in arrival order; returns the new size."""
        self._require_known_video(video_id, "append chat")
        log = self._chat.setdefault(video_id, [])
        log.extend(messages)
        return len(log)

    def has_chat(self, video_id: str) -> bool:
        """Whether chat has been crawled for the video."""
        return video_id in self._chat and len(self._chat[video_id]) > 0

    def get_chat(self, video_id: str) -> list[ChatMessage]:
        """Return the crawled chat messages (empty list when not crawled)."""
        return list(self._chat.get(video_id, []))

    def count_chat(self, video_id: str) -> int:
        """Number of stored chat messages for the video (no copy)."""
        return len(self._chat.get(video_id, ()))

    # ---------------------------------------------------------- interactions
    def log_interactions(self, video_id: str, interactions: Iterable[Interaction]) -> int:
        """Append viewer interactions for a video; returns the new log size."""
        self._require_known_video(video_id, "log interactions")
        log = self._interactions.setdefault(video_id, [])
        log.extend(interactions)
        return len(log)

    def get_interactions(self, video_id: str) -> list[Interaction]:
        """All logged interactions for the video, in arrival (log) order.

        Arrival order is preserved rather than sorting by video position so
        that per-user causality survives backward seeks (re-watches).
        """
        return list(self._interactions.get(video_id, []))

    def count_interactions(self, video_id: str) -> int:
        """Number of logged interactions for the video (no copy)."""
        return len(self._interactions.get(video_id, ()))

    # -------------------------------------------------------------- red dots
    def put_red_dots(self, video_id: str, dots: Iterable[RedDot]) -> None:
        """Store the current red dots for a video (replaces previous dots)."""
        self._require_known_video(video_id, "store red dots")
        self._red_dots[video_id] = sorted(dots, key=lambda d: d.position)

    def get_red_dots(self, video_id: str) -> list[RedDot]:
        """The current red dots for the video (empty when none computed)."""
        return list(self._red_dots.get(video_id, []))

    def has_red_dots(self, video_id: str) -> bool:
        """Whether red dots were ever computed for the video (even zero)."""
        return video_id in self._red_dots

    # ------------------------------------------------------------ highlights
    def put_highlight(
        self, video_id: str, highlight: Highlight, source: str = "extractor"
    ) -> HighlightRecord:
        """Append a refined highlight result; versions increase monotonically."""
        self._require_known_video(video_id, "store highlights")
        records = self._highlights.setdefault(video_id, [])
        record = HighlightRecord(
            video_id=video_id, highlight=highlight, version=len(records) + 1, source=source
        )
        records.append(record)
        return record

    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        """Every stored highlight record for the video, in version order."""
        return list(self._highlights.get(video_id, []))

    # ----------------------------------------------------- session snapshots
    def put_session_snapshot(self, video_id: str, payload: dict) -> None:
        """Store (replacing) the checkpoint of a live session.

        The payload is stored as its strict-JSON encoding — the exact bytes
        a durable backend would write — which both enforces the contract's
        JSON-safety requirement and decouples the stored checkpoint from
        later mutation of the caller's dict.
        """
        self._require_known_video(video_id, "store a session snapshot")
        self._session_snapshots[video_id] = json.dumps(payload, allow_nan=False)

    def get_session_snapshots(self) -> dict[str, dict]:
        """Every stored session checkpoint, keyed by video id."""
        return {
            video_id: json.loads(text)
            for video_id, text in sorted(self._session_snapshots.items())
        }

    def delete_session_snapshot(self, video_id: str) -> bool:
        """Drop a session checkpoint; returns whether one existed."""
        return self._session_snapshots.pop(video_id, None) is not None

    def get_session_snapshot(self, video_id: str) -> dict | None:
        """The stored checkpoint for one video (single lookup)."""
        text = self._session_snapshots.get(video_id)
        return None if text is None else json.loads(text)

    def get_chat_since(self, video_id: str, offset: int) -> list[ChatMessage]:
        """Chat rows from ``offset`` on (slices without copying the prefix)."""
        return self._chat.get(video_id, [])[offset:]

    def get_interactions_since(self, video_id: str, offset: int) -> list[Interaction]:
        """Interaction rows from ``offset`` on."""
        return self._interactions.get(video_id, [])[offset:]

    # ------------------------------------------------------ channel migration
    def delete_channel(self, video_id: str) -> bool:
        """Remove every stored row for one channel (migration source cleanup)."""
        existed = video_id in self._videos
        for table in (
            self._videos,
            self._chat,
            self._interactions,
            self._red_dots,
            self._highlights,
            self._session_snapshots,
        ):
            table.pop(video_id, None)
        return existed

    # --------------------------------------------------------------- summary
    def stats(self) -> dict[str, int]:
        """Coarse row counts, useful for monitoring and tests."""
        return {
            "videos": len(self._videos),
            "videos_with_chat": sum(1 for v in self._videos if self.has_chat(v)),
            "chat_messages": sum(len(m) for m in self._chat.values()),
            "interactions": sum(len(i) for i in self._interactions.values()),
            "red_dots": sum(len(d) for d in self._red_dots.values()),
            "highlight_records": sum(len(h) for h in self._highlights.values()),
            "session_snapshots": len(self._session_snapshots),
        }
