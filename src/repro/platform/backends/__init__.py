"""Pluggable storage backends behind the LIGHTOR platform tier.

* :mod:`base <repro.platform.backends.base>` — the :class:`StorageBackend`
  contract and the :class:`HighlightRecord` value object.
* :mod:`memory <repro.platform.backends.memory>` — the in-memory reference
  implementation (the default backend).
* :mod:`sqlite <repro.platform.backends.sqlite>` — a durable, dependency-free
  SQLite backend (stdlib ``sqlite3``, WAL mode).

:func:`create_backend` is the one factory every entry point (CLI, sharded
service) goes through, so adding a backend means one new module and one new
branch here.
"""

from __future__ import annotations

from pathlib import Path

from repro.platform.backends.base import HighlightRecord, StorageBackend
from repro.platform.backends.memory import InMemoryStore
from repro.platform.backends.sqlite import SQLiteBusyError, SQLiteStore
from repro.utils.validation import ValidationError

__all__ = [
    "BACKEND_KINDS",
    "MEMORY_DB_PATH",
    "HighlightRecord",
    "InMemoryStore",
    "SQLiteBusyError",
    "SQLiteStore",
    "StorageBackend",
    "create_backend",
    "is_memory_path",
]

BACKEND_KINDS = ("memory", "sqlite")

# SQLite's name for its in-process throwaway database.  Database paths flow
# through the platform as either ``str`` or ``pathlib.Path``; every check for
# "is this the in-memory database?" must treat the two identically, which is
# what :func:`is_memory_path` exists for.
MEMORY_DB_PATH = ":memory:"


def is_memory_path(path: str | Path | None) -> bool:
    """Whether ``path`` names SQLite's in-process throwaway database.

    Accepts ``str`` and :class:`~pathlib.Path` alike (``Path(":memory:")``
    stringifies back to ``":memory:"``), so shard-suffixing and durable-path
    filtering behave the same however the caller spelled the path.
    """
    return path is not None and str(path) == MEMORY_DB_PATH


def create_backend(kind: str, path: str | Path | None = None) -> StorageBackend:
    """Build a storage backend by name.

    Parameters
    ----------
    kind:
        ``"memory"`` or ``"sqlite"``.
    path:
        Database path for the SQLite backend (defaults to ``":memory:"``);
        must be omitted for the memory backend.
    """
    if kind == "memory":
        if path is not None:
            raise ValidationError("the memory backend takes no database path")
        return InMemoryStore()
    if kind == "sqlite":
        return SQLiteStore(path if path is not None else MEMORY_DB_PATH)
    raise ValidationError(
        f"unknown storage backend {kind!r} (expected one of {BACKEND_KINDS})"
    )
