"""The storage-backend contract of the LIGHTOR platform tier.

The paper's deployment (Figure 5) puts a database behind the web service.
:class:`StorageBackend` is that database's contract: videos, crawled chat,
viewer-interaction logs, red dots and versioned highlight results.  Every
backend — the in-memory reference implementation, the SQLite store, or a
future DBMS adapter — implements the same primitives and therefore passes
the same contract test suite (``tests/test_backends.py``).

Semantics every backend must honour:

* **chat ingest is idempotent** — ``put_chat`` replaces any previous crawl
  and stores messages sorted by timestamp; ``append_chat`` is the
  *incremental* variant for live ingest (append in arrival order, one
  transaction per batch);
* **interaction logs are append-only** and preserve arrival order (per-user
  causality survives backward seeks);
* **red dots replace** and are stored sorted by position; an empty computed
  set is remembered (``has_red_dots``) so it is not confused with
  "never computed";
* **highlight results are versioned** — ``put_highlight`` appends with a
  monotonically increasing version per video;
* **session snapshots are the open-session registry** — one strict-JSON
  checkpoint per live session, replaced atomically (one transaction per
  checkpoint on durable backends) and deleted on clean close, so
  ``get_session_snapshots`` after a crash is exactly the set of sessions
  recovery must rebuild;
* **unknown video ids are errors** for every write and for ``get_video``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable

from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video, VideoChatLog
from repro.utils.validation import ValidationError

__all__ = ["HighlightRecord", "StorageBackend"]


@dataclass(frozen=True)
class HighlightRecord:
    """A stored highlight result for a video, versioned by refinement round."""

    video_id: str
    highlight: Highlight
    version: int
    source: str = "extractor"


class StorageBackend(abc.ABC):
    """Abstract back-end store behind the LIGHTOR web service."""

    # ---------------------------------------------------------------- videos
    @abc.abstractmethod
    def put_video(self, video: Video) -> None:
        """Insert or replace video metadata."""

    @abc.abstractmethod
    def get_video(self, video_id: str) -> Video:
        """Return the stored video or raise :class:`ValidationError`."""

    @abc.abstractmethod
    def has_video(self, video_id: str) -> bool:
        """Whether the video is known to the store."""

    @abc.abstractmethod
    def list_videos(self) -> list[Video]:
        """All stored videos, ordered by id."""

    # ------------------------------------------------------------------ chat
    @abc.abstractmethod
    def put_chat(self, video_id: str, messages: Iterable[ChatMessage]) -> int:
        """Store chat for a video (idempotent: replaces any previous crawl).

        Returns the number of messages stored.
        """

    @abc.abstractmethod
    def append_chat(self, video_id: str, messages: Iterable[ChatMessage]) -> int:
        """Append live-ingested chat for a video; returns the new chat size.

        This is the batched live-ingest primitive: unlike :meth:`put_chat`
        (idempotent replace of a whole crawl), ``append_chat`` extends the
        stored log in arrival order — callers feed timestamp-ordered live
        chat, so the stored log stays sorted.  Durable backends must commit
        each call as **one transaction** (one fsync per batch, not per
        message); that is what makes a chat firehose survivable.  Unknown
        video ids are errors, as for every write.
        """

    @abc.abstractmethod
    def has_chat(self, video_id: str) -> bool:
        """Whether chat has been crawled for the video."""

    @abc.abstractmethod
    def get_chat(self, video_id: str) -> list[ChatMessage]:
        """Return the crawled chat messages (empty list when not crawled)."""

    def count_chat(self, video_id: str) -> int:
        """Number of stored chat messages for the video.

        The default materialises the log; backends override with an O(1)
        count — the checkpoint path reads this on every snapshot.
        """
        return len(self.get_chat(video_id))

    # ---------------------------------------------------------- interactions
    @abc.abstractmethod
    def log_interactions(self, video_id: str, interactions: Iterable[Interaction]) -> int:
        """Append viewer interactions for a video; returns the new log size."""

    @abc.abstractmethod
    def get_interactions(self, video_id: str) -> list[Interaction]:
        """All logged interactions for the video, in arrival (log) order."""

    def count_interactions(self, video_id: str) -> int:
        """Number of logged interactions for the video (override for O(1))."""
        return len(self.get_interactions(video_id))

    # -------------------------------------------------------------- red dots
    @abc.abstractmethod
    def put_red_dots(self, video_id: str, dots: Iterable[RedDot]) -> None:
        """Store the current red dots for a video (replaces previous dots)."""

    @abc.abstractmethod
    def get_red_dots(self, video_id: str) -> list[RedDot]:
        """The current red dots for the video (empty when none computed)."""

    @abc.abstractmethod
    def has_red_dots(self, video_id: str) -> bool:
        """Whether red dots were ever computed for the video.

        True even when the computed set is empty (a below-threshold video),
        so serving layers can distinguish "computed: nothing to show" from
        "never looked at" and skip recomputation.
        """

    # ------------------------------------------------------------ highlights
    @abc.abstractmethod
    def put_highlight(
        self, video_id: str, highlight: Highlight, source: str = "extractor"
    ) -> HighlightRecord:
        """Append a refined highlight result; versions increase monotonically."""

    @abc.abstractmethod
    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        """Every stored highlight record for the video, in version order."""

    # ----------------------------------------------------- session snapshots
    @abc.abstractmethod
    def put_session_snapshot(self, video_id: str, payload: dict) -> None:
        """Store (replacing) the checkpoint of a live session.

        ``payload`` must be strict-JSON-serializable (``allow_nan=False`` —
        the codecs map the streaming engine's non-finite sentinels to
        ``None``); backends reject anything else rather than store a
        checkpoint recovery cannot parse.  Durable backends commit each
        checkpoint as **one transaction**, so a crash leaves either the
        previous snapshot or the new one, never a torn mix.  Unknown video
        ids are errors, as for every write.
        """

    @abc.abstractmethod
    def get_session_snapshots(self) -> dict[str, dict]:
        """Every stored session checkpoint, keyed by video id.

        This is the open-session registry: after a crash, recovery rebuilds
        exactly these sessions (each from its snapshot plus the chat and
        interactions persisted since it — see
        :mod:`repro.platform.recovery`).
        """

    @abc.abstractmethod
    def delete_session_snapshot(self, video_id: str) -> bool:
        """Drop a session checkpoint (clean close); returns whether one existed.

        Idempotent, and intentionally not an error for unknown video ids —
        closing a channel that never checkpointed is a no-op.
        """

    def get_session_snapshot(self, video_id: str) -> dict | None:
        """The stored checkpoint for one video (``None`` when absent).

        The default goes through :meth:`get_session_snapshots`; backends
        override with a single-row read — ``start_live`` consults this on
        every channel registration when checkpointing is enabled.
        """
        return self.get_session_snapshots().get(video_id)

    def get_chat_since(self, video_id: str, offset: int) -> list[ChatMessage]:
        """Chat rows from ``offset`` on — the recovery replay suffix.

        The default materialises the whole log; backends override so
        recovery costs O(suffix), not O(history).
        """
        return self.get_chat(video_id)[offset:]

    def get_interactions_since(self, video_id: str, offset: int) -> list[Interaction]:
        """Interaction rows from ``offset`` on (override for O(suffix))."""
        return self.get_interactions(video_id)[offset:]

    # --------------------------------------------------------------- summary
    @abc.abstractmethod
    def stats(self) -> dict[str, int]:
        """Coarse row counts, useful for monitoring and tests."""

    # ------------------------------------------------------ channel migration
    @abc.abstractmethod
    def delete_channel(self, video_id: str) -> bool:
        """Remove every stored row for one channel; returns whether it existed.

        The data-plane primitive behind channel migration: after a channel's
        bundle has been imported on its destination shard, the source drops
        the video, chat, interactions, red dots, highlight records and any
        session snapshot in **one transaction** on durable backends — a
        crash mid-delete must never leave a half-forgotten channel.
        Idempotent: deleting an unknown channel is a no-op returning False.
        """

    def export_channel(self, video_id: str) -> dict:
        """One channel's complete stored state as a strict-JSON bundle.

        The migration payload: everything :meth:`import_channel` needs to
        reproduce the channel byte-exactly on another shard — video
        metadata, the chat log in stored order, the interaction log in
        arrival order, red dots (``None`` when never computed, preserving
        the "computed: empty" vs "never computed" distinction), every
        highlight record with its version and source, and the session
        snapshot when one is checkpointed.  Unknown video ids are errors.
        """
        from repro.platform import codecs

        video = self.get_video(video_id)
        return {
            "video": codecs.video_to_dict(video),
            "chat": [codecs.chat_message_to_dict(m) for m in self.get_chat(video_id)],
            "interactions": [
                codecs.interaction_to_dict(i) for i in self.get_interactions(video_id)
            ],
            "red_dots": (
                [codecs.red_dot_to_dict(d) for d in self.get_red_dots(video_id)]
                if self.has_red_dots(video_id)
                else None
            ),
            "highlights": [
                codecs.highlight_record_to_dict(r)
                for r in self.highlight_history(video_id)
            ],
            "snapshot": self.get_session_snapshot(video_id),
        }

    def import_channel(self, bundle: dict) -> str:
        """Recreate a channel from an :meth:`export_channel` bundle.

        Replays the bundle through the ordinary write primitives so every
        backend-specific invariant (dense chat sequence space, monotone
        highlight versions, snapshot JSON-safety) is re-established rather
        than trusted: highlight versions are checked against the exported
        ones and any drift is an error.  The destination must not already
        know the video — migrating onto rows left behind by a previous
        resident would silently interleave two histories.
        """
        from repro.platform import codecs

        video = codecs.video_from_dict(bundle["video"])
        video_id = video.video_id
        if self.has_video(video_id):
            raise ValidationError(
                f"cannot import channel {video_id!r}: this shard already has rows for it"
            )
        self.put_video(video)
        messages = [codecs.chat_message_from_dict(m) for m in bundle.get("chat") or []]
        if messages:
            self.append_chat(video_id, messages)
        interactions = [
            codecs.interaction_from_dict(i) for i in bundle.get("interactions") or []
        ]
        if interactions:
            self.log_interactions(video_id, interactions)
        dots = bundle.get("red_dots")
        if dots is not None:
            self.put_red_dots(video_id, [codecs.red_dot_from_dict(d) for d in dots])
        for payload in bundle.get("highlights") or []:
            record = codecs.highlight_record_from_dict(payload)
            stored = self.put_highlight(video_id, record.highlight, source=record.source)
            if stored.version != record.version:
                raise ValidationError(
                    f"highlight version drift importing channel {video_id!r}: "
                    f"source version {record.version} stored as {stored.version}"
                )
        snapshot = bundle.get("snapshot")
        if snapshot is not None:
            self.put_session_snapshot(video_id, snapshot)
        return video_id

    # ------------------------------------------------------ shared behaviour
    def get_chat_log(self, video_id: str) -> VideoChatLog:
        """Return the video and its chat as a :class:`VideoChatLog`."""
        return VideoChatLog(video=self.get_video(video_id), messages=self.get_chat(video_id))

    def latest_highlights(self, video_id: str) -> list[Highlight]:
        """The most recent highlight per distinct (rounded) start position."""
        latest: dict[int, HighlightRecord] = {}
        for record in self.highlight_history(video_id):
            key = int(round(record.highlight.start / 30.0))
            existing = latest.get(key)
            if existing is None or record.version > existing.version:
                latest[key] = record
        return [latest[key].highlight for key in sorted(latest)]

    def close(self) -> None:
        """Release backend resources (connections, file handles); idempotent."""

    # -------------------------------------------------------------- internals
    def _require_known_video(self, video_id: str, action: str) -> None:
        """Raise the contract's unknown-video error for a write ``action``."""
        if not self.has_video(video_id):
            raise ValidationError(f"cannot {action} for unknown video {video_id!r}")
