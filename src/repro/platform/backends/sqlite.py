"""SQLite storage backend (stdlib ``sqlite3``, WAL mode, dependency-free).

The first durable backend behind the
:class:`~repro.platform.backends.base.StorageBackend` contract: rows are the
JSON codec forms of the core types (:mod:`repro.platform.codecs`), so
everything that goes in comes back out round-trip exact.  File-backed stores
survive process restarts; the default ``:memory:`` path gives a throwaway
store with identical semantics for tests.

Chat and session snapshots — the firehose tables — additionally support the
framed binary codec of :mod:`repro.platform.wire` (``storage_codec``, the
default): a chat batch lands as **one** compressed blob row in
``chat_batches`` instead of N JSON text rows, cutting both bytes/event and
per-batch transaction work.  The format is migration-free by construction:
new writes use the configured codec, reads dispatch on the stored value's
type (``bytes`` → binary frame, ``str`` → JSON text), so a database written
by any earlier version keeps reading — and both row shapes may coexist for
one video (legacy per-message rows followed by batch rows share a single
dense ``seq`` space).

Concurrency: one connection guarded by an ``RLock`` (created with
``check_same_thread=False`` so the sharded service tier can call in from
worker threads).  File-backed databases run in WAL mode so an eventual
multi-process reader does not block the writer.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable

from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video
from repro.platform import codecs, wire
from repro.platform.backends.base import HighlightRecord, StorageBackend
from repro.utils.validation import ValidationError

__all__ = ["SQLiteBusyError", "SQLiteStore"]


class SQLiteBusyError(sqlite3.OperationalError):
    """A write lost the cross-process race even after the busy timeout.

    Raw ``sqlite3.OperationalError: database is locked`` says nothing about
    *which* database, which is useless the moment several shard processes
    each own several files.  This subclass names the path and the timeout
    that was exhausted; being an ``OperationalError`` subclass, existing
    ``except sqlite3.OperationalError`` handlers keep working.
    """

    def __init__(self, path: str, timeout_ms: int, cause: Exception) -> None:
        super().__init__(
            f"database {path!r} is still locked after the {timeout_ms}ms busy "
            f"timeout ({cause}); another process is holding a long write — "
            "check that two shard workers were not pointed at the same db path"
        )
        self.path = path
        self.timeout_ms = timeout_ms

_SCHEMA = """
CREATE TABLE IF NOT EXISTS videos (
    video_id TEXT PRIMARY KEY,
    payload  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS chat_messages (
    video_id TEXT NOT NULL,
    seq      INTEGER NOT NULL,
    payload  TEXT NOT NULL,
    PRIMARY KEY (video_id, seq)
);
CREATE TABLE IF NOT EXISTS chat_batches (
    video_id  TEXT NOT NULL,
    first_seq INTEGER NOT NULL,
    n         INTEGER NOT NULL,
    payload   BLOB NOT NULL,
    PRIMARY KEY (video_id, first_seq)
);
CREATE TABLE IF NOT EXISTS interactions (
    rowid    INTEGER PRIMARY KEY AUTOINCREMENT,
    video_id TEXT NOT NULL,
    payload  TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_interactions_video ON interactions (video_id);
CREATE TABLE IF NOT EXISTS interaction_counts (
    video_id TEXT PRIMARY KEY,
    n        INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS red_dots (
    video_id TEXT NOT NULL,
    seq      INTEGER NOT NULL,
    payload  TEXT NOT NULL,
    PRIMARY KEY (video_id, seq)
);
CREATE TABLE IF NOT EXISTS red_dot_sets (
    video_id TEXT PRIMARY KEY,
    n        INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS highlight_records (
    video_id TEXT NOT NULL,
    version  INTEGER NOT NULL,
    payload  TEXT NOT NULL,
    PRIMARY KEY (video_id, version)
);
CREATE TABLE IF NOT EXISTS session_snapshots (
    video_id TEXT PRIMARY KEY,
    payload  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class SQLiteStore(StorageBackend):
    """A :class:`StorageBackend` persisted in a SQLite database.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` (the default) for an
        in-process throwaway store with the same semantics.
    busy_timeout_ms:
        How long a connection spins waiting for a cross-process write lock
        before giving up.  Every connection gets the pragma — in-process
        callers never see it (the ``RLock`` serializes them), but a second
        *process* on the same file contends for real.  When the timeout is
        still exhausted the failure surfaces as :class:`SQLiteBusyError`
        naming the db path.
    storage_codec:
        Row format for *new* chat-batch and snapshot writes: ``"binary"``
        (the default — framed, compressed blobs) or ``"json"`` (the
        pre-codec text rows).  Reads are codec-blind either way — they
        dispatch on the stored value's type, so the knob never strands
        existing data.
    """

    # Bumped when the *write* format grows a shape old readers cannot parse.
    # v2 = chat_batches blob rows + binary snapshot frames (reads of every
    # older shape keep working, so there is no migration step to run).
    STORAGE_FORMAT_KEY = "storage_format_version"
    STORAGE_FORMAT_VERSION = "2"

    def __init__(
        self,
        path: str | Path = ":memory:",
        *,
        busy_timeout_ms: int = 5000,
        storage_codec: str = "binary",
    ) -> None:
        if busy_timeout_ms < 0:
            raise ValidationError("busy_timeout_ms must be >= 0")
        if storage_codec not in wire.WIRE_CODECS:
            raise ValidationError(
                f"unknown storage codec {storage_codec!r} "
                f"(expected one of {wire.WIRE_CODECS})"
            )
        self.path = str(path)
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.storage_codec = storage_codec
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(self.path, check_same_thread=False)  # guarded-by: _lock
        with self._lock, self._guard(), self._connection:
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
            self._connection.executescript(_SCHEMA)
            # Reject files written by a *newer* format before touching any
            # row: a v2 reader has no idea what shapes v3 persisted, and
            # half-parsing them would corrupt, not fail.  Older formats
            # keep opening — the read paths are codec-blind by design.
            stored = self._connection.execute(
                "SELECT value FROM meta WHERE key = ?", (self.STORAGE_FORMAT_KEY,)
            ).fetchone()
            if stored is not None and int(stored[0]) > int(self.STORAGE_FORMAT_VERSION):
                raise ValidationError(
                    f"{self.path} was written by storage format v{stored[0]}; "
                    f"this build reads at most v{self.STORAGE_FORMAT_VERSION} — "
                    "upgrade the code, not the file"
                )
            self._connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (self.STORAGE_FORMAT_KEY, self.STORAGE_FORMAT_VERSION),
            )

    # ------------------------------------------------------- codec dispatch
    def _encode_payload(self, value) -> bytes | str:
        """Encode a value tree in the configured storage codec.

        Both branches enforce the same strictness (``allow_nan=False`` /
        the frame codec's non-finite rejection) and the binary frame decodes
        to exactly what a strict JSON round-trip would give — so what codec
        a row was *written* with is unobservable to readers.
        """
        if self.storage_codec == "binary":
            return wire.encode_frame(value)
        return json.dumps(value, allow_nan=False)

    @staticmethod
    def _decode_payload(payload: bytes | str):
        """Decode a stored value by its type — blobs are frames, text is JSON."""
        if isinstance(payload, bytes):
            return wire.decode_frame(payload)
        return json.loads(payload)

    @contextmanager
    def _guard(self):
        """Map a post-timeout ``database is locked`` to :class:`SQLiteBusyError`."""
        try:
            yield
        except sqlite3.OperationalError as error:
            message = str(error).lower()
            if "locked" in message or "busy" in message:
                raise SQLiteBusyError(self.path, self.busy_timeout_ms, error) from error
            raise

    # ---------------------------------------------------------------- videos
    def put_video(self, video: Video) -> None:
        """Insert or replace video metadata."""
        payload = json.dumps(codecs.video_to_dict(video), allow_nan=False)
        with self._lock, self._guard(), self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO videos (video_id, payload) VALUES (?, ?)",
                (video.video_id, payload),
            )

    def get_video(self, video_id: str) -> Video:
        """Return the stored video or raise if unknown."""
        with self._lock:
            row = self._connection.execute(
                "SELECT payload FROM videos WHERE video_id = ?", (video_id,)
            ).fetchone()
        if row is None:
            raise ValidationError(f"unknown video id {video_id!r}")
        return codecs.video_from_dict(json.loads(row[0]))

    def has_video(self, video_id: str) -> bool:
        """Whether the video is known to the store."""
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM videos WHERE video_id = ?", (video_id,)
            ).fetchone()
        return row is not None

    def list_videos(self) -> list[Video]:
        """All stored videos, ordered by id."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT payload FROM videos ORDER BY video_id"
            ).fetchall()
        return [codecs.video_from_dict(json.loads(row[0])) for row in rows]

    # ------------------------------------------------------------------ chat
    # Chat lives in two tables sharing one dense seq space: legacy
    # ``chat_messages`` (one JSON text row per message, what pre-codec
    # versions wrote) and ``chat_batches`` (one blob row per ingest batch,
    # covering seqs [first_seq, first_seq + n)).  Writers only add batches;
    # readers merge both so any mix of generations reads back in order.
    _NEXT_SEQ_SQL = (
        "SELECT MAX("
        " (SELECT COALESCE(MAX(seq), -1) FROM chat_messages WHERE video_id = ?),"
        " (SELECT COALESCE(MAX(first_seq + n), 0) - 1 FROM chat_batches"
        "  WHERE video_id = ?)"
        ") + 1"
    )

    def put_chat(self, video_id: str, messages: Iterable[ChatMessage]) -> int:
        """Store chat for a video (idempotent: replaces any previous crawl)."""
        self._require_known_video(video_id, "store chat")
        stored = sorted(messages, key=lambda m: m.timestamp)
        payload = self._encode_payload(
            [codecs.chat_message_to_dict(message) for message in stored]
        )
        with self._lock, self._guard(), self._connection:
            self._connection.execute(
                "DELETE FROM chat_messages WHERE video_id = ?", (video_id,)
            )
            self._connection.execute(
                "DELETE FROM chat_batches WHERE video_id = ?", (video_id,)
            )
            if stored:
                self._connection.execute(
                    "INSERT INTO chat_batches (video_id, first_seq, n, payload) "
                    "VALUES (?, 0, ?, ?)",
                    (video_id, len(stored), payload),
                )
        return len(stored)

    def append_chat(self, video_id: str, messages: Iterable[ChatMessage]) -> int:
        """Append live-ingested chat in arrival order; returns the new size.

        The whole batch commits as **one** blob row in **one** ``BEGIN
        IMMEDIATE`` transaction — one insert and one fsync per batch
        whatever the batch size, which is what makes the per-message cost
        of a chat firehose amortisable.  The write lock is taken before
        reading the next sequence number so two handles on the same file
        cannot allocate colliding ranges.
        """
        self._require_known_video(video_id, "append chat")
        rows = [codecs.chat_message_to_dict(message) for message in messages]
        payload = self._encode_payload(rows)
        with self._lock, self._guard():
            self._connection.execute("BEGIN IMMEDIATE")
            try:
                first_seq = self._connection.execute(
                    self._NEXT_SEQ_SQL, (video_id, video_id)
                ).fetchone()[0]
                if rows:
                    self._connection.execute(
                        "INSERT INTO chat_batches (video_id, first_seq, n, payload) "
                        "VALUES (?, ?, ?, ?)",
                        (video_id, first_seq, len(rows), payload),
                    )
            except BaseException:
                self._connection.execute("ROLLBACK")
                raise
            self._connection.execute("COMMIT")
        return int(first_seq) + len(rows)

    def has_chat(self, video_id: str) -> bool:
        """Whether chat has been crawled for the video."""
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM chat_messages WHERE video_id = ? "
                "UNION ALL SELECT 1 FROM chat_batches WHERE video_id = ? LIMIT 1",
                (video_id, video_id),
            ).fetchone()
        return row is not None

    def _chat_dicts_since(self, video_id: str, offset: int) -> list[dict]:
        """Codec dicts for seqs ``>= offset``, merged across both row shapes.

        Seqs are dense from 0 (``put_chat`` restarts them, ``append_chat``
        continues them), so a count offset *is* a seq bound — legacy rows
        filter in SQL, and only batches overlapping the suffix are decoded.
        """
        with self._lock:
            legacy = self._connection.execute(
                "SELECT seq, payload FROM chat_messages "
                "WHERE video_id = ? AND seq >= ? ORDER BY seq",
                (video_id, offset),
            ).fetchall()
            batches = self._connection.execute(
                "SELECT first_seq, payload FROM chat_batches "
                "WHERE video_id = ? AND first_seq + n > ? ORDER BY first_seq",
                (video_id, offset),
            ).fetchall()
        entries = [(seq, json.loads(payload)) for seq, payload in legacy]
        for first_seq, payload in batches:
            for index, item in enumerate(self._decode_payload(payload)):
                seq = first_seq + index
                if seq >= offset:
                    entries.append((seq, item))
        entries.sort(key=lambda entry: entry[0])
        return [item for _seq, item in entries]

    def get_chat(self, video_id: str) -> list[ChatMessage]:
        """Return the crawled chat messages (empty list when not crawled)."""
        return [
            codecs.chat_message_from_dict(item)
            for item in self._chat_dicts_since(video_id, 0)
        ]

    def count_chat(self, video_id: str) -> int:
        """Number of stored chat messages (row counts only, no payload decode)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT (SELECT COUNT(*) FROM chat_messages WHERE video_id = ?) + "
                "(SELECT COALESCE(SUM(n), 0) FROM chat_batches WHERE video_id = ?)",
                (video_id, video_id),
            ).fetchone()
        return int(row[0])

    def get_chat_since(self, video_id: str, offset: int) -> list[ChatMessage]:
        """Chat from ``offset`` on — O(suffix) rows read and decoded."""
        return [
            codecs.chat_message_from_dict(item)
            for item in self._chat_dicts_since(video_id, offset)
        ]

    # ---------------------------------------------------------- interactions
    def log_interactions(self, video_id: str, interactions: Iterable[Interaction]) -> int:
        """Append viewer interactions for a video; returns the new log size."""
        self._require_known_video(video_id, "log interactions")
        rows = [
            (video_id, json.dumps(codecs.interaction_to_dict(interaction), allow_nan=False))
            for interaction in interactions
        ]
        with self._lock, self._guard(), self._connection:
            self._connection.executemany(
                "INSERT INTO interactions (video_id, payload) VALUES (?, ?)", rows
            )
            # A transactional running total keeps the append O(batch) without
            # going stale when several handles share one database file.
            self._connection.execute(
                "INSERT INTO interaction_counts (video_id, n) VALUES (?, ?) "
                "ON CONFLICT(video_id) DO UPDATE SET n = n + excluded.n",
                (video_id, len(rows)),
            )
            count = self._connection.execute(
                "SELECT n FROM interaction_counts WHERE video_id = ?", (video_id,)
            ).fetchone()[0]
        return int(count)

    def get_interactions(self, video_id: str) -> list[Interaction]:
        """All logged interactions for the video, in arrival (log) order."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT payload FROM interactions WHERE video_id = ? ORDER BY rowid",
                (video_id,),
            ).fetchall()
        return [codecs.interaction_from_dict(json.loads(row[0])) for row in rows]

    def count_interactions(self, video_id: str) -> int:
        """Number of logged interactions (COUNT(*), no payload decode)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM interactions WHERE video_id = ?", (video_id,)
            ).fetchone()
        return int(row[0])

    def get_interactions_since(self, video_id: str, offset: int) -> list[Interaction]:
        """Interaction rows from ``offset`` on — O(suffix) rows read."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT payload FROM interactions WHERE video_id = ? "
                "ORDER BY rowid LIMIT -1 OFFSET ?",
                (video_id, offset),
            ).fetchall()
        return [codecs.interaction_from_dict(json.loads(row[0])) for row in rows]

    # -------------------------------------------------------------- red dots
    def put_red_dots(self, video_id: str, dots: Iterable[RedDot]) -> None:
        """Store the current red dots for a video (replaces previous dots)."""
        self._require_known_video(video_id, "store red dots")
        stored = sorted(dots, key=lambda d: d.position)
        rows = [
            (video_id, seq, json.dumps(codecs.red_dot_to_dict(dot), allow_nan=False))
            for seq, dot in enumerate(stored)
        ]
        with self._lock, self._guard(), self._connection:
            self._connection.execute("DELETE FROM red_dots WHERE video_id = ?", (video_id,))
            self._connection.executemany(
                "INSERT INTO red_dots (video_id, seq, payload) VALUES (?, ?, ?)", rows
            )
            # Mark the set as computed even when empty, so a below-threshold
            # video is distinguishable from one never looked at.
            self._connection.execute(
                "INSERT OR REPLACE INTO red_dot_sets (video_id, n) VALUES (?, ?)",
                (video_id, len(rows)),
            )

    def has_red_dots(self, video_id: str) -> bool:
        """Whether red dots were ever computed for the video (even zero)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM red_dot_sets WHERE video_id = ?", (video_id,)
            ).fetchone()
        return row is not None

    def get_red_dots(self, video_id: str) -> list[RedDot]:
        """The current red dots for the video (empty when none computed)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT payload FROM red_dots WHERE video_id = ? ORDER BY seq",
                (video_id,),
            ).fetchall()
        return [codecs.red_dot_from_dict(json.loads(row[0])) for row in rows]

    # ------------------------------------------------------------ highlights
    def put_highlight(
        self, video_id: str, highlight: Highlight, source: str = "extractor"
    ) -> HighlightRecord:
        """Append a refined highlight result; versions increase monotonically."""
        self._require_known_video(video_id, "store highlights")
        with self._lock, self._guard():
            # Take the write lock *before* reading MAX(version): a deferred
            # transaction would let another handle on the same file read the
            # same version and collide on the primary key.
            self._connection.execute("BEGIN IMMEDIATE")
            try:
                version = (
                    self._connection.execute(
                        "SELECT COALESCE(MAX(version), 0) FROM highlight_records "
                        "WHERE video_id = ?",
                        (video_id,),
                    ).fetchone()[0]
                    + 1
                )
                record = HighlightRecord(
                    video_id=video_id, highlight=highlight, version=version, source=source
                )
                self._connection.execute(
                    "INSERT INTO highlight_records (video_id, version, payload) "
                    "VALUES (?, ?, ?)",
                    (video_id, version, json.dumps(codecs.highlight_record_to_dict(record), allow_nan=False)),
                )
            except BaseException:
                self._connection.execute("ROLLBACK")
                raise
            self._connection.execute("COMMIT")
        return record

    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        """Every stored highlight record for the video, in version order."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT payload FROM highlight_records WHERE video_id = ? "
                "ORDER BY version",
                (video_id,),
            ).fetchall()
        return [codecs.highlight_record_from_dict(json.loads(row[0])) for row in rows]

    # ----------------------------------------------------- session snapshots
    def put_session_snapshot(self, video_id: str, payload: dict) -> None:
        """Store (replacing) the checkpoint of a live session.

        One ``INSERT OR REPLACE`` in one implicit transaction: a crash during
        the write leaves the previous checkpoint intact, never a torn one.
        Both codecs reject any payload that would not survive a strict JSON
        parse at recovery time (``allow_nan=False`` / the frame codec's
        non-finite rejection), and encoding happens *before* the write so a
        rejected payload stores nothing.
        """
        self._require_known_video(video_id, "store a session snapshot")
        encoded = self._encode_payload(payload)
        with self._lock, self._guard(), self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO session_snapshots (video_id, payload) "
                "VALUES (?, ?)",
                (video_id, encoded),
            )

    def get_session_snapshots(self) -> dict[str, dict]:
        """Every stored session checkpoint, keyed by video id."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT video_id, payload FROM session_snapshots ORDER BY video_id"
            ).fetchall()
        return {row[0]: self._decode_payload(row[1]) for row in rows}

    def delete_session_snapshot(self, video_id: str) -> bool:
        """Drop a session checkpoint; returns whether one existed."""
        with self._lock, self._guard(), self._connection:
            cursor = self._connection.execute(
                "DELETE FROM session_snapshots WHERE video_id = ?", (video_id,)
            )
        return cursor.rowcount > 0

    def get_session_snapshot(self, video_id: str) -> dict | None:
        """The stored checkpoint for one video (single-row read)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT payload FROM session_snapshots WHERE video_id = ?",
                (video_id,),
            ).fetchone()
        return None if row is None else self._decode_payload(row[0])

    # ------------------------------------------------------ channel migration
    def delete_channel(self, video_id: str) -> bool:
        """Remove every stored row for one channel in one transaction.

        The migration source-cleanup primitive: either the channel's video,
        chat (both row formats), interactions, red dots, highlight records
        and snapshot are all gone, or — on a crash mid-delete — none are.
        """
        with self._lock, self._guard(), self._connection:
            cursor = self._connection.execute(
                "DELETE FROM videos WHERE video_id = ?", (video_id,)
            )
            existed = cursor.rowcount > 0
            for table in (
                "chat_messages",
                "chat_batches",
                "interactions",
                "interaction_counts",
                "red_dots",
                "red_dot_sets",
                "highlight_records",
                "session_snapshots",
            ):
                self._connection.execute(
                    f"DELETE FROM {table} WHERE video_id = ?", (video_id,)
                )
        return existed

    # --------------------------------------------------------------- summary
    def stats(self) -> dict[str, int]:
        """Coarse row counts, useful for monitoring and tests."""
        with self._lock:
            counts = {
                "videos": "SELECT COUNT(*) FROM videos",
                "videos_with_chat": (
                    "SELECT COUNT(*) FROM (SELECT video_id FROM chat_messages "
                    "UNION SELECT video_id FROM chat_batches)"
                ),
                "chat_messages": (
                    "SELECT (SELECT COUNT(*) FROM chat_messages) + "
                    "(SELECT COALESCE(SUM(n), 0) FROM chat_batches)"
                ),
                "interactions": "SELECT COUNT(*) FROM interactions",
                "red_dots": "SELECT COUNT(*) FROM red_dots",
                "highlight_records": "SELECT COUNT(*) FROM highlight_records",
                "session_snapshots": "SELECT COUNT(*) FROM session_snapshots",
            }
            return {
                key: int(self._connection.execute(query).fetchone()[0])
                for key, query in counts.items()
            }

    # ------------------------------------------------------------------ meta
    def get_meta(self, key: str) -> str | None:
        """Read a database-level metadata value (``None`` when unset)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        return row[0] if row is not None else None

    def set_meta(self, key: str, value: str) -> None:
        """Write a database-level metadata value (insert-or-replace)."""
        with self._lock, self._guard(), self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
            )

    def delete_meta(self, key: str) -> None:
        """Remove a database-level metadata value (no-op when unset)."""
        with self._lock, self._guard(), self._connection:
            self._connection.execute("DELETE FROM meta WHERE key = ?", (key,))

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the underlying connection (further calls will fail)."""
        with self._lock:
            self._connection.close()

    def journal_mode(self) -> str:
        """The active journal mode (``wal`` for file-backed stores)."""
        with self._lock:
            return str(
                self._connection.execute("PRAGMA journal_mode").fetchone()[0]
            ).lower()
