"""Simulated live-streaming platform API.

Stands in for the Twitch APIs the paper crawls: listing a channel's recently
recorded videos, fetching video metadata and downloading the chat replay of a
recorded video.  The API is backed by the simulation package, so "crawling" a
video's chat generates it deterministically on first request and caches it —
the behaviour an external service exhibits from the crawler's point of view.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.types import ChatMessage, Video
from repro.simulation.chat import ChatSimulator
from repro.simulation.video import VideoGenerator
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError, require_positive

__all__ = ["SimulatedStreamingAPI"]


@dataclass
class SimulatedStreamingAPI:
    """A Twitch-like API over synthetic channels, videos and chat replays.

    Parameters
    ----------
    seeds:
        Seed factory; the whole catalogue is a deterministic function of it.
    videos_per_channel:
        How many recorded videos each channel exposes.
    games:
        The games the platform hosts; channels are spread across them.
    """

    seeds: SeedSequenceFactory
    videos_per_channel: int = 20
    games: tuple[str, ...] = ("dota2", "lol")
    _catalog: dict[str, Video] = field(default_factory=dict, repr=False)  # guarded-by: _lock
    _chat_cache: dict[str, list[ChatMessage]] = field(default_factory=dict, repr=False)  # guarded-by: _lock
    chat_requests_served_: int = field(default=0, repr=False)  # guarded-by: _lock

    def __post_init__(self) -> None:
        require_positive(self.videos_per_channel, "videos_per_channel")
        self._video_generator = VideoGenerator(seeds=self.seeds)
        self._chat_simulator = ChatSimulator(seeds=self.seeds)
        # One API instance may be shared by every shard of a sharded service,
        # whose per-shard locks do not cover it — guard the caches here.
        self._lock = threading.RLock()

    # -------------------------------------------------------------- channels
    def top_channels(self, game: str, count: int = 10) -> list[str]:
        """Return the names of the top ``count`` channels for ``game``."""
        require_positive(count, "count")
        return [f"{game}_channel_{index}" for index in range(count)]

    def recent_videos(self, channel: str, count: int | None = None) -> list[Video]:
        """Return the most recently recorded videos of ``channel``.

        Videos are generated lazily and cached so repeated listings return
        the same objects.
        """
        if count is None:
            count = self.videos_per_channel
        require_positive(count, "count")
        game = self._game_of_channel(channel)
        channel_index = self._channel_index(channel)
        videos = []
        with self._lock:
            for slot in range(count):
                video_index = channel_index * self.videos_per_channel + slot
                video_id = f"{game}-{video_index:04d}"
                if video_id not in self._catalog:
                    self._catalog[video_id] = self._video_generator.generate(
                        video_index, game=game
                    )
                videos.append(self._catalog[video_id])
        return videos

    # ---------------------------------------------------------------- videos
    def get_video(self, video_id: str) -> Video:
        """Fetch metadata for ``video_id`` (generates it when unseen)."""
        with self._lock:
            if video_id not in self._catalog:
                game, _, index_text = video_id.partition("-")
                if game not in self.games or not index_text.isdigit():
                    raise ValidationError(f"unknown video id {video_id!r}")
                self._catalog[video_id] = self._video_generator.generate(
                    int(index_text), game=game
                )
            return self._catalog[video_id]

    def get_chat_replay(self, video_id: str) -> list[ChatMessage]:
        """Download the chat replay of a recorded video (cached)."""
        with self._lock:
            cached = self._chat_cache.get(video_id)
            if cached is not None:
                self.chat_requests_served_ += 1
                return list(cached)
        # Simulate outside the lock: generation is deterministic per video id,
        # so concurrent cold-cache crawls of different videos can overlap (two
        # racing crawls of the same video produce the identical log).
        video = self.get_video(video_id)
        messages = self._chat_simulator.simulate(video).messages
        with self._lock:
            stored = self._chat_cache.setdefault(video_id, messages)
            self.chat_requests_served_ += 1
            return list(stored)

    # -------------------------------------------------------------- helpers
    def _game_of_channel(self, channel: str) -> str:
        for game in self.games:
            if channel.startswith(f"{game}_channel_"):
                return game
        raise ValidationError(f"unknown channel {channel!r}")

    @staticmethod
    def _channel_index(channel: str) -> int:
        try:
            return int(channel.rsplit("_", 1)[1])
        except (IndexError, ValueError) as error:
            raise ValidationError(f"malformed channel name {channel!r}") from error
