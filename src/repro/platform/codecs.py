"""Serialization codecs for the platform's core value objects.

Storage backends that outlive the process (SQLite today, a DBMS tomorrow)
need the core types as plain JSON-able dicts.  Each codec pair is
**round-trip exact**: ``from_dict(to_dict(obj)) == obj`` and the equality
survives a JSON encode/decode in between (Python's ``json`` emits the
shortest ``repr`` of a float, which parses back to the identical binary64
value).

Two surfaces are provided:

* typed pairs — ``video_to_dict`` / ``video_from_dict`` and friends — for
  callers that know what they are storing (the SQLite backend);
* a tagged generic surface — :func:`encode` / :func:`decode` — that wraps
  the payload in ``{"type": ..., ...}`` so heterogeneous streams (event
  logs, wire protocols, parity fingerprints) can round-trip mixed objects.

The checkpoint/recovery subsystem (:mod:`repro.platform.recovery`) adds a
third family: codecs for the *streaming engine state* — sealed window
summaries, emit policies — that session snapshots are built from.  These
are held to the same round-trip-exact bar; non-finite floats (the window
builder's ``-inf`` "no message seen yet" sentinel) are mapped to ``None``
so every payload stays strict-JSON (``json.dumps(..., allow_nan=False)``
never raises on a snapshot).
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable

from repro.core.initializer.features import WindowFeatures
from repro.core.types import (
    ChatMessage,
    Highlight,
    Interaction,
    InteractionKind,
    PlayRecord,
    RedDot,
    Video,
    VideoChatLog,
)
from repro.platform.backends.base import HighlightRecord
from repro.platform.placement import PlacementMap
from repro.utils.validation import ValidationError

__all__ = [
    "chat_message_to_dict",
    "chat_message_from_dict",
    "highlight_to_dict",
    "highlight_from_dict",
    "red_dot_to_dict",
    "red_dot_from_dict",
    "interaction_to_dict",
    "interaction_from_dict",
    "play_record_to_dict",
    "play_record_from_dict",
    "video_to_dict",
    "video_from_dict",
    "chat_log_to_dict",
    "chat_log_from_dict",
    "highlight_record_to_dict",
    "highlight_record_from_dict",
    "placement_map_to_dict",
    "placement_map_from_dict",
    "window_features_to_dict",
    "window_features_from_dict",
    "window_summary_to_dict",
    "window_summary_from_dict",
    "emit_policy_to_dict",
    "emit_policy_from_dict",
    "stream_event_to_dict",
    "stream_event_from_dict",
    "finite_or_none",
    "none_or_neg_inf",
    "encode",
    "decode",
    "dumps",
    "loads",
]


# ---------------------------------------------------------------- chat message
def chat_message_to_dict(message: ChatMessage) -> dict[str, Any]:
    """Plain-dict form of a :class:`ChatMessage`."""
    return {"timestamp": message.timestamp, "user": message.user, "text": message.text}


def chat_message_from_dict(payload: dict[str, Any]) -> ChatMessage:
    """Rebuild a :class:`ChatMessage` from its plain-dict form."""
    return ChatMessage(
        timestamp=payload["timestamp"],
        user=payload.get("user", "anonymous"),
        text=payload.get("text", ""),
    )


# ------------------------------------------------------------------- highlight
def highlight_to_dict(highlight: Highlight) -> dict[str, Any]:
    """Plain-dict form of a :class:`Highlight`."""
    return {"start": highlight.start, "end": highlight.end, "label": highlight.label}


def highlight_from_dict(payload: dict[str, Any]) -> Highlight:
    """Rebuild a :class:`Highlight` from its plain-dict form."""
    return Highlight(
        start=payload["start"], end=payload["end"], label=payload.get("label", "")
    )


# --------------------------------------------------------------------- red dot
def red_dot_to_dict(dot: RedDot) -> dict[str, Any]:
    """Plain-dict form of a :class:`RedDot` (the window tuple becomes a list)."""
    return {
        "position": dot.position,
        "score": dot.score,
        "window": list(dot.window) if dot.window is not None else None,
        "video_id": dot.video_id,
    }


def red_dot_from_dict(payload: dict[str, Any]) -> RedDot:
    """Rebuild a :class:`RedDot` from its plain-dict form."""
    window = payload.get("window")
    return RedDot(
        position=payload["position"],
        score=payload.get("score", 0.0),
        window=(window[0], window[1]) if window is not None else None,
        video_id=payload.get("video_id", ""),
    )


# ----------------------------------------------------------------- interaction
def interaction_to_dict(interaction: Interaction) -> dict[str, Any]:
    """Plain-dict form of an :class:`Interaction` (the kind by enum value)."""
    return {
        "timestamp": interaction.timestamp,
        "kind": interaction.kind.value,
        "user": interaction.user,
        "target": interaction.target,
    }


def interaction_from_dict(payload: dict[str, Any]) -> Interaction:
    """Rebuild an :class:`Interaction` from its plain-dict form."""
    return Interaction(
        timestamp=payload["timestamp"],
        kind=InteractionKind(payload["kind"]),
        user=payload.get("user", "anonymous"),
        target=payload.get("target"),
    )


# ----------------------------------------------------------------- play record
def play_record_to_dict(play: PlayRecord) -> dict[str, Any]:
    """Plain-dict form of a :class:`PlayRecord`."""
    return {"user": play.user, "start": play.start, "end": play.end}


def play_record_from_dict(payload: dict[str, Any]) -> PlayRecord:
    """Rebuild a :class:`PlayRecord` from its plain-dict form."""
    return PlayRecord(user=payload["user"], start=payload["start"], end=payload["end"])


# ----------------------------------------------------------------------- video
def video_to_dict(video: Video) -> dict[str, Any]:
    """Plain-dict form of a :class:`Video` (highlights nested as dicts)."""
    return {
        "video_id": video.video_id,
        "duration": video.duration,
        "game": video.game,
        "channel": video.channel,
        "viewer_count": video.viewer_count,
        "highlights": [highlight_to_dict(h) for h in video.highlights],
    }


def video_from_dict(payload: dict[str, Any]) -> Video:
    """Rebuild a :class:`Video` from its plain-dict form."""
    return Video(
        video_id=payload["video_id"],
        duration=payload["duration"],
        game=payload.get("game", "dota2"),
        channel=payload.get("channel", ""),
        viewer_count=payload.get("viewer_count", 0),
        highlights=tuple(highlight_from_dict(h) for h in payload.get("highlights", [])),
    )


# -------------------------------------------------------------------- chat log
def chat_log_to_dict(chat_log: VideoChatLog) -> dict[str, Any]:
    """Plain-dict form of a :class:`VideoChatLog`."""
    return {
        "video": video_to_dict(chat_log.video),
        "messages": [chat_message_to_dict(m) for m in chat_log.messages],
    }


def chat_log_from_dict(payload: dict[str, Any]) -> VideoChatLog:
    """Rebuild a :class:`VideoChatLog` from its plain-dict form."""
    return VideoChatLog(
        video=video_from_dict(payload["video"]),
        messages=[chat_message_from_dict(m) for m in payload.get("messages", [])],
    )


# ------------------------------------------------------------ highlight record
def highlight_record_to_dict(record: HighlightRecord) -> dict[str, Any]:
    """Plain-dict form of a :class:`HighlightRecord`."""
    return {
        "video_id": record.video_id,
        "highlight": highlight_to_dict(record.highlight),
        "version": record.version,
        "source": record.source,
    }


def highlight_record_from_dict(payload: dict[str, Any]) -> HighlightRecord:
    """Rebuild a :class:`HighlightRecord` from its plain-dict form."""
    return HighlightRecord(
        video_id=payload["video_id"],
        highlight=highlight_from_dict(payload["highlight"]),
        version=payload["version"],
        source=payload.get("source", "extractor"),
    )


# --------------------------------------------------------------- placement map
def placement_map_to_dict(placement: PlacementMap) -> dict[str, Any]:
    """Plain-dict form of a :class:`PlacementMap` (one atomic view).

    The wire/storage form of the control plane: what ``GET /placement``
    returns and ``POST /placement`` installs on cluster workers.
    """
    return placement.describe()


def placement_map_from_dict(payload: dict[str, Any]) -> PlacementMap:
    """Rebuild a :class:`PlacementMap` from its plain-dict form."""
    pins = payload.get("pins", {})
    if not isinstance(pins, dict):
        raise ValidationError(f"placement pins must be a mapping, got {type(pins).__name__}")
    return PlacementMap(
        payload["n_shards"],
        replicas=payload.get("replicas", 64),
        epoch=payload.get("epoch", 0),
        pins={str(k): int(v) for k, v in pins.items()},
        in_flight=[str(v) for v in payload.get("in_flight", [])],
        frozen=bool(payload.get("frozen", False)),
    )


# ----------------------------------------------------- streaming-state codecs
def finite_or_none(value: float) -> float | None:
    """JSON-safe form of a float sentinel: non-finite values become ``None``.

    Snapshots must stay strict-JSON (``allow_nan=False``); the window
    builder's ``-inf`` "nothing seen yet" marker is the one non-finite value
    the streaming state legitimately holds.
    """
    return float(value) if math.isfinite(value) else None


def none_or_neg_inf(value: float | None) -> float:
    """Inverse of :func:`finite_or_none` for the ``-inf`` sentinel."""
    return -math.inf if value is None else float(value)


def window_features_to_dict(features: WindowFeatures) -> dict[str, Any]:
    """Plain-dict form of a raw :class:`WindowFeatures` triple."""
    return {
        "message_number": features.message_number,
        "message_length": features.message_length,
        "message_similarity": features.message_similarity,
    }


def window_features_from_dict(payload: dict[str, Any]) -> WindowFeatures:
    """Rebuild a :class:`WindowFeatures` from its plain-dict form."""
    return WindowFeatures(
        message_number=payload["message_number"],
        message_length=payload["message_length"],
        message_similarity=payload["message_similarity"],
    )


def window_summary_to_dict(summary) -> dict[str, Any]:
    """Plain-dict form of a sealed :class:`~repro.streaming.state.WindowSummary`."""
    return {
        "start": summary.start,
        "end": summary.end,
        "message_count": summary.message_count,
        "peak": summary.peak,
        "raw": window_features_to_dict(summary.raw),
    }


def window_summary_from_dict(payload: dict[str, Any]):
    """Rebuild a :class:`~repro.streaming.state.WindowSummary` (round-trip exact)."""
    from repro.streaming.state import WindowSummary

    return WindowSummary(
        start=payload["start"],
        end=payload["end"],
        message_count=payload["message_count"],
        peak=payload["peak"],
        raw=window_features_from_dict(payload["raw"]),
    )


def emit_policy_to_dict(policy) -> dict[str, Any]:
    """Plain-dict form of an :class:`~repro.streaming.initializer.EmitPolicy`."""
    return {
        "eval_every_messages": policy.eval_every_messages,
        "eval_every_seconds": policy.eval_every_seconds,
        "min_score": policy.min_score,
    }


def emit_policy_from_dict(payload: dict[str, Any]):
    """Rebuild an :class:`~repro.streaming.initializer.EmitPolicy`."""
    from repro.streaming.initializer import EmitPolicy

    return EmitPolicy(
        eval_every_messages=payload["eval_every_messages"],
        eval_every_seconds=payload["eval_every_seconds"],
        min_score=payload.get("min_score", 0.0),
    )


# --------------------------------------------------------------- stream events
def stream_event_to_dict(event) -> dict[str, Any]:
    """Plain-dict form of a :class:`~repro.streaming.events.StreamEvent`.

    The wire form the HTTP gateway returns from the live-ingest endpoints;
    tagged by ``event`` so heterogeneous emit/retract/refine responses
    round-trip through :func:`stream_event_from_dict`.
    """
    from repro.streaming.events import DotEmitted, DotRetracted, HighlightRefined

    if isinstance(event, DotEmitted):
        return {
            "event": "emit",
            "stream_time": event.stream_time,
            "dot": red_dot_to_dict(event.dot),
        }
    if isinstance(event, DotRetracted):
        return {
            "event": "retract",
            "stream_time": event.stream_time,
            "dot": red_dot_to_dict(event.dot),
        }
    if isinstance(event, HighlightRefined):
        return {
            "event": "refine",
            "stream_time": event.stream_time,
            "dot": red_dot_to_dict(event.dot),
            "highlight": (
                highlight_to_dict(event.highlight) if event.highlight is not None else None
            ),
            "moved_to": event.moved_to,
        }
    raise ValidationError(f"no codec for stream events of type {type(event).__name__}")


def stream_event_from_dict(payload: dict[str, Any]):
    """Rebuild a :class:`~repro.streaming.events.StreamEvent` (round-trip exact)."""
    from repro.streaming.events import DotEmitted, DotRetracted, HighlightRefined

    tag = payload.get("event")
    if tag == "emit":
        return DotEmitted(
            stream_time=payload["stream_time"], dot=red_dot_from_dict(payload["dot"])
        )
    if tag == "retract":
        return DotRetracted(
            stream_time=payload["stream_time"], dot=red_dot_from_dict(payload["dot"])
        )
    if tag == "refine":
        highlight = payload.get("highlight")
        return HighlightRefined(
            stream_time=payload["stream_time"],
            dot=red_dot_from_dict(payload["dot"]),
            highlight=highlight_from_dict(highlight) if highlight is not None else None,
            moved_to=payload.get("moved_to"),
        )
    raise ValidationError(f"no codec for stream-event tag {tag!r}")


# -------------------------------------------------------------- tagged surface
_CODECS: dict[str, tuple[type, Callable[[Any], dict], Callable[[dict], Any]]] = {
    "chat_message": (ChatMessage, chat_message_to_dict, chat_message_from_dict),
    "highlight": (Highlight, highlight_to_dict, highlight_from_dict),
    "red_dot": (RedDot, red_dot_to_dict, red_dot_from_dict),
    "interaction": (Interaction, interaction_to_dict, interaction_from_dict),
    "play_record": (PlayRecord, play_record_to_dict, play_record_from_dict),
    "video": (Video, video_to_dict, video_from_dict),
    "chat_log": (VideoChatLog, chat_log_to_dict, chat_log_from_dict),
    "highlight_record": (HighlightRecord, highlight_record_to_dict, highlight_record_from_dict),
}


def encode(obj: Any) -> dict[str, Any]:
    """Wrap any codec-covered object as a type-tagged plain dict."""
    for tag, (cls, to_dict, _) in _CODECS.items():
        if type(obj) is cls:
            return {"type": tag, **to_dict(obj)}
    raise ValidationError(f"no codec for objects of type {type(obj).__name__}")


def decode(payload: dict[str, Any]) -> Any:
    """Rebuild an object from its type-tagged plain dict."""
    tag = payload.get("type")
    entry = _CODECS.get(tag)
    if entry is None:
        raise ValidationError(f"no codec for type tag {tag!r}")
    return entry[2](payload)


def dumps(obj: Any) -> str:
    """JSON string of the type-tagged encoding (stable key order)."""
    return json.dumps(encode(obj), sort_keys=True, allow_nan=False)


def loads(text: str) -> Any:
    """Inverse of :func:`dumps`."""
    return decode(json.loads(text))
