"""Browser-extension front end (Figure 5's "Front End" box).

The extension activates when the user opens a recorded-video page, asks the
web service for red dots, renders them on the progress bar, and forwards the
viewer's interactions back to the service.  Rendering is simulated as a
:class:`ProgressBarView` — a textual progress bar with dot markers — so the
front-end logic (activation, dot placement, interaction forwarding) is
runnable and testable without a browser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.types import Interaction, RedDot
from repro.platform.service import LightorWebService
from repro.utils.validation import ValidationError, require_positive

__all__ = ["ProgressBarView", "BrowserExtension"]

_VIDEO_URL_PATTERN = re.compile(r"^https?://[^/]+/videos/(?P<video_id>[A-Za-z0-9_-]+)$")


@dataclass(frozen=True)
class ProgressBarView:
    """A textual rendering of the progress bar with red-dot markers.

    Parameters
    ----------
    video_id / duration:
        The rendered video and its length in seconds (positions are scaled
        against it).
    dot_positions:
        Red-dot positions in video seconds; positions beyond ``duration``
        clamp to the last cell.
    width:
        Bar width in character cells (must be positive).
    """

    video_id: str
    duration: float
    dot_positions: tuple[float, ...]
    width: int = 60

    def render(self) -> str:
        """Return e.g. ``|----*------*----|`` with ``*`` marking red dots."""
        require_positive(self.width, "width")
        cells = ["-"] * self.width
        for position in self.dot_positions:
            index = min(self.width - 1, int(position / self.duration * self.width))
            cells[index] = "*"
        return "|" + "".join(cells) + "|"

    @property
    def n_dots(self) -> int:
        """Number of dots rendered."""
        return len(self.dot_positions)


@dataclass
class BrowserExtension:
    """Simulated LIGHTOR browser extension.

    Parameters
    ----------
    service:
        The back-end web service the extension talks to.
    k:
        Red dots requested per video page.

    Invariants: at most one video page is active at a time;
    ``current_dots`` always mirrors what the active page renders (empty
    when no recorded-video page is open).
    """

    service: LightorWebService
    k: int = 5
    active_video_id: str | None = field(default=None, repr=False)
    current_dots: list[RedDot] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------ page open
    @staticmethod
    def extract_video_id(url: str) -> str | None:
        """Extract the video id from a recorded-video URL; None otherwise.

        The extension only activates on recorded-video pages, not on live
        streams or channel pages.
        """
        match = _VIDEO_URL_PATTERN.match(url)
        if match is None:
            return None
        return match.group("video_id")

    def open_page(self, url: str) -> ProgressBarView | None:
        """Handle a page navigation.

        On a recorded-video page: request red dots from the service and
        return the rendered progress bar.  On any other page: deactivate and
        return None.
        """
        video_id = self.extract_video_id(url)
        if video_id is None:
            self.active_video_id = None
            self.current_dots = []
            return None
        dots = self.service.request_red_dots(video_id, k=self.k)
        self.active_video_id = video_id
        self.current_dots = list(dots)
        video = self.service.store.get_video(video_id)
        return ProgressBarView(
            video_id=video_id,
            duration=video.duration,
            dot_positions=tuple(dot.position for dot in dots),
        )

    # --------------------------------------------------------- interactions
    def forward_interactions(self, interactions: Sequence[Interaction]) -> int:
        """Forward the viewer's interactions on the active video to the service."""
        if self.active_video_id is None:
            raise ValidationError("no active recorded-video page; open one first")
        return self.service.log_interactions(self.active_video_id, interactions)

    def click_dot(self, dot_index: int) -> RedDot:
        """Simulate the viewer clicking the ``dot_index``-th red dot."""
        if not self.current_dots:
            raise ValidationError("no red dots are rendered on the current page")
        if not 0 <= dot_index < len(self.current_dots):
            raise ValidationError(
                f"dot_index {dot_index} out of range 0..{len(self.current_dots) - 1}"
            )
        return self.current_dots[dot_index]
