"""Binary framed codec for the wire and storage layers.

Every payload the platform moves — chat batches over HTTP, play batches,
stream-event responses, red-dot lists, session snapshots in SQLite — is a
strict-JSON value tree (the codec dict forms of
:mod:`repro.platform.codecs`).  JSON text is a fine default for those
trees, but at firehose rates it taxes every event twice: CPU on
``json.dumps``/``loads`` and bytes on the redundant keys every record in a
batch repeats.  This module encodes the *same* trees as compact framed
binary blobs:

* **fixed header** — magic, version, flags, declared payload size and a
  CRC32 over header and stored bytes, so a truncated or bit-flipped blob
  is rejected with a typed :class:`CodecError` instead of decoding into
  silent garbage;
* **string table** — every string (dict keys above all: a 512-message chat
  batch repeats ``"timestamp"``/``"user"``/``"text"`` 512 times in JSON)
  is interned once and referenced by index;
* **columnar batches** — a list of records with identical keys (exactly
  what a chat or play batch is) is encoded per *column*: an all-float
  column is one ``struct`` pack of binary64 values, an all-int column one
  pack of int64s — no per-value tags, no per-record keys;
* **optional zlib** — payloads at or above a threshold are deflated when
  that actually wins; the header's declared size is always the
  *uncompressed* size, checked by :func:`decode_frame` **before**
  decompression so a caller's entity cap cannot be blown by a tiny
  zip-bomb frame.

The codec is held to the JSON path's bar: for any value tree
``json.dumps(..., allow_nan=False)`` accepts,
``decode_frame(encode_frame(tree))`` equals ``json.loads(json.dumps(tree))``
— same types (``1`` stays ``int``, ``1.0`` stays ``float``, tuples become
lists, non-string keys coerce exactly as JSON coerces them), same float
bits.  Values JSON rejects are rejected the same way: a non-finite float
raises :class:`CodecError` (a ``ValueError``, like ``allow_nan=False``),
an unsupported object type raises ``TypeError`` (like ``json.dumps``).
``tests/test_wire.py`` pins both directions with hypothesis.

Frame layout (all integers big-endian)::

    offset  size  field
    0       4     magic  b"RBF1"
    4       1     version (1)
    5       1     flags   (bit 0: payload is zlib-deflated)
    6       4     raw_len — size of the *uncompressed* payload in bytes
    10      4     CRC32 over bytes 0..9 plus the stored payload
    14      ...   stored payload (raw, or deflated when flag bit 0 is set)

The payload is a string table (count, then length-prefixed UTF-8 entries)
followed by one tagged value tree.  Versioning rule: a decoder rejects any
version or flag bit it does not know — compatible extensions must use a
new tag inside the payload, incompatible ones must bump the version byte.
See ``docs/wire_format.md``.
"""

from __future__ import annotations

import math
import struct
import zlib
from typing import Any

from repro.utils.validation import ValidationError

__all__ = [
    "CodecError",
    "CodecTooLargeError",
    "DEFAULT_COMPRESS_THRESHOLD",
    "HEADER_SIZE",
    "JSON_CONTENT_TYPE",
    "MAGIC",
    "VERSION",
    "WIRE_CODECS",
    "WIRE_CONTENT_TYPE",
    "decode_frame",
    "encode_frame",
]

JSON_CONTENT_TYPE = "application/json"
WIRE_CONTENT_TYPE = "application/x-repro-binary"
WIRE_CODECS = ("json", "binary")

MAGIC = b"RBF1"
VERSION = 1

_FLAG_ZLIB = 0x01
_KNOWN_FLAGS = _FLAG_ZLIB

_HEADER = struct.Struct("!4sBBII")  # magic, version, flags, raw_len, crc32
HEADER_SIZE = _HEADER.size
_CRC_OFFSET = HEADER_SIZE - 4  # the CRC field itself is excluded from the CRC

# Deflate only payloads this size or larger: small frames (single events,
# health payloads) spend more header than they save.  Level 1 because the
# codec's job is cutting wire/disk bytes without moving the CPU bill from
# json.dumps to zlib.
DEFAULT_COMPRESS_THRESHOLD = 1024
_COMPRESS_LEVEL = 1

# Value tags.
(
    _T_NULL,
    _T_FALSE,
    _T_TRUE,
    _T_INT,
    _T_FLOAT,
    _T_STR,
    _T_LIST,
    _T_DICT,
    _T_TABLE,
    _T_BIGINT,
) = range(10)

# Column tags inside a _T_TABLE.
_C_FLOAT, _C_INT, _C_STR, _C_MIXED = range(4)

_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1
_U32_MAX = 0xFFFFFFFF


class CodecError(ValidationError):
    """A blob the binary codec refuses: corrupt, truncated or unencodable.

    A ``ValidationError`` (hence ``ValueError``) on purpose: the gateway
    maps it to ``400`` like every other malformed payload, and the storage
    layer's strict-JSON write contract (``put_session_snapshot`` must raise
    ``ValueError`` on a non-finite float) holds unchanged under the binary
    codec.
    """


class CodecTooLargeError(CodecError):
    """The frame declares a decoded entity larger than the caller's cap.

    Raised from the *header alone*, before any decompression: the declared
    ``raw_len`` is what the caller would have to materialise, so a
    compressed frame cannot smuggle an over-cap entity past the check.
    The gateway maps it to ``413``.
    """

    def __init__(self, raw_len: int, max_raw_bytes: int) -> None:
        super().__init__(
            f"frame declares a {raw_len}-byte decoded entity, "
            f"over the {max_raw_bytes}-byte cap"
        )
        self.raw_len = raw_len
        self.max_raw_bytes = max_raw_bytes


def _key_str(key: Any) -> str:
    """Coerce a dict key exactly as ``json.dumps`` does (or refuse as it does)."""
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, int):
        return int.__repr__(key)
    if isinstance(key, float):
        if not math.isfinite(key):
            raise CodecError("dict keys must be finite (non-finite float key)")
        return float.__repr__(key)
    raise TypeError(
        f"keys must be str, int, float, bool or None, not {type(key).__name__}"
    )


class _Encoder:
    """One-pass tree encoder with string interning."""

    def __init__(self) -> None:
        self.tree = bytearray()
        self.strings: list[bytes] = []
        self._index: dict[str, int] = {}

    def intern(self, text: str) -> int:
        ref = self._index.get(text)
        if ref is None:
            ref = len(self.strings)
            self._index[text] = ref
            self.strings.append(text.encode("utf-8"))
        return ref

    def value(self, obj: Any) -> None:
        out = self.tree
        if obj is None:
            out.append(_T_NULL)
        elif isinstance(obj, bool):  # before int: bool is an int subclass
            out.append(_T_TRUE if obj else _T_FALSE)
        elif isinstance(obj, int):
            if _INT64_MIN <= obj <= _INT64_MAX:
                out.append(_T_INT)
                out += _I64.pack(obj)
            else:
                data = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
                out.append(_T_BIGINT)
                out += _U32.pack(len(data))
                out += data
        elif isinstance(obj, float):
            if not math.isfinite(obj):
                raise CodecError(
                    "non-finite float is not encodable (strict-JSON parity with "
                    "allow_nan=False)"
                )
            out.append(_T_FLOAT)
            out += _F64.pack(obj)
        elif isinstance(obj, str):
            out.append(_T_STR)
            out += _U32.pack(self.intern(obj))
        elif isinstance(obj, (list, tuple)):
            if not self._try_table(obj):
                out.append(_T_LIST)
                out += _U32.pack(len(obj))
                for item in obj:
                    self.value(item)
        elif isinstance(obj, dict):
            out.append(_T_DICT)
            out += _U32.pack(len(obj))
            for key, item in obj.items():
                out += _U32.pack(self.intern(_key_str(key)))
                self.value(item)
        else:
            raise TypeError(
                f"object of type {type(obj).__name__} has no binary encoding "
                "(not JSON-serializable)"
            )

    def _try_table(self, items) -> bool:
        """Columnar fast path for a batch: ≥2 records with identical str keys."""
        if len(items) < 2:
            return False
        first = items[0]
        if not isinstance(first, dict) or not first:
            return False
        keys = list(first.keys())
        if not all(isinstance(key, str) for key in keys):
            return False
        for item in items:
            if type(item) is not dict or list(item.keys()) != keys:
                return False
        out = self.tree
        out.append(_T_TABLE)
        out += _U32.pack(len(items))
        out += _U32.pack(len(keys))
        for key in keys:
            out += _U32.pack(self.intern(key))
            self._column([item[key] for item in items])
        return True

    def _column(self, values: list) -> None:
        out = self.tree
        # type() (not isinstance) keeps the per-value int/float/bool
        # distinction: a [1, 2.0] column must stay mixed to round-trip
        # type-exactly, and bools must never sneak into an int column.
        if all(type(value) is float for value in values):
            for value in values:
                if not math.isfinite(value):
                    raise CodecError(
                        "non-finite float is not encodable (strict-JSON parity "
                        "with allow_nan=False)"
                    )
            out.append(_C_FLOAT)
            out += struct.pack(f"!{len(values)}d", *values)
        elif all(
            type(value) is int and _INT64_MIN <= value <= _INT64_MAX
            for value in values
        ):
            out.append(_C_INT)
            out += struct.pack(f"!{len(values)}q", *values)
        elif all(type(value) is str for value in values):
            out.append(_C_STR)
            for value in values:
                out += _U32.pack(self.intern(value))
        else:
            out.append(_C_MIXED)
            for value in values:
                self.value(value)


def encode_frame(
    value: Any,
    *,
    compress_threshold: int | None = DEFAULT_COMPRESS_THRESHOLD,
    compress_level: int = _COMPRESS_LEVEL,
) -> bytes:
    """Encode one strict-JSON value tree as a framed binary blob.

    ``compress_threshold=None`` disables compression outright; otherwise
    payloads at or above the threshold are deflated when that is actually
    smaller.  Raises :class:`CodecError` for non-finite floats and
    ``TypeError`` for non-JSON-serializable objects — the same split
    ``json.dumps(..., allow_nan=False)`` makes.
    """
    encoder = _Encoder()
    encoder.value(value)
    table = bytearray(_U32.pack(len(encoder.strings)))
    for data in encoder.strings:
        table += _U32.pack(len(data))
        table += data
    raw = bytes(table + encoder.tree)
    if len(raw) > _U32_MAX:
        raise CodecError(f"payload of {len(raw)} bytes overflows the u32 frame size")
    stored, flags = raw, 0
    if compress_threshold is not None and len(raw) >= compress_threshold:
        packed = zlib.compress(raw, compress_level)
        if len(packed) < len(raw):
            stored, flags = packed, _FLAG_ZLIB
    prefix = struct.pack("!4sBBI", MAGIC, VERSION, flags, len(raw))
    crc = zlib.crc32(stored, zlib.crc32(prefix)) & 0xFFFFFFFF
    return prefix + _U32.pack(crc) + stored


class _Decoder:
    """Bounds-checked reader over one decompressed payload."""

    def __init__(self, raw: bytes) -> None:
        self.raw = raw
        self.pos = 0
        self.strings: list[str] = []

    def take(self, size: int) -> bytes:
        end = self.pos + size
        if end > len(self.raw):
            raise CodecError("frame payload is truncated")
        chunk = self.raw[self.pos : end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def _guard_count(self, count: int, min_bytes: int) -> int:
        """Refuse counts no well-formed payload of this size could hold."""
        if count * min_bytes > len(self.raw) - self.pos:
            raise CodecError(f"frame declares {count} items but the payload is shorter")
        return count

    def read_strings(self) -> None:
        for _ in range(self._guard_count(self.u32(), 4)):
            data = self.take(self.u32())
            try:
                self.strings.append(data.decode("utf-8"))
            except UnicodeDecodeError as error:
                raise CodecError("string table entry is not valid UTF-8") from error

    def string(self) -> str:
        ref = self.u32()
        if ref >= len(self.strings):
            raise CodecError(f"string reference {ref} is out of table range")
        return self.strings[ref]

    def value(self) -> Any:
        tag = self.take(1)[0]
        if tag == _T_NULL:
            return None
        if tag == _T_FALSE:
            return False
        if tag == _T_TRUE:
            return True
        if tag == _T_INT:
            return _I64.unpack(self.take(8))[0]
        if tag == _T_FLOAT:
            return _F64.unpack(self.take(8))[0]
        if tag == _T_STR:
            return self.string()
        if tag == _T_LIST:
            return [self.value() for _ in range(self._guard_count(self.u32(), 1))]
        if tag == _T_DICT:
            count = self._guard_count(self.u32(), 5)
            result: dict[str, Any] = {}
            for _ in range(count):
                # Two statements on purpose: in `d[k()] = v()` Python
                # evaluates v() first, which would swap the read order.
                key = self.string()
                result[key] = self.value()
            return result
        if tag == _T_TABLE:
            return self._table()
        if tag == _T_BIGINT:
            return int.from_bytes(self.take(self.u32()), "big", signed=True)
        raise CodecError(f"unknown value tag {tag}")

    def _table(self) -> list[dict]:
        n_rows = self.u32()
        n_cols = self._guard_count(self.u32(), 5)
        if n_rows < 2 or n_cols < 1:
            raise CodecError("malformed table: fewer than 2 rows or 1 column")
        columns: list[tuple[str, list]] = []
        for _ in range(n_cols):
            key = self.string()
            column_tag = self.take(1)[0]
            if column_tag == _C_FLOAT:
                values = list(struct.unpack(f"!{n_rows}d", self.take(8 * n_rows)))
            elif column_tag == _C_INT:
                values = list(struct.unpack(f"!{n_rows}q", self.take(8 * n_rows)))
            elif column_tag == _C_STR:
                values = [self.string() for _ in range(n_rows)]
            elif column_tag == _C_MIXED:
                values = [self.value() for _ in range(n_rows)]
            else:
                raise CodecError(f"unknown column tag {column_tag}")
            columns.append((key, values))
        return [
            {key: values[row] for key, values in columns} for row in range(n_rows)
        ]


def decode_frame(blob: bytes, *, max_raw_bytes: int | None = None) -> Any:
    """Decode one framed binary blob back into its value tree.

    Raises :class:`CodecError` on anything that is not a byte-exact,
    CRC-verified frame — wrong magic, unknown version or flags, truncation,
    a flipped bit anywhere, trailing garbage, or a payload that does not
    decode cleanly.  With ``max_raw_bytes`` set, a frame whose *declared
    uncompressed size* exceeds the cap raises :class:`CodecTooLargeError`
    before any decompression happens.
    """
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise CodecError(
            f"binary frames are bytes, not {type(blob).__name__}"
        )
    blob = bytes(blob)
    if len(blob) < HEADER_SIZE:
        raise CodecError(
            f"truncated frame: {len(blob)} bytes is shorter than the "
            f"{HEADER_SIZE}-byte header"
        )
    magic, version, flags, raw_len, crc = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise CodecError(f"unsupported frame version {version} (decoder speaks {VERSION})")
    if flags & ~_KNOWN_FLAGS:
        raise CodecError(f"unknown frame flags 0x{flags:02x}")
    if max_raw_bytes is not None and raw_len > max_raw_bytes:
        raise CodecTooLargeError(raw_len, max_raw_bytes)
    stored = blob[HEADER_SIZE:]
    actual = zlib.crc32(stored, zlib.crc32(blob[:_CRC_OFFSET])) & 0xFFFFFFFF
    if actual != crc:
        raise CodecError("frame CRC mismatch: the blob is corrupt or truncated")
    if flags & _FLAG_ZLIB:
        # Bound the inflate at the declared size: a frame that lies small
        # in raw_len must fail the length check below without ever
        # materialising more than raw_len + 1 bytes.
        inflater = zlib.decompressobj()
        try:
            raw = inflater.decompress(stored, raw_len + 1)
        except zlib.error as error:
            raise CodecError(f"frame decompression failed: {error}") from error
        if inflater.unconsumed_tail or not inflater.eof:
            raise CodecError(
                f"frame zlib stream does not fit its declared "
                f"{raw_len} payload byte(s)"
            )
    else:
        raw = stored
    if len(raw) != raw_len:
        raise CodecError(
            f"frame declares {raw_len} payload byte(s) but carries {len(raw)}"
        )
    decoder = _Decoder(raw)
    try:
        decoder.read_strings()
        value = decoder.value()
    except (struct.error, IndexError, OverflowError, MemoryError) as error:
        raise CodecError(f"malformed frame payload: {error}") from error
    if decoder.pos != len(raw):
        raise CodecError(
            f"{len(raw) - decoder.pos} trailing byte(s) after the payload"
        )
    return value
