"""LIGHTOR back-end web service (Figure 5's "Web Service" box).

The service ties the platform substrate to the LIGHTOR core:

1. the front end (browser extension) opens a recorded video and asks for red
   dots by video id;
2. the service crawls the chat on demand, runs the Highlight Initializer and
   returns (and stores) the top-k red dots;
3. the front end logs viewer interactions back to the service;
4. when enough interactions have accumulated around a dot, the service runs
   one Highlight Extractor refinement round and updates the stored dots and
   highlight results.

For channels that are *still live* the service exposes a second ingest
surface backed by :mod:`repro.streaming`: chat messages and viewer
interactions are pushed as they happen, provisional red dots are served
mid-stream, and ending the live session persists the final (batch-parity)
dots in the store.

The live surface comes in two granularities: per event
(:meth:`~LightorWebService.ingest_live_chat` /
:meth:`~LightorWebService.ingest_live_interactions`) and batched
(:meth:`~LightorWebService.ingest_chat_batch` /
:meth:`~LightorWebService.ingest_plays_batch`) — one boundary crossing,
one storage transaction and one provisional re-score per batch.  Whatever
the chunking, the persisted state is byte-identical
(``tests/test_batch_ingest.py``); ``docs/performance.md`` covers what
batching buys and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import LightorConfig
from repro.core.extractor.extractor import HighlightExtractor
from repro.core.extractor.plays import interactions_to_plays, plays_near_dot
from repro.core.initializer.initializer import HighlightInitializer
from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video, VideoChatLog
from repro.platform.backends import StorageBackend
from repro.platform.crawler import ChatCrawler
from repro.streaming.events import StreamEvent
from repro.streaming.initializer import EmitPolicy
from repro.streaming.session import StreamOrchestrator
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError, require_positive

__all__ = ["LightorWebService"]

_LOGGER = get_logger("platform.service")


@dataclass
class LightorWebService:
    """Serves red dots, logs interactions and refines highlights.

    Parameters
    ----------
    store / crawler:
        The back-end store (any :class:`StorageBackend`) and chat crawler.
        The service keeps no video state of its own, so many workers can be
        stamped out over different backends — see
        :class:`~repro.platform.sharding.ShardedLightorService`.
    initializer:
        A *fitted* Highlight Initializer (train it on a labelled video before
        wiring it into the service).
    extractor:
        The Highlight Extractor used for refinement rounds.
    min_interactions_for_refinement:
        A refinement round runs only when at least this many interaction
        events have been logged near a dot since the last refinement.
    live_k / live_policy:
        Provisional top-k and emit/retract policy for live sessions (``None``
        uses the orchestrator defaults).
    """

    store: StorageBackend
    crawler: ChatCrawler
    initializer: HighlightInitializer
    extractor: HighlightExtractor = field(default_factory=HighlightExtractor)
    config: LightorConfig = field(default_factory=LightorConfig)
    min_interactions_for_refinement: int = 20
    max_live_sessions: int = 64
    live_k: int | None = None
    live_policy: EmitPolicy | None = None
    refinement_rounds_: dict[str, int] = field(default_factory=dict, repr=False)
    _orchestrator: StreamOrchestrator | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        require_positive(self.min_interactions_for_refinement, "min_interactions_for_refinement")

    # -------------------------------------------------------------- red dots
    def request_red_dots(self, video_id: str, k: int | None = None) -> list[RedDot]:
        """Front-end request: return the red dots to render for a video.

        Chat is crawled on demand; computed dots are cached in the store and
        reused on subsequent requests (until refinement updates them).
        """
        if self.store.has_red_dots(video_id):
            return self.store.get_red_dots(video_id)
        self.crawler.crawl_video(video_id)
        chat_log = self.store.get_chat_log(video_id)
        if not self.initializer.is_applicable(chat_log):
            _LOGGER.info(
                "video %s below the chat-rate threshold (%.0f msgs/hour); serving no dots",
                video_id,
                chat_log.messages_per_hour,
            )
            self.store.put_red_dots(video_id, [])
            return []
        dots = self.initializer.propose(chat_log, k=k)
        self.store.put_red_dots(video_id, dots)
        return dots

    # ---------------------------------------------------------- interactions
    def log_interactions(self, video_id: str, interactions: Sequence[Interaction]) -> int:
        """Front-end callback: persist viewer interactions for a video."""
        if not self.store.has_video(video_id):
            raise ValidationError(f"interactions logged for unknown video {video_id!r}")
        return self.store.log_interactions(video_id, interactions)

    # ------------------------------------------------------------ refinement
    def refine_video(self, video_id: str) -> int:
        """Run one Extractor refinement pass over the video's logged data.

        For every stored red dot with enough nearby plays, the Extractor's
        filtering → classification → aggregation dataflow runs on the logged
        interactions; refined boundaries are stored and the dot is moved to
        the refined start (or backwards for Type I dots).  Returns the number
        of dots that were updated.
        """
        dots = self.store.get_red_dots(video_id)
        if not dots:
            return 0
        video = self.store.get_video(video_id)
        logged = self.store.get_interactions(video_id)
        plays = interactions_to_plays(logged, video_duration=video.duration)

        updated = 0
        new_dots: list[RedDot] = []
        for dot in dots:
            local = plays_near_dot(plays, dot, radius=self.config.play_radius)
            if len(local) * 2 < self.min_interactions_for_refinement:
                new_dots.append(dot)
                continue

            def replay_source(current_dot: RedDot, round_index: int) -> list:
                # Refinement over logged data is a single-round extraction:
                # later rounds re-use the same logged plays.
                return plays_near_dot(plays, current_dot, radius=self.config.play_radius)

            result = self.extractor.extract(dot, replay_source, video_duration=video.duration)
            if result.highlight is not None:
                self.store.put_highlight(video_id, result.highlight)
                new_dots.append(dot.moved_to(result.highlight.start))
                updated += 1
            else:
                new_dots.append(result.dot)
        self.store.put_red_dots(video_id, new_dots)
        self.refinement_rounds_[video_id] = self.refinement_rounds_.get(video_id, 0) + 1
        return updated

    # ------------------------------------------------------------ live ingest
    @property
    def streaming(self) -> StreamOrchestrator:
        """The live-channel orchestrator (created on first live request)."""
        if self._orchestrator is None:
            kwargs = {}
            if self.live_policy is not None:
                kwargs["policy"] = self.live_policy
            self._orchestrator = StreamOrchestrator(
                initializer=self.initializer,
                config=self.config,
                k=self.live_k,
                max_sessions=self.max_live_sessions,
                on_evict=self._persist_live_result,
                on_evict_highlights=self._persist_live_highlights,
                **kwargs,
            )
        return self._orchestrator

    def start_live(self, video: Video) -> None:
        """Register a channel that is currently live and open its session.

        The video metadata (its id, and the duration so far if known) is
        stored so interactions and final results have somewhere to land.
        """
        self.store.put_video(video)
        self.streaming.open_session(video.video_id)

    def ingest_live_chat(
        self, video_id: str, messages: Sequence[ChatMessage]
    ) -> list[StreamEvent]:
        """Push chat messages from a live channel; returns emit/retract events.

        The channel must have been opened with :meth:`start_live` and still
        be live.  Rejecting unknown channels here (instead of silently
        opening a fresh session, as the low-level orchestrator would) keeps
        an LRU-evicted or already-ended channel from being reborn with only
        the tail of its chat — whose finalize would then overwrite the
        correct stored dots.
        """
        session = self._require_live(video_id)
        events: list[StreamEvent] = []
        for message in messages:
            events.extend(session.ingest_message(message))
        return events

    def ingest_chat_batch(
        self, video_id: str, messages: Sequence[ChatMessage], persist: bool = False
    ) -> list[StreamEvent]:
        """Push a timestamp-ordered chat batch for a live channel.

        The batched twin of :meth:`ingest_live_chat`: the whole batch crosses
        the service boundary once and folds into the window state in one
        NumPy pass, with the emit-policy checkpoint evaluated once at the
        batch boundary instead of once per message.  The final (and
        persisted) red dots are byte-identical to per-message ingest — only
        the provisional re-score cadence coarsens, which is where batched
        ingest gets its throughput (see ``docs/performance.md``).

        With ``persist=True`` the batch is also appended to the store's chat
        log (one transaction via
        :meth:`~repro.platform.backends.base.StorageBackend.append_chat`),
        so a post-stream batch pass can re-read the full live chat.
        """
        session = self._require_live(video_id)
        # Fold first, persist second: ingest validates batch ordering, and a
        # rejected batch must not leave rows in the store that the stream
        # never saw (that would break both the sorted-log invariant and the
        # byte-equivalence of persisted state with per-event ingest).
        events = session.ingest_messages(list(messages))
        if persist and self.store.has_video(video_id):
            self.store.append_chat(video_id, messages)
        return events

    def ingest_live_interactions(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push viewer interactions from a live channel; returns refinements.

        Interactions are also persisted in the store so a post-stream batch
        refinement pass (:meth:`refine_video`) can reuse them.  Alias of
        :meth:`ingest_plays_batch` (one event is just a batch of one).
        """
        return self.ingest_plays_batch(video_id, interactions)

    def ingest_plays_batch(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push a batch of viewer interactions for a live channel.

        The whole batch is persisted in **one** store append (a single
        transaction on durable backends) and folded into the streaming
        extractor in arrival order.  Before any play is attributed, a stale
        provisional dot set is refreshed — any emit/retract events that
        forces are returned ahead of the refinement events — so play
        attribution depends only on the events ingested so far, never on how
        chat was chunked into calls (the batch-equivalence suite holds the
        service to this).
        """
        session = self._require_live(video_id)
        if self.store.has_video(video_id):
            self.store.log_interactions(video_id, interactions)
        return session.ingest_interactions(list(interactions))

    def live_red_dots(self, video_id: str) -> list[RedDot]:
        """The red dots to render right now for a channel.

        Falls back to the stored dots when the channel is no longer live
        (ended or LRU-evicted) — the front end keeps rendering seamlessly.
        """
        if self.streaming.has_session(video_id):
            return self.streaming.current_dots(video_id)
        return self.store.get_red_dots(video_id)

    def end_live(self, video_id: str, duration: float | None = None) -> list[RedDot]:
        """Close a live channel: final batch-parity dots, persisted.

        Persistence happens through the orchestrator's eviction callback, so
        an LRU-evicted channel and an explicitly ended one land in the store
        the same way — which also makes ``end_live`` idempotent: ending a
        channel that was already closed or evicted returns the dots
        persisted at that time.
        """
        if not self.streaming.has_session(video_id):
            if self.store.has_video(video_id):
                return self.store.get_red_dots(video_id)
            raise ValidationError(f"no live session for video {video_id!r}")
        return self.streaming.close_session(video_id, duration)

    def shutdown(self) -> None:
        """Finalize any open live sessions (persisting results), close the store."""
        if self._orchestrator is not None:
            self._orchestrator.close_all_sessions()
        self.store.close()

    def _require_live(self, video_id: str):
        if not self.streaming.has_session(video_id):
            raise ValidationError(
                f"video {video_id!r} has no live session; call start_live first"
            )
        return self.streaming.session(video_id)

    def _persist_live_result(self, video_id: str, dots: list[RedDot]) -> None:
        if self.store.has_video(video_id):
            self.store.put_red_dots(video_id, dots)
        else:
            _LOGGER.info(
                "live session %s ended with %d dots but no stored video metadata",
                video_id,
                len(dots),
            )

    def _persist_live_highlights(self, video_id: str, highlights: list[Highlight]) -> None:
        if not self.store.has_video(video_id):
            _LOGGER.info(
                "live session %s refined %d highlights but no stored video metadata",
                video_id,
                len(highlights),
            )
            return
        for highlight in highlights:
            self.store.put_highlight(video_id, highlight, source="streaming")
