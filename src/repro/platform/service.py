"""LIGHTOR back-end web service (Figure 5's "Web Service" box).

The service ties the platform substrate to the LIGHTOR core:

1. the front end (browser extension) opens a recorded video and asks for red
   dots by video id;
2. the service crawls the chat on demand, runs the Highlight Initializer and
   returns (and stores) the top-k red dots;
3. the front end logs viewer interactions back to the service;
4. when enough interactions have accumulated around a dot, the service runs
   one Highlight Extractor refinement round and updates the stored dots and
   highlight results.

For channels that are *still live* the service exposes a second ingest
surface backed by :mod:`repro.streaming`: chat messages and viewer
interactions are pushed as they happen, provisional red dots are served
mid-stream, and ending the live session persists the final (batch-parity)
dots in the store.

The live surface comes in two granularities: per event
(:meth:`~LightorWebService.ingest_live_chat` /
:meth:`~LightorWebService.ingest_live_interactions`) and batched
(:meth:`~LightorWebService.ingest_chat_batch` /
:meth:`~LightorWebService.ingest_plays_batch`) — one boundary crossing,
one storage transaction and one provisional re-score per batch.  Whatever
the chunking, the persisted state is byte-identical
(``tests/test_batch_ingest.py``); ``docs/performance.md`` covers what
batching buys and why.

With ``checkpoint_every`` set, live sessions are also *crash-safe*: the
service writes a durable session checkpoint on that event cadence, on LRU
eviction, and whenever the persisted ingest kind flips between chat and
plays (the flip rule is what makes recovery byte-exact — see
:mod:`repro.platform.recovery`), and
:meth:`~LightorWebService.recover_live_sessions` rebuilds every open
session from its latest checkpoint plus the rows persisted since it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import LightorConfig
from repro.core.extractor.extractor import HighlightExtractor
from repro.core.extractor.plays import interactions_to_plays, plays_near_dot
from repro.core.initializer.initializer import HighlightInitializer
from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video, VideoChatLog
from repro.platform.backends import StorageBackend
from repro.platform.crawler import ChatCrawler
from repro.streaming.events import StreamEvent
from repro.streaming.initializer import EmitPolicy
from repro.streaming.session import StreamOrchestrator
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError, require_positive

__all__ = ["LightorWebService"]

_LOGGER = get_logger("platform.service")


@dataclass
class LightorWebService:
    """Serves red dots, logs interactions and refines highlights.

    Parameters
    ----------
    store / crawler:
        The back-end store (any :class:`StorageBackend`) and chat crawler.
        The service keeps no video state of its own, so many workers can be
        stamped out over different backends — see
        :class:`~repro.platform.sharding.ShardedLightorService`.
    initializer:
        A *fitted* Highlight Initializer (train it on a labelled video before
        wiring it into the service).
    extractor:
        The Highlight Extractor used for refinement rounds.
    min_interactions_for_refinement:
        A refinement round runs only when at least this many interaction
        events have been logged near a dot since the last refinement.
    live_k / live_policy:
        Provisional top-k and emit/retract policy for live sessions (``None``
        uses the orchestrator defaults).
    checkpoint_every:
        Durable-checkpoint cadence for live sessions, in persisted events.
        ``None`` (default) disables checkpointing.  When set, a session is
        checkpointed at ``start_live``, after every ``checkpoint_every``
        persisted events, before any persisted batch whose kind (chat vs
        plays) differs from the batches persisted since the last checkpoint,
        and on LRU eviction — see :mod:`repro.platform.recovery` for why
        each trigger exists.
    """

    store: StorageBackend
    crawler: ChatCrawler
    initializer: HighlightInitializer
    extractor: HighlightExtractor = field(default_factory=HighlightExtractor)
    config: LightorConfig = field(default_factory=LightorConfig)
    min_interactions_for_refinement: int = 20
    max_live_sessions: int = 64
    live_k: int | None = None
    live_policy: EmitPolicy | None = None
    checkpoint_every: int | None = None
    refinement_rounds_: dict[str, int] = field(default_factory=dict, repr=False)
    _orchestrator: StreamOrchestrator | None = field(default=None, repr=False)
    # Checkpoint bookkeeping per live channel: store row counts covered by
    # the latest snapshot inputs, events persisted since the last snapshot,
    # and the (single, by the flip rule) kind persisted since it.
    _persisted_chat: dict[str, int] = field(default_factory=dict, repr=False)
    _persisted_plays: dict[str, int] = field(default_factory=dict, repr=False)
    _events_since_checkpoint: dict[str, int] = field(default_factory=dict, repr=False)
    _suffix_kind: dict[str, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        require_positive(self.min_interactions_for_refinement, "min_interactions_for_refinement")
        if self.checkpoint_every is not None:
            require_positive(self.checkpoint_every, "checkpoint_every")

    # -------------------------------------------------------------- red dots
    def request_red_dots(self, video_id: str, k: int | None = None) -> list[RedDot]:
        """Front-end request: return the red dots to render for a video.

        Chat is crawled on demand; computed dots are cached in the store and
        reused on subsequent requests (until refinement updates them).  A
        cache hit still honours ``k``: a *smaller* ``k`` than the cached set
        re-truncates it (greedy spaced selection is prefix-stable, so the
        truncation equals a fresh top-``k`` — the stored superset is left
        untouched for future requests); a *larger* ``k`` recomputes from the
        stored chat and, when the video can actually yield more dots,
        replaces the cached set (which resets any refinement-adjusted
        positions — refinement reruns as interactions accumulate).  When it
        cannot (sparse chat under-delivers against the spacing constraint),
        the cached — possibly refined — set is kept.
        """
        cached: list[RedDot] | None = None
        if self.store.has_red_dots(video_id):
            cached = self.store.get_red_dots(video_id)
            if not cached:
                # "Computed: nothing to show" (below-threshold video) holds
                # for every k; recomputing would just re-derive the empty set.
                return cached
            if k is None or k == len(cached):
                return cached
            if k < len(cached):
                return self._truncate_dots(cached, k)
            # k exceeds the cached set: fall through and recompute with the
            # requested k against the already-stored chat.
        if not self.store.has_chat(video_id):
            self.crawler.crawl_video(video_id)
        chat_log = self.store.get_chat_log(video_id)
        if not self.initializer.is_applicable(chat_log):
            if cached:
                # A larger-k fall-through on a video whose *stored chat* is
                # below the threshold (e.g. dots persisted by the live path,
                # which never gates on applicability): keep the cached set —
                # replacing real results with [] would destroy them for
                # every future request.
                return cached
            _LOGGER.info(
                "video %s below the chat-rate threshold (%.0f msgs/hour); serving no dots",
                video_id,
                chat_log.messages_per_hour,
            )
            self.store.put_red_dots(video_id, [])
            return []
        dots = self.initializer.propose(chat_log, k=k)
        if cached is not None and len(dots) <= len(cached):
            # The video cannot yield more dots than already cached (the
            # spacing constraint under-delivers on sparse chat): keep the
            # cached set — it is the same selection, possibly with
            # refinement-adjusted positions that a rewrite would erase.
            return cached
        self.store.put_red_dots(video_id, dots)
        return dots

    @staticmethod
    def _truncate_dots(dots: Sequence[RedDot], k: int) -> list[RedDot]:
        """The exact top-``k`` of a cached spaced selection.

        ``select_spaced_top_k`` accepts candidates in ``(-score, window
        start)`` order, and each acceptance depends only on the already
        accepted prefix — so the first ``k`` accepted dots of a larger
        selection *are* the ``k``-selection.  Re-ranking the cached dots by
        the same key and keeping the first ``k`` therefore reproduces a
        fresh ``k``-request without recomputation.
        """
        def rank(dot: RedDot) -> tuple[float, float]:
            start = dot.window[0] if dot.window is not None else dot.position
            return (-(dot.score or 0.0), start)

        best = sorted(dots, key=rank)[:k]
        return sorted(best, key=lambda dot: dot.position)

    # ---------------------------------------------------------- interactions
    def log_interactions(self, video_id: str, interactions: Sequence[Interaction]) -> int:
        """Front-end callback: persist viewer interactions for a video.

        Rows logged here bypass the live fold, so for a checkpointed channel
        the *durable* snapshot must immediately count them as covered —
        otherwise a crash before the next cadence checkpoint would make
        recovery replay into the session interactions it never ingested.  A
        live session gets a fresh checkpoint; an evicted-but-checkpointed
        one gets its snapshot's count patched (its session state is
        unchanged — it never saw these rows either).
        """
        if not self.store.has_video(video_id):
            raise ValidationError(f"interactions logged for unknown video {video_id!r}")
        total = self.store.log_interactions(video_id, interactions)
        if self.checkpointing:
            self._persisted_plays[video_id] = total
            if self._orchestrator is not None and self._orchestrator.has_session(video_id):
                self.checkpoint_live_session(video_id)
            else:
                from repro.platform.recovery import SNAPSHOT_VERSION

                payload = self.store.get_session_snapshot(video_id)
                if payload is not None and payload.get("version") == SNAPSHOT_VERSION:
                    payload["interactions_persisted"] = total
                    self.store.put_session_snapshot(video_id, payload)
        return total

    # ------------------------------------------------------------ refinement
    def refine_video(self, video_id: str) -> int:
        """Run one Extractor refinement pass over the video's logged data.

        For every stored red dot with enough nearby plays, the Extractor's
        filtering → classification → aggregation dataflow runs on the logged
        interactions; refined boundaries are stored and the dot is moved to
        the refined start (or backwards for Type I dots).  Returns the number
        of dots that were updated.
        """
        dots = self.store.get_red_dots(video_id)
        if not dots:
            return 0
        video = self.store.get_video(video_id)
        logged = self.store.get_interactions(video_id)
        plays = interactions_to_plays(logged, video_duration=video.duration)

        updated = 0
        new_dots: list[RedDot] = []
        for dot in dots:
            local = plays_near_dot(plays, dot, radius=self.config.play_radius)
            if len(local) * 2 < self.min_interactions_for_refinement:
                new_dots.append(dot)
                continue

            def replay_source(current_dot: RedDot, round_index: int) -> list:
                # Refinement over logged data is a single-round extraction:
                # later rounds re-use the same logged plays.
                return plays_near_dot(plays, current_dot, radius=self.config.play_radius)

            result = self.extractor.extract(dot, replay_source, video_duration=video.duration)
            if result.highlight is not None:
                self.store.put_highlight(video_id, result.highlight)
                new_dots.append(dot.moved_to(result.highlight.start))
                updated += 1
            else:
                new_dots.append(result.dot)
        self.store.put_red_dots(video_id, new_dots)
        self.refinement_rounds_[video_id] = self.refinement_rounds_.get(video_id, 0) + 1
        return updated

    # ------------------------------------------------------------ live ingest
    @property
    def streaming(self) -> StreamOrchestrator:
        """The live-channel orchestrator (created on first live request)."""
        if self._orchestrator is None:
            kwargs = {}
            if self.live_policy is not None:
                kwargs["policy"] = self.live_policy
            self._orchestrator = StreamOrchestrator(
                initializer=self.initializer,
                config=self.config,
                k=self.live_k,
                max_sessions=self.max_live_sessions,
                on_evict=self._persist_live_result,
                on_evict_highlights=self._persist_live_highlights,
                on_evict_snapshot=(
                    self._checkpoint_on_evict if self.checkpointing else None
                ),
                **kwargs,
            )
        return self._orchestrator

    @property
    def checkpointing(self) -> bool:
        """Whether durable session checkpointing is enabled."""
        return self.checkpoint_every is not None

    def start_live(self, video: Video) -> None:
        """Register a channel that is currently live and open its session.

        The video metadata (its id, and the duration so far if known) is
        stored so interactions and final results have somewhere to land.
        With checkpointing enabled an initial snapshot is written
        immediately: the stored snapshots are the open-session registry, so
        a channel that crashes before its first cadence checkpoint is still
        rebuilt by recovery instead of silently lost.

        A channel that was LRU-evicted while still live left a checkpoint
        behind; going live again *resumes from it* rather than opening an
        empty session — which would both lose the evicted state in memory
        and overwrite its only durable copy with an empty snapshot.
        """
        self.store.put_video(video)
        video_id = video.video_id
        if self.checkpointing and not self.streaming.has_session(video_id):
            payload = self.store.get_session_snapshot(video_id)
            if payload is not None:
                from repro.platform.recovery import (
                    check_snapshot_version,
                    recover_session,
                )

                check_snapshot_version(video_id, payload)
                if not payload["session"]["closed"]:
                    recover_session(self, video_id, payload)
                    return
        self.streaming.open_session(video_id)
        if self.checkpointing:
            self.checkpoint_live_session(video_id)

    def ingest_live_chat(
        self, video_id: str, messages: Sequence[ChatMessage]
    ) -> list[StreamEvent]:
        """Push chat messages from a live channel; returns emit/retract events.

        The channel must have been opened with :meth:`start_live` and still
        be live.  Rejecting unknown channels here (instead of silently
        opening a fresh session, as the low-level orchestrator would) keeps
        an LRU-evicted or already-ended channel from being reborn with only
        the tail of its chat — whose finalize would then overwrite the
        correct stored dots.
        """
        session = self._require_live(video_id)
        events: list[StreamEvent] = []
        for message in messages:
            events.extend(session.ingest_message(message))
        return events

    def ingest_chat_batch(
        self, video_id: str, messages: Sequence[ChatMessage], persist: bool = False
    ) -> list[StreamEvent]:
        """Push a timestamp-ordered chat batch for a live channel.

        The batched twin of :meth:`ingest_live_chat`: the whole batch crosses
        the service boundary once and folds into the window state in one
        NumPy pass, with the emit-policy checkpoint evaluated once at the
        batch boundary instead of once per message.  The final (and
        persisted) red dots are byte-identical to per-message ingest — only
        the provisional re-score cadence coarsens, which is where batched
        ingest gets its throughput (see ``docs/performance.md``).

        With ``persist=True`` the batch is also appended to the store's chat
        log (one transaction via
        :meth:`~repro.platform.backends.base.StorageBackend.append_chat`),
        so a post-stream batch pass can re-read the full live chat — and so
        crash recovery can replay it (checkpointed sessions only recover
        chat that was persisted; see :mod:`repro.platform.recovery`).
        Requesting persistence for a channel whose video metadata was never
        stored is an error, exactly like :meth:`log_interactions` — silently
        skipping the append would leave the "full live chat" promise quietly
        broken.
        """
        session = self._require_live(video_id)
        if persist and not self.store.has_video(video_id):
            raise ValidationError(
                f"cannot persist chat for unknown video {video_id!r}; "
                "store its metadata first (start_live does)"
            )
        if persist:
            self._checkpoint_before_persist(video_id, "chat")
        # Fold first, persist second: ingest validates batch ordering, and a
        # rejected batch must not leave rows in the store that the stream
        # never saw (that would break both the sorted-log invariant and the
        # byte-equivalence of persisted state with per-event ingest).
        events = session.ingest_messages(list(messages))
        if persist:
            self._persisted_chat[video_id] = self.store.append_chat(video_id, messages)
            self._after_persisted_ingest(video_id, "chat", len(messages))
        return events

    def ingest_live_interactions(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push viewer interactions from a live channel; returns refinements.

        Interactions are also persisted in the store so a post-stream batch
        refinement pass (:meth:`refine_video`) can reuse them.  Alias of
        :meth:`ingest_plays_batch` (one event is just a batch of one).
        """
        return self.ingest_plays_batch(video_id, interactions)

    def ingest_plays_batch(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push a batch of viewer interactions for a live channel.

        The whole batch is persisted in **one** store append (a single
        transaction on durable backends) and folded into the streaming
        extractor in arrival order.  Before any play is attributed, a stale
        provisional dot set is refreshed — any emit/retract events that
        forces are returned ahead of the refinement events — so play
        attribution depends only on the events ingested so far, never on how
        chat was chunked into calls (the batch-equivalence suite holds the
        service to this).

        Fold first, persist second — the same invariant as
        :meth:`ingest_chat_batch`: the session validates the batch by
        ingesting it, and a rejected batch must not leave interaction rows
        in the store that the stream never saw.
        """
        session = self._require_live(video_id)
        persist = self.store.has_video(video_id)
        if persist:
            self._checkpoint_before_persist(video_id, "plays")
        events = session.ingest_interactions(list(interactions))
        if persist:
            self._persisted_plays[video_id] = self.store.log_interactions(
                video_id, interactions
            )
            self._after_persisted_ingest(video_id, "plays", len(interactions))
        return events

    def live_red_dots(self, video_id: str) -> list[RedDot]:
        """The red dots to render right now for a channel.

        Falls back to the stored dots when the channel is no longer live
        (ended or LRU-evicted) — the front end keeps rendering seamlessly.
        """
        if self.streaming.has_session(video_id):
            return self.streaming.current_dots(video_id)
        return self.store.get_red_dots(video_id)

    def end_live(self, video_id: str, duration: float | None = None) -> list[RedDot]:
        """Close a live channel: final batch-parity dots, persisted.

        Persistence happens through the orchestrator's eviction callback, so
        an LRU-evicted channel and an explicitly ended one land in the store
        the same way — which also makes ``end_live`` idempotent: ending a
        channel that was already closed or evicted returns the dots
        persisted at that time.

        Ending a channel is the clean close: any session checkpoint is
        deleted (there is nothing left to recover), including the lingering
        checkpoint of an LRU-evicted channel that is only now truly over.
        """
        if not self.streaming.has_session(video_id):
            if self.store.has_video(video_id):
                self._forget_checkpoint(video_id)
                return self.store.get_red_dots(video_id)
            raise ValidationError(f"no live session for video {video_id!r}")
        dots = self.streaming.close_session(video_id, duration)
        self._forget_checkpoint(video_id)
        return dots

    def shutdown(self) -> None:
        """Finalize any open live sessions (persisting results), close the store.

        A graceful shutdown routes every open session through
        :meth:`end_live`, so final dots persist through the usual eviction
        callbacks **and** the session checkpoints are deleted — after a
        clean shutdown there is nothing for recovery to rebuild (a killed
        process, by contrast, leaves its checkpoints behind).

        The open-id list is snapshotted up front (``end_live`` mutates the
        orchestrator's session table as it goes) and the store is closed in a
        ``finally``: one session whose finalization raises must not leak the
        backend's connection, nor stop the remaining sessions from being
        finalized — they are all ended best-effort and the first error is
        re-raised after the store is closed.
        """
        first_error: BaseException | None = None
        try:
            if self._orchestrator is not None:
                for video_id in list(self._orchestrator.open_video_ids()):
                    try:
                        self.end_live(video_id)
                    except BaseException as error:  # noqa: BLE001 - re-raised below
                        if first_error is None:
                            first_error = error
        finally:
            self.store.close()
        if first_error is not None:
            raise first_error

    def suspend(self) -> int:
        """Checkpoint every open live session, then release the store handle.

        The graceful-*drain* counterpart of :meth:`shutdown`: nothing is
        finalized and no checkpoint is deleted, so on a durable backend the
        whole deployment can be rebuilt byte-exactly with
        :meth:`recover_live_sessions` (or ``repro recover``) — exactly what a
        draining network gateway wants on SIGTERM.  Sessions whose video
        metadata was never stored cannot be checkpointed and are skipped
        (there is nowhere durable to put them).  Returns the number of
        sessions checkpointed; the store handle is released even when a
        checkpoint write raises (first error re-raised, like
        :meth:`shutdown`).
        """
        first_error: BaseException | None = None
        checkpointed = 0
        try:
            if self._orchestrator is not None:
                for video_id in list(self._orchestrator.open_video_ids()):
                    if not self.store.has_video(video_id):
                        _LOGGER.info(
                            "live session %s has no stored video metadata; "
                            "suspend cannot checkpoint it",
                            video_id,
                        )
                        continue
                    try:
                        self._write_checkpoint(
                            video_id, self._orchestrator.session(video_id)
                        )
                        checkpointed += 1
                    except BaseException as error:  # noqa: BLE001 - re-raised below
                        if first_error is None:
                            first_error = error
        finally:
            self.store.close()
        if first_error is not None:
            raise first_error
        return checkpointed

    # ---------------------------------------------------- checkpoint/recovery
    def checkpoint_live_session(self, video_id: str) -> dict:
        """Write a durable checkpoint of a live session right now.

        The snapshot bundles the session state with the store row counts it
        covers, committed in one transaction.  Returns the stored payload.
        """
        if not self.streaming.has_session(video_id):
            raise ValidationError(f"no live session for video {video_id!r}")
        payload = self._write_checkpoint(video_id, self.streaming.session(video_id))
        self._events_since_checkpoint[video_id] = 0
        self._suffix_kind.pop(video_id, None)
        return payload

    def detach_channel(self, video_id: str) -> bool:
        """Suspend one channel's live session for migration off this shard.

        The per-channel analogue of :meth:`suspend`: the session's complete
        in-memory state is written as a durable snapshot — migration always
        checkpoints, whatever the configured cadence — then the session is
        dropped *without* finalization, so no eviction callback fires and the
        stored red dots are not overwritten with a premature closing result.
        Returns whether a live session was detached (``False`` when the
        channel is closed, evicted, or was never live here); in either case
        the stored rows stay put for :meth:`StorageBackend.export_channel`
        to bundle, the fresh snapshot riding along when one was written.
        """
        if self._orchestrator is None or not self._orchestrator.has_session(video_id):
            return False
        if not self.store.has_video(video_id):
            raise ValidationError(
                f"live session {video_id!r} has no stored video metadata; "
                "it cannot be checkpointed for migration"
            )
        self._write_checkpoint(video_id, self._orchestrator.session(video_id))
        self._orchestrator.drop_session(video_id)
        self._drop_checkpoint_state(video_id)
        return True

    def attach_channel(self, video_id: str) -> bool:
        """Resume a migrated-in channel's live session from its snapshot.

        Runs exactly the recovery path — snapshot restore plus replay of any
        chat/interaction rows persisted after it (an empty suffix when the
        source detached cleanly).  Only call this for channels the source
        reported live: a channel that was merely *checkpointed-then-evicted*
        keeps its imported snapshot for a later ``start_live`` resume but
        must not be resurrected into memory by the move itself.  Returns
        whether a session was opened; a missing or closed snapshot is a
        no-op.  On a non-checkpointing tier the snapshot was pure transport,
        so it is deleted once consumed — leaving the destination's stored
        state byte-identical to a channel that was never moved.
        """
        from repro.platform.recovery import check_snapshot_version, recover_session

        payload = self.store.get_session_snapshot(video_id)
        if payload is None:
            return False
        check_snapshot_version(video_id, payload)
        if payload["session"]["closed"]:
            return False
        recover_session(self, video_id, payload)
        if not self.checkpointing:
            self.store.delete_session_snapshot(video_id)
        return True

    def recover_live_sessions(self) -> list:
        """Rebuild every open session from its latest durable checkpoint.

        Call this on a freshly constructed service over a store that a
        crashed (or killed) process left behind: each stored snapshot is
        restored around this service's trained model and the chat and
        interactions persisted after the snapshot are replayed into it.
        Returns the :class:`~repro.platform.recovery.RecoveredSession`
        reports.  See :mod:`repro.platform.recovery` for the guarantees.
        """
        from repro.platform import recovery

        return recovery.recover_live_sessions(self)

    def _write_checkpoint(self, video_id: str, session) -> dict:
        """Build and durably store the checkpoint envelope for ``session``."""
        from repro.platform.recovery import build_checkpoint

        payload = build_checkpoint(
            session,
            chat_persisted=self._persisted_count(
                video_id, self._persisted_chat, self.store.count_chat
            ),
            interactions_persisted=self._persisted_count(
                video_id, self._persisted_plays, self.store.count_interactions
            ),
        )
        self.store.put_session_snapshot(video_id, payload)
        return payload

    def _persisted_count(self, video_id: str, cache: dict[str, int], counter) -> int:
        """Store row count for a video, tracked incrementally once known."""
        count = cache.get(video_id)
        if count is None:
            count = cache[video_id] = counter(video_id)
        return count

    def _checkpoint_before_persist(self, video_id: str, kind: str) -> None:
        """Force a checkpoint when the persisted ingest kind flips.

        Recovery replays the rows persisted after a snapshot, and the store
        only orders rows *within* a kind — so the suffix past any snapshot
        must stay homogeneous for the replay to be order-exact.  Snapshotting
        *before* the flipping batch touches the store keeps that invariant
        at every instant, even if the process dies mid-call.
        """
        if not self.checkpointing:
            return
        if self._suffix_kind.get(video_id, kind) != kind:
            self.checkpoint_live_session(video_id)

    def _after_persisted_ingest(self, video_id: str, kind: str, n_events: int) -> None:
        """Cadence bookkeeping after a persisted batch folded successfully."""
        if not self.checkpointing:
            return
        self._suffix_kind[video_id] = kind
        count = self._events_since_checkpoint.get(video_id, 0) + n_events
        self._events_since_checkpoint[video_id] = count
        if count >= self.checkpoint_every:
            self.checkpoint_live_session(video_id)

    def _checkpoint_on_evict(self, video_id: str, session) -> None:
        """Orchestrator eviction hook: snapshot the still-open session state.

        LRU eviction reclaims memory from a channel that is still live; the
        checkpoint lets ``recover_live_sessions`` (or ``repro recover``)
        continue it later instead of losing everything past the final dots.
        """
        if not self.store.has_video(video_id):
            return
        self._write_checkpoint(video_id, session)
        self._drop_checkpoint_state(video_id)

    def _note_recovered(self, video_id: str, chat_rows: int, interaction_rows: int) -> None:
        """Post-recovery bookkeeping: counts are current; write a fresh snapshot."""
        self._persisted_chat[video_id] = chat_rows
        self._persisted_plays[video_id] = interaction_rows
        self._events_since_checkpoint[video_id] = 0
        self._suffix_kind.pop(video_id, None)
        if self.checkpointing:
            self.checkpoint_live_session(video_id)

    def _forget_checkpoint(self, video_id: str) -> None:
        """Clean close: delete the stored snapshot and the local bookkeeping."""
        self.store.delete_session_snapshot(video_id)
        self._drop_checkpoint_state(video_id)

    def _drop_checkpoint_state(self, video_id: str) -> None:
        self._persisted_chat.pop(video_id, None)
        self._persisted_plays.pop(video_id, None)
        self._events_since_checkpoint.pop(video_id, None)
        self._suffix_kind.pop(video_id, None)

    def _require_live(self, video_id: str):
        if not self.streaming.has_session(video_id):
            raise ValidationError(
                f"video {video_id!r} has no live session; call start_live first"
            )
        return self.streaming.session(video_id)

    def _persist_live_result(self, video_id: str, dots: list[RedDot]) -> None:
        if self.store.has_video(video_id):
            self.store.put_red_dots(video_id, dots)
        else:
            _LOGGER.info(
                "live session %s ended with %d dots but no stored video metadata",
                video_id,
                len(dots),
            )

    def _persist_live_highlights(self, video_id: str, highlights: list[Highlight]) -> None:
        if not self.store.has_video(video_id):
            _LOGGER.info(
                "live session %s refined %d highlights but no stored video metadata",
                video_id,
                len(highlights),
            )
            return
        for highlight in highlights:
            self.store.put_highlight(video_id, highlight, source="streaming")
