"""Deployment substrate: a Twitch-like platform and the LIGHTOR web stack.

Section VI of the paper describes two deployment paths: a browser extension
backed by a web service + crawler, or direct integration into a streaming
platform.  This package provides runnable equivalents of every box in the
paper's Figure 5, layered for scale (see ``docs/architecture.md``):

* :mod:`backends <repro.platform.backends>` — pluggable storage behind the
  :class:`StorageBackend` contract: the in-memory reference store and a
  durable SQLite backend (stdlib ``sqlite3``, WAL mode).
* :mod:`codecs <repro.platform.codecs>` — round-trip-exact to/from-dict
  serialization for the core value objects (what durable backends store).
* :mod:`api <repro.platform.api>` — a simulated live-streaming platform API
  (channel listings, video metadata, chat download).
* :mod:`crawler <repro.platform.crawler>` — offline/online chat crawler
  writing into a backend.
* :mod:`service <repro.platform.service>` — the LIGHTOR back-end web service:
  receives a video id, crawls chat if needed, computes red dots, serves them,
  logs interactions and refines highlights.  Stateless over its backend.
  Live channels ingest per event (``ingest_live_chat``) or in batches
  (``ingest_chat_batch`` / ``ingest_plays_batch`` — one lock acquisition
  and one storage transaction per batch; byte-equivalent persisted state).
* :mod:`recovery <repro.platform.recovery>` — durable checkpoint/recovery
  for live sessions: the service snapshots each open session into its
  backend (on an event cadence, on kind flips, on eviction) and
  ``recover_live_sessions`` rebuilds every open session after a crash from
  its latest snapshot plus the rows persisted since it.
* :mod:`placement <repro.platform.placement>` — the control plane: a
  versioned ``{channel -> shard}`` :class:`PlacementMap` (epoch 0 *is* the
  legacy consistent-hash ring) with migration pins, in-flight markers and
  minimal reshard planning; :class:`WrongShardError` is its wire-visible
  409 redirect.
* :mod:`sharding <repro.platform.sharding>` — the sharded front door:
  routes video ids across N workers through the placement map, each worker
  with its own backend, crawler and streaming orchestrator, under
  per-shard locks; supports live channel migration and online resharding.
* :mod:`server <repro.platform.server>` — the network boundary: a
  stdlib-only ``asyncio`` HTTP/1.1 JSON gateway exposing the full sharded
  front-door surface, with per-request validation (400), bounded-queue
  admission control (503) and graceful drain that checkpoints open live
  sessions for byte-exact recovery.
* :mod:`client <repro.platform.client>` — the thin blocking HTTP client
  mirroring the service surface method for method, so in-process callers
  (the load harness above all) can be pointed at a gateway by swapping the
  object.
* :mod:`extension <repro.platform.extension>` — the browser-extension front
  end: renders red dots on the progress bar and forwards viewer interactions
  to the service.
"""

from repro.platform.backends import (
    HighlightRecord,
    InMemoryStore,
    SQLiteStore,
    StorageBackend,
    create_backend,
)
from repro.platform.api import SimulatedStreamingAPI
from repro.platform.client import GatewayError, GatewayOverloadedError, LightorClient
from repro.platform.crawler import ChatCrawler
from repro.platform.placement import PlacementMap, WrongShardError
from repro.platform.server import GatewayThread, LightorGateway
from repro.platform.service import LightorWebService
from repro.platform.sharding import ConsistentHashRing, ShardedLightorService
from repro.platform.extension import BrowserExtension, ProgressBarView

__all__ = [
    "BrowserExtension",
    "ChatCrawler",
    "ConsistentHashRing",
    "GatewayError",
    "GatewayOverloadedError",
    "GatewayThread",
    "HighlightRecord",
    "InMemoryStore",
    "LightorClient",
    "LightorGateway",
    "LightorWebService",
    "PlacementMap",
    "ProgressBarView",
    "SQLiteStore",
    "ShardedLightorService",
    "SimulatedStreamingAPI",
    "StorageBackend",
    "WrongShardError",
    "create_backend",
]
