"""Deployment substrate: a Twitch-like platform and the LIGHTOR web stack.

Section VI of the paper describes two deployment paths: a browser extension
backed by a web service + crawler, or direct integration into a streaming
platform.  This package provides runnable, in-memory equivalents of every
box in the paper's Figure 5:

* :mod:`storage <repro.platform.storage>` — the back-end database (videos,
  chat messages, play/interaction logs, highlight results).
* :mod:`api <repro.platform.api>` — a simulated live-streaming platform API
  (channel listings, video metadata, chat download).
* :mod:`crawler <repro.platform.crawler>` — offline/online chat crawler
  writing into the store.
* :mod:`service <repro.platform.service>` — the LIGHTOR back-end web service:
  receives a video id, crawls chat if needed, computes red dots, serves them,
  logs interactions and refines highlights.
* :mod:`extension <repro.platform.extension>` — the browser-extension front
  end: renders red dots on the progress bar and forwards viewer interactions
  to the service.
"""

from repro.platform.storage import InMemoryStore
from repro.platform.api import SimulatedStreamingAPI
from repro.platform.crawler import ChatCrawler
from repro.platform.service import LightorWebService
from repro.platform.extension import BrowserExtension, ProgressBarView

__all__ = [
    "InMemoryStore",
    "SimulatedStreamingAPI",
    "ChatCrawler",
    "LightorWebService",
    "BrowserExtension",
    "ProgressBarView",
]
