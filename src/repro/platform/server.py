"""Asyncio HTTP/1.1 JSON gateway in front of the sharded service tier.

Until this module the LIGHTOR service tier could only be called in-process;
:class:`LightorGateway` puts a real network boundary in front of a
:class:`~repro.platform.sharding.ShardedLightorService` using nothing but
the standard library: an ``asyncio`` server speaks enough HTTP/1.1
(keep-alive, ``Content-Length`` bodies) to serve JSON requests, and every
service call runs on a bounded worker-thread pool so the event loop never
blocks on a shard lock.

Design points:

* **Full service surface.**  Every front-door method —
  ``register_video`` / ``request_red_dots`` / ``log_interactions`` /
  ``refine_video`` plus the live surface (``start_live``, batched chat and
  play ingest, current dots, ``end_live``) — has an endpoint; payloads are
  the round-trip-exact codec forms from :mod:`repro.platform.codecs`, so a
  workload driven over the wire persists byte-identical state to the same
  workload driven in-process (``tests/test_loadgen.py`` holds the gateway
  to that).
* **Validation is a 400, overload is a 503.**  Malformed JSON, codec
  failures and every :class:`~repro.utils.validation.ValidationError` the
  service raises map to ``400 {"error": ...}``.  Admission control is a
  bounded in-flight budget (``max_pending``): past it the gateway answers
  ``503`` immediately instead of queueing unboundedly — backpressure the
  caller can see.  ``/healthz`` and ``/metrics`` bypass admission so the
  gateway stays observable while saturated.
* **Negotiated wire codec.**  Request bodies are decoded by their
  ``Content-Type`` and responses encoded by the request's ``Accept``:
  ``application/json`` (the default — old clients keep working unchanged)
  or the framed binary codec of :mod:`repro.platform.wire`
  (``application/x-repro-binary``), which cuts bytes/event on batch-heavy
  routes.  Both codecs decode to identical value trees, so handlers are
  codec-blind.  The payload cap is enforced on the *decoded entity* for
  both: the Content-Length check bounds what is read, and a binary
  frame's declared uncompressed size is checked against the same cap
  before decompression (``413``) — a compressed frame cannot smuggle an
  over-cap entity.
* **Graceful drain.**  :meth:`LightorGateway.drain` stops accepting, lets
  the in-flight requests finish and refuses late requests with ``503``;
  the ``repro serve`` command then calls
  :meth:`~repro.platform.sharding.ShardedLightorService.suspend`, which
  checkpoints every open live session — so a SIGTERM'd server resumes
  byte-exactly via ``repro recover`` (see
  :mod:`repro.platform.recovery` and ``docs/serving.md``).

:class:`GatewayThread` runs the gateway on a background thread's event
loop — what the wire-mode load harness (``repro load --transport http``)
and the test suite use to serve and drive from one process.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable
from urllib.parse import parse_qs, unquote, urlsplit

from repro.platform import codecs, wire
from repro.platform.placement import PlacementMap, WrongShardError
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError, require_positive

__all__ = ["LightorGateway", "GatewayThread"]

_LOGGER = get_logger("platform.server")

# One chat batch of a few hundred codec-encoded messages is ~100 KiB; cap
# request bodies far above that so only a runaway client is refused.
_MAX_BODY_BYTES = 16 * 1024 * 1024

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _ProtocolError(Exception):
    """A request the HTTP layer itself must refuse (before any routing)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _require_list(body: dict, key: str) -> list:
    value = body.get(key)
    if not isinstance(value, list):
        raise ValidationError(f"request body must carry {key!r} as a JSON list")
    return value


class LightorGateway:
    """Serve a sharded LIGHTOR tier over HTTP/1.1 JSON.

    Parameters
    ----------
    service:
        The front door to serve — a
        :class:`~repro.platform.sharding.ShardedLightorService` (anything
        with its call surface works; the gateway adds no state of its own).
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port; :meth:`start`
        rewrites :attr:`port` with the bound one.
    max_pending:
        Admission budget: requests in flight (admitted but not yet
        answered) beyond this are refused with ``503`` instead of queued.
    max_pending_per_channel:
        Optional per-channel admission budget.  The global budget alone
        lets one hot channel occupy every slot and starve the tail; with
        this set, a channel-addressed request (any ``/videos/{id}/…`` or
        ``/live/{id}/…`` route) is refused with ``503`` once that channel
        alone has this many requests in flight — the rest of the global
        budget stays available to other channels.  ``None`` (the default)
        keeps the previous single-budget behaviour.
    worker_threads:
        Threads executing service calls.  The shards serialize per-channel
        work under their own locks; the pool just keeps the event loop off
        that path.
    wire_codec:
        Response codec for requests that express **no** preference (no
        ``Accept`` header, or ``*/*``).  An explicit ``Accept`` always
        wins, so JSON clients keep getting JSON whatever this is set to —
        the knob only moves the default (``repro serve --wire-codec``).
    shard_index:
        This gateway's identity in a *cluster placement* (``repro serve
        --shard-index``).  Once set **and** a placement map has been
        installed over ``POST /placement``, every channel-addressed request
        for a channel this shard does not own (or that is mid-migration) is
        answered with ``409 Conflict`` carrying the owner and epoch — the
        signal a stale front door uses to refresh its map and retry (see
        ``docs/resharding.md``).  ``None`` (the default) disables the check:
        a standalone gateway owns every channel it serves.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        max_pending: int = 64,
        worker_threads: int = 8,
        wire_codec: str = "json",
        max_pending_per_channel: int | None = None,
        shard_index: int | None = None,
    ) -> None:
        require_positive(max_pending, "max_pending")
        require_positive(worker_threads, "worker_threads")
        if max_pending_per_channel is not None:
            require_positive(max_pending_per_channel, "max_pending_per_channel")
        if wire_codec not in wire.WIRE_CODECS:
            raise ValidationError(
                f"unknown wire codec {wire_codec!r} (expected one of {wire.WIRE_CODECS})"
            )
        if shard_index is not None and shard_index < 0:
            raise ValidationError(f"shard_index must be >= 0, got {shard_index!r}")
        self.wire_codec = wire_codec
        self.service = service
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.max_pending_per_channel = max_pending_per_channel
        self.worker_threads = worker_threads
        self.shard_index = shard_index
        # The cluster placement pushed over POST /placement, plus the worker
        # addresses that came with it (what GET /placement hands to a front
        # door rebuilding its client list).  Installed and read from the
        # worker pool *and* the event loop, hence the dedicated lock; the
        # PlacementMap itself is internally locked, so holding _placement_lock
        # only covers the reference swap and the address list.
        self._placement_lock = threading.Lock()
        self._placement: PlacementMap | None = None  # guarded-by: _placement_lock
        self._placement_addresses: list[tuple[str, int]] = []  # guarded-by: _placement_lock
        self._pool = ThreadPoolExecutor(
            max_workers=worker_threads, thread_name_prefix="lightor-gateway"
        )
        self._server: asyncio.AbstractServer | None = None
        self._fence_lock: asyncio.Lock | None = None  # guarded-by: event-loop
        # Every counter below is loop-confined: mutated only between
        # awaits on the event-loop thread, which is what makes the
        # admission check-then-increment in _respond race-free.  The
        # worker pool must never touch them — _execute returns values
        # and the coroutine does the counting.
        self._handlers: set[asyncio.Task] = set()  # guarded-by: event-loop
        self._in_flight = 0  # guarded-by: event-loop
        self._draining = False  # guarded-by: event-loop
        self._started_at: float | None = None  # guarded-by: event-loop
        self._requests: Counter = Counter()  # guarded-by: event-loop
        self._responses: Counter = Counter()  # guarded-by: event-loop
        self._events_ingested: Counter = Counter()  # guarded-by: event-loop
        self._content_types: Counter = Counter()  # guarded-by: event-loop
        self._rejected = 0  # guarded-by: event-loop
        self._wrong_shard = 0  # guarded-by: event-loop
        self._channel_in_flight: Counter = Counter()  # guarded-by: event-loop
        self._channel_rejected: Counter = Counter()  # guarded-by: event-loop
        self._bytes_in = 0  # guarded-by: event-loop
        self._bytes_out = 0  # guarded-by: event-loop

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> str:
        """The served base URL."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind and start accepting connections (resolves ``port=0``)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        _LOGGER.info("gateway listening on %s", self.address)

    async def serve_forever(self) -> None:
        """Serve until the surrounding task is cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, release the pool.

        After this returns, no request is executing and none will be
        admitted (late requests on kept-alive connections get ``503``).
        What happens to the *service* is the caller's decision —
        ``repro serve`` follows with
        :meth:`~repro.platform.sharding.ShardedLightorService.suspend`
        (checkpoint, recoverable), the load harness with ``close()``
        (finalize).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._in_flight > 0:
            await asyncio.sleep(0.005)
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._pool.shutdown(wait=True)

    async def abort(self) -> None:
        """Hard stop — the simulated ``kill -9``: cut every connection now.

        In-flight work is cancelled, nothing is checkpointed and nothing is
        closed; tests use this to model a crashed server whose durable state
        must carry recovery by itself.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._pool.shutdown(wait=False, cancel_futures=True)

    # ---------------------------------------------------------- HTTP plumbing
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _ProtocolError as error:
                    await self._write_json(
                        writer, error.status, {"error": str(error)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                if not await self._respond(writer, *request):
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            pass  # drain/abort tears the connection down; nothing to salvage
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """One parsed request, or ``None`` on a cleanly closed connection."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise _ProtocolError(400, "malformed HTTP request line") from None
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _ProtocolError(400, f"invalid Content-Length {raw_length!r}") from None
        if length < 0:
            raise _ProtocolError(400, f"invalid Content-Length {raw_length!r}")
        if length > _MAX_BODY_BYTES:
            raise _ProtocolError(413, f"request body over {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _respond(
        self, writer: asyncio.StreamWriter, method: str, target: str, headers: dict, body: bytes
    ) -> bool:
        """Dispatch one request and write its response; returns keep-alive."""
        keep_alive = headers.get("connection", "").lower() != "close"
        split = urlsplit(target)
        query = parse_qs(split.query)
        route, handler = self._resolve(method, unquote(split.path))
        self._requests[route] += 1
        content_type = (
            (headers.get("content-type") or "").split(";")[0].strip().lower() or "none"
        )
        self._content_types[content_type] += 1
        self._bytes_in += len(body)
        codec = self._response_codec(headers)

        if handler is None:
            status: int
            payload: dict
            status, payload = (
                (404, {"error": f"no such endpoint: {split.path}"})
                if route == "unknown"
                else (405, {"error": f"method {method} not allowed on {split.path}"})
            )
        elif route == "healthz":
            status, payload = 200, self._health_payload()
        elif route == "admin_fence":
            await self._drain_pool()
            status, payload = 200, {"drained": True}
        elif route == "metrics":
            self._responses["200"] += 1
            await self._write_text(writer, 200, self._metrics_text(), keep_alive=keep_alive)
            return keep_alive
        elif self._draining:
            status, payload = 503, {"error": "gateway is draining"}
            keep_alive = False
        elif (conflict := self._wrong_shard_payload(unquote(split.path))) is not None:
            # Answered before admission: a 409 is the redirect signal of the
            # placement protocol, and a front door must be able to learn it
            # even while this worker's budget is saturated.
            self._wrong_shard += 1
            status, payload = 409, conflict
        elif self._in_flight >= self.max_pending:
            self._rejected += 1
            status, payload = 503, {
                "error": f"gateway overloaded ({self._in_flight} requests in flight)"
            }
        elif (
            self.max_pending_per_channel is not None
            and (channel := self._channel_of(unquote(split.path))) is not None
            and self._channel_in_flight[channel] >= self.max_pending_per_channel
        ):
            # Per-channel fairness: the hot channel is refused while the
            # rest of the global budget stays available to the tail.
            self._rejected += 1
            self._channel_rejected[channel] += 1
            status, payload = 503, {
                "error": (
                    f"channel {channel} overloaded "
                    f"({self._channel_in_flight[channel]} requests in flight)"
                )
            }
        else:
            # The check and the increment both run on the event-loop thread
            # with no await between them, so admission cannot race.  The
            # count is held until the *response is written*: drain() waits
            # for in-flight to reach zero before cancelling handler tasks,
            # and a request that executed but never answered would break
            # the "in-flight requests finish" drain guarantee.
            channel = (
                self._channel_of(unquote(split.path))
                if self.max_pending_per_channel is not None
                else None
            )
            self._in_flight += 1
            if channel is not None:
                self._channel_in_flight[channel] += 1
            try:
                status, payload = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self._execute, handler, body, content_type, query,
                    unquote(split.path),
                )
                if status == 409:
                    # Counted here, on the loop: a request admitted before the
                    # placement push can still lose its channel to a migration
                    # mid-execution — _execute remaps that failure to 409.
                    self._wrong_shard += 1
                if status == 200:
                    ingested = payload.get("ingested")
                    if isinstance(ingested, int):
                        self._events_ingested[route] += ingested
                self._responses[str(status)] += 1
                await self._write_payload(writer, status, payload, codec, keep_alive=keep_alive)
            finally:
                self._in_flight -= 1
                if channel is not None:
                    self._channel_in_flight[channel] -= 1
                    if self._channel_in_flight[channel] <= 0:
                        # Keep the counter sparse: a long-running gateway
                        # must not accumulate a key per channel ever seen.
                        del self._channel_in_flight[channel]
            return keep_alive
        self._responses[str(status)] += 1
        await self._write_payload(writer, status, payload, codec, keep_alive=keep_alive)
        return keep_alive

    def _response_codec(self, headers: dict) -> str:
        """The response codec the request's ``Accept`` header asks for.

        An explicit preference always wins; no preference (no ``Accept``,
        or ``*/*``) falls back to the gateway's configured default; an
        Accept naming neither codec falls back to JSON — the one answer
        every client can parse.
        """
        accept = (headers.get("accept") or "").strip().lower()
        if wire.WIRE_CONTENT_TYPE in accept:
            return "binary"
        if "json" in accept:
            return "json"
        if accept in ("", "*/*"):
            return self.wire_codec
        return "json"

    def _decode_body(self, body: bytes, content_type: str):
        """Decode a request body by its declared content type.

        Both codecs enforce the same decoded-entity cap: JSON bodies *are*
        their decoded entity (bounded by the Content-Length check), and a
        binary frame's declared uncompressed size is checked against the
        identical cap before any decompression.
        """
        if not body:
            return {}
        if content_type == wire.WIRE_CONTENT_TYPE:
            return wire.decode_frame(body, max_raw_bytes=_MAX_BODY_BYTES)
        return json.loads(body.decode("utf-8"))

    def _execute(
        self,
        handler: Callable[[dict, dict], dict],
        body: bytes,
        content_type: str,
        query: dict,
        path: str = "",
    ) -> tuple[int, dict]:
        """Run one service call on the worker pool, mapping errors to statuses."""
        try:
            decoded = self._decode_body(body, content_type)
        except wire.CodecTooLargeError as error:
            return 413, {"error": str(error)}
        except wire.CodecError as error:
            return 400, {"error": f"request body is not a valid binary frame: {error}"}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}
        if not isinstance(decoded, dict):
            return 400, {"error": "request body must be a JSON object"}
        # Re-check placement at execution time, not just admission: a
        # placement push (migration begin/commit, reshard freeze) may have
        # been installed between the two.  This is what makes the freeze a
        # real barrier — a request admitted just before the frozen map
        # landed cannot create channel state after the supervisor's census.
        conflict = self._wrong_shard_payload(path)
        if conflict is not None:
            return 409, conflict
        try:
            return 200, handler(decoded, query)
        except ValidationError as error:
            conflict = self._wrong_shard_payload(path)
            if conflict is not None:
                # The request was admitted before a placement push and its
                # channel migrated away mid-flight: the placement install
                # happens-before the source detach, so by the time the
                # service call failed, the map already disowns the channel.
                # Answer the redirect, not the (misleading) service error.
                return 409, conflict
            return 400, {"error": str(error)}
        except (KeyError, TypeError, ValueError) as error:
            return 400, {"error": f"malformed request payload: {error!r}"}
        except Exception as error:  # noqa: BLE001 - the wire needs an answer
            _LOGGER.exception("request handler failed")
            return 500, {"error": f"internal error: {error}"}

    async def _write_payload(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        codec: str,
        *,
        keep_alive: bool,
    ) -> None:
        """Write a response payload in the negotiated codec."""
        if codec == "binary":
            body = wire.encode_frame(payload)
            await self._write_raw(writer, status, wire.WIRE_CONTENT_TYPE, body, keep_alive)
            return
        await self._write_json(writer, status, payload, keep_alive=keep_alive)

    async def _write_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict, *, keep_alive: bool
    ) -> None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        await self._write_raw(writer, status, "application/json", body, keep_alive)

    async def _write_text(
        self, writer: asyncio.StreamWriter, status: int, text: str, *, keep_alive: bool
    ) -> None:
        await self._write_raw(
            writer, status, "text/plain; charset=utf-8", text.encode("utf-8"), keep_alive
        )

    async def _write_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        keep_alive: bool,
    ) -> None:
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        self._bytes_out += len(body)
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ----------------------------------------------------------------- routing
    def _resolve(
        self, method: str, path: str
    ) -> tuple[str, Callable[[dict, dict], dict] | None]:
        """Map (method, path) to a (route name, handler) pair.

        Unknown paths resolve to ``("unknown", None)`` (404); known paths
        with the wrong method to ``(route, None)`` (405).
        """
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"]:
            return "healthz", self._noop if method == "GET" else None
        if parts == ["metrics"]:
            return "metrics", self._noop if method == "GET" else None
        if parts == ["placement"]:
            if method == "GET":
                return "placement", self._h_get_placement
            if method == "POST":
                return "placement_install", self._h_put_placement
            return "placement", None
        if len(parts) == 2 and parts[0] == "admin":
            leaf = parts[1]
            if leaf == "channels":
                return "admin_channels", self._h_admin_channels if method == "GET" else None
            if leaf == "migrate-out":
                return (
                    "admin_migrate_out",
                    self._h_admin_migrate_out if method == "POST" else None,
                )
            if leaf == "migrate-in":
                return (
                    "admin_migrate_in",
                    self._h_admin_migrate_in if method == "POST" else None,
                )
            if leaf == "forget-channel":
                return (
                    "admin_forget_channel",
                    self._h_admin_forget_channel if method == "POST" else None,
                )
            if leaf == "fence":
                # Loop-handled (see _respond): the fence must not occupy a
                # pool thread while it waits for the pool to drain.
                return "admin_fence", self._noop if method == "POST" else None
        if parts == ["videos"]:
            return "register", self._h_register if method == "POST" else None
        if len(parts) == 3 and parts[0] == "videos":
            video_id, leaf = parts[1], parts[2]
            if leaf == "red-dots":
                if method != "GET":
                    return "red_dots", None
                return "red_dots", lambda body, query: self._h_red_dots(video_id, query)
            if leaf == "interactions":
                if method == "POST":
                    return (
                        "interactions",
                        lambda body, query: self._h_interactions(video_id, body),
                    )
                if method == "GET":
                    return (
                        "interactions_read",
                        lambda body, query: self._h_get_interactions(video_id),
                    )
                return "interactions", None
            if leaf == "refine":
                if method != "POST":
                    return "refine", None
                return "refine", lambda body, query: self._h_refine(video_id)
            if leaf == "stored-dots":
                if method != "GET":
                    return "stored_dots", None
                return "stored_dots", lambda body, query: self._h_stored_dots(video_id)
            if leaf == "highlights":
                if method != "GET":
                    return "highlights", None
                return "highlights", lambda body, query: self._h_highlight_history(video_id)
            if leaf == "latest-highlights":
                if method != "GET":
                    return "latest_highlights", None
                return (
                    "latest_highlights",
                    lambda body, query: self._h_latest_highlights(video_id),
                )
        if len(parts) == 3 and parts[0] == "live":
            video_id, leaf = parts[1], parts[2]
            if leaf == "start":
                if method != "POST":
                    return "live_start", None
                return "live_start", lambda body, query: self._h_start_live(video_id, body)
            if leaf == "chat":
                if method != "POST":
                    return "live_chat", None
                return "live_chat", lambda body, query: self._h_chat(video_id, body)
            if leaf == "plays":
                if method != "POST":
                    return "live_plays", None
                return "live_plays", lambda body, query: self._h_plays(video_id, body)
            if leaf == "dots":
                if method != "GET":
                    return "live_dots", None
                return "live_dots", lambda body, query: self._h_live_dots(video_id)
            if leaf == "end":
                if method != "POST":
                    return "live_end", None
                return "live_end", lambda body, query: self._h_end_live(video_id, body)
        return "unknown", None

    @staticmethod
    def _channel_of(path: str) -> str | None:
        """The channel a path addresses, or ``None`` for channel-less routes.

        Every channel-addressed route has the shape ``/videos/{id}/…`` or
        ``/live/{id}/…`` — the same shapes :meth:`_resolve` dispatches — so
        per-channel admission needs no route table of its own.
        """
        parts = [part for part in path.split("/") if part]
        if len(parts) == 3 and parts[0] in ("videos", "live"):
            return parts[1]
        return None

    @staticmethod
    def _noop(body: dict, query: dict) -> dict:  # pragma: no cover - never executed
        return {}

    async def _drain_pool(self) -> None:
        """Wait until every request enqueued to the worker pool so far finished.

        ``POST /admin/fence``, the reshard census barrier.  The pool runs one
        FIFO queue over ``worker_threads`` threads, so the moment a barrier
        task occupies every thread simultaneously, every request enqueued
        before the fence has completed.  A supervisor that (1) pushes a
        frozen placement — 409ing any later channel request at admission —
        then (2) fences, then (3) lists channels is therefore guaranteed a
        complete census: no creation admitted under the old map can still be
        in flight, and none can start afterwards.
        """
        if self._fence_lock is None:
            # Created lazily so it binds to the serving loop; _drain_pool
            # only ever runs there.  Two interleaved fences would split
            # their barrier tasks across the same threads and deadlock,
            # so fences are strictly serialized.
            self._fence_lock = asyncio.Lock()
        async with self._fence_lock:
            barrier = threading.Barrier(self.worker_threads)
            loop = asyncio.get_running_loop()
            await asyncio.gather(
                *(
                    loop.run_in_executor(self._pool, barrier.wait)
                    for _ in range(self.worker_threads)
                )
            )

    # ----------------------------------------------------------- placement
    def _installed_placement(self) -> PlacementMap | None:
        """The pushed cluster placement, if any (reference read under lock)."""
        with self._placement_lock:
            return self._placement

    def _effective_placement(self) -> PlacementMap | None:
        """The placement this gateway can answer for: pushed, else the service's."""
        placement = self._installed_placement()
        if placement is None:
            placement = getattr(self.service, "placement", None)
        return placement

    def _placement_epoch(self) -> int:
        """The epoch exposed on ``/healthz`` and ``/metrics`` (0 when unplaced)."""
        placement = self._effective_placement()
        return placement.epoch if placement is not None else 0

    def _wrong_shard_payload(self, path: str) -> dict | None:
        """The 409 body for a channel this shard must not serve, or ``None``.

        Only a gateway with a cluster identity (``shard_index``) *and* an
        installed placement rejects anything: the placement push is what
        arms the check, so a fleet booted by an older supervisor keeps
        working epoch-0 style.  Channel-less routes — ``/placement``, the
        ``/admin/*`` migration choreography, health — always pass.
        """
        if self.shard_index is None:
            return None
        channel = self._channel_of(path)
        if channel is None:
            return None
        placement = self._installed_placement()
        if placement is None:
            return None
        epoch = placement.epoch
        owner = placement.shard_for(channel)
        # A frozen map is the reshard commit barrier: every channel is
        # treated as in flight so no channel can be created or mutated
        # anywhere between the supervisor's channel census and the ring
        # swap.  Callers retry exactly like a per-channel migration.
        in_flight = placement.is_in_flight(channel) or placement.frozen
        if not in_flight and owner == self.shard_index:
            return None
        error = WrongShardError(channel, owner=owner, epoch=epoch, in_flight=in_flight)
        return {
            "error": str(error),
            "video_id": channel,
            "owner": owner,
            "epoch": epoch,
            "in_flight": in_flight,
        }

    def _h_get_placement(self, body: dict, query: dict) -> dict:
        placement = self._effective_placement()
        if placement is None:
            raise ValidationError(
                "this gateway serves a tier without a placement map and none "
                "has been installed over POST /placement"
            )
        with self._placement_lock:
            addresses = [list(address) for address in self._placement_addresses]
        return {
            "placement": codecs.placement_map_to_dict(placement),
            "addresses": addresses,
            "shard_index": self.shard_index,
        }

    def _h_put_placement(self, body: dict, query: dict) -> dict:
        payload = body.get("placement")
        if not isinstance(payload, dict):
            raise ValidationError("request body must carry 'placement' as a JSON object")
        pushed = codecs.placement_map_from_dict(payload)
        addresses: list[tuple[str, int]] = []
        for entry in _require_list(body, "addresses") if "addresses" in body else []:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ValidationError("addresses entries must be [host, port] pairs")
            addresses.append((str(entry[0]), int(entry[1])))
        with self._placement_lock:
            if self._placement is None:
                self._placement = pushed
                installed = True
            else:
                installed = self._placement.install(pushed)
            if installed and addresses:
                self._placement_addresses = addresses
            epoch = self._placement.epoch
        return {"installed": installed, "epoch": epoch}

    def _h_admin_channels(self, body: dict, query: dict) -> dict:
        if not hasattr(self.service, "list_channels"):
            raise ValidationError("this tier does not expose channel migration")
        return {"channels": self.service.list_channels()}

    def _h_admin_migrate_out(self, body: dict, query: dict) -> dict:
        video_id = body.get("video_id")
        if not isinstance(video_id, str) or not video_id:
            raise ValidationError("request body must carry 'video_id' as a string")
        if not hasattr(self.service, "migrate_out"):
            raise ValidationError("this tier does not expose channel migration")
        return self.service.migrate_out(video_id)

    def _h_admin_migrate_in(self, body: dict, query: dict) -> dict:
        bundle = body.get("bundle")
        if not isinstance(bundle, dict):
            raise ValidationError("request body must carry 'bundle' as a JSON object")
        was_live = body.get("was_live", False)
        if not isinstance(was_live, bool):
            raise ValidationError("was_live must be a JSON boolean")
        if not hasattr(self.service, "import_channel"):
            raise ValidationError("this tier does not expose channel migration")
        return {"imported": self.service.import_channel(bundle, was_live=was_live)}

    def _h_admin_forget_channel(self, body: dict, query: dict) -> dict:
        video_id = body.get("video_id")
        if not isinstance(video_id, str) or not video_id:
            raise ValidationError("request body must carry 'video_id' as a string")
        if not hasattr(self.service, "forget_channel"):
            raise ValidationError("this tier does not expose channel migration")
        return {"forgotten": self.service.forget_channel(video_id)}

    # ---------------------------------------------------------------- handlers
    def _h_register(self, body: dict, query: dict) -> dict:
        video = codecs.video_from_dict(body)
        self.service.register_video(video)
        return {"registered": video.video_id}

    def _h_red_dots(self, video_id: str, query: dict) -> dict:
        k = self._query_int(query, "k")
        dots = self.service.request_red_dots(video_id, k=k)
        return {"red_dots": [codecs.red_dot_to_dict(dot) for dot in dots]}

    def _h_interactions(self, video_id: str, body: dict) -> dict:
        interactions = [
            codecs.interaction_from_dict(item) for item in _require_list(body, "interactions")
        ]
        total = self.service.log_interactions(video_id, interactions)
        return {"total": total, "ingested": len(interactions)}

    def _h_refine(self, video_id: str) -> dict:
        return {"updated": self.service.refine_video(video_id)}

    def _h_stored_dots(self, video_id: str) -> dict:
        dots = self.service.get_red_dots(video_id)
        return {"red_dots": [codecs.red_dot_to_dict(dot) for dot in dots]}

    def _h_highlight_history(self, video_id: str) -> dict:
        records = self.service.highlight_history(video_id)
        return {"highlights": [codecs.highlight_record_to_dict(r) for r in records]}

    def _h_latest_highlights(self, video_id: str) -> dict:
        highlights = self.service.latest_highlights(video_id)
        return {"highlights": [codecs.highlight_to_dict(h) for h in highlights]}

    def _h_get_interactions(self, video_id: str) -> dict:
        interactions = self.service.get_interactions(video_id)
        return {"interactions": [codecs.interaction_to_dict(i) for i in interactions]}

    def _h_start_live(self, video_id: str, body: dict) -> dict:
        video = codecs.video_from_dict(body)
        if video.video_id != video_id:
            raise ValidationError(
                f"path names channel {video_id!r} but the body is video "
                f"{video.video_id!r}"
            )
        self.service.start_live(video)
        return {"live": video_id}

    def _h_chat(self, video_id: str, body: dict) -> dict:
        messages = [
            codecs.chat_message_from_dict(item) for item in _require_list(body, "messages")
        ]
        persist = body.get("persist", False)
        if not isinstance(persist, bool):
            raise ValidationError("persist must be a JSON boolean")
        events = self.service.ingest_chat_batch(video_id, messages, persist=persist)
        return {
            "events": [codecs.stream_event_to_dict(event) for event in events],
            "ingested": len(messages),
        }

    def _h_plays(self, video_id: str, body: dict) -> dict:
        interactions = [
            codecs.interaction_from_dict(item) for item in _require_list(body, "interactions")
        ]
        events = self.service.ingest_plays_batch(video_id, interactions)
        return {
            "events": [codecs.stream_event_to_dict(event) for event in events],
            "ingested": len(interactions),
        }

    def _h_live_dots(self, video_id: str) -> dict:
        dots = self.service.live_red_dots(video_id)
        return {"red_dots": [codecs.red_dot_to_dict(dot) for dot in dots]}

    def _h_end_live(self, video_id: str, body: dict) -> dict:
        duration = body.get("duration")
        if duration is not None and not isinstance(duration, (int, float)):
            raise ValidationError("duration must be a JSON number or null")
        dots = self.service.end_live(video_id, duration)
        return {"red_dots": [codecs.red_dot_to_dict(dot) for dot in dots]}

    @staticmethod
    def _query_int(query: dict, name: str) -> int | None:
        values = query.get(name)
        if not values:
            return None
        try:
            return int(values[-1])
        except ValueError:
            raise ValidationError(
                f"query parameter {name}={values[-1]!r} is not an integer"
            ) from None

    # ------------------------------------------------------------ observability
    def _health_payload(self) -> dict:  # runs-on: event-loop
        return {
            "status": "draining" if self._draining else "ok",
            "shards": getattr(self.service, "n_shards", 1),
            "in_flight": self._in_flight,
            "max_pending": self.max_pending,
            "max_pending_per_channel": self.max_pending_per_channel,
            "channels_in_flight": len(self._channel_in_flight),
            "placement_epoch": self._placement_epoch(),
            "shard_index": self.shard_index,
        }

    def _metrics_text(self) -> str:  # runs-on: event-loop
        """Prometheus-style exposition of the gateway counters."""
        uptime = 0.0 if self._started_at is None else time.monotonic() - self._started_at
        lines = [
            f"lightor_gateway_uptime_seconds {uptime:.3f}",
            f"lightor_gateway_in_flight {self._in_flight}",
            f"lightor_gateway_draining {int(self._draining)}",
            f"lightor_gateway_rejected_total {self._rejected}",
            f"lightor_gateway_max_pending_per_channel "
            f"{self.max_pending_per_channel or 0}",
            f"lightor_gateway_shards {getattr(self.service, 'n_shards', 1)}",
            f"lightor_gateway_placement_epoch {self._placement_epoch()}",
            f"lightor_gateway_wrong_shard_total {self._wrong_shard}",
            f"lightor_gateway_bytes_in_total {self._bytes_in}",
            f"lightor_gateway_bytes_out_total {self._bytes_out}",
        ]
        for route, count in sorted(self._requests.items()):
            lines.append(f'lightor_gateway_requests_total{{route="{route}"}} {count}')
        for ctype, count in sorted(self._content_types.items()):
            lines.append(
                f'lightor_gateway_requests_by_content_type_total{{content_type="{ctype}"}} {count}'
            )
        for status, count in sorted(self._responses.items()):
            lines.append(f'lightor_gateway_responses_total{{status="{status}"}} {count}')
        for route, count in sorted(self._events_ingested.items()):
            lines.append(f'lightor_gateway_events_ingested_total{{route="{route}"}} {count}')
        for channel, count in sorted(self._channel_rejected.items()):
            lines.append(
                f'lightor_gateway_channel_rejected_total{{channel="{channel}"}} {count}'
            )
        return "\n".join(lines) + "\n"


class GatewayThread:
    """Run a :class:`LightorGateway` on a background thread's event loop.

    The wire-mode load harness and the tests need to serve and drive from a
    single process; this wrapper owns the loop-on-a-thread plumbing.  The
    served *service*'s storage lifecycle stays with the caller: ``stop()``
    only drains the HTTP side — follow it with ``service.close()``
    (finalize) or ``service.suspend()`` (checkpoint for recovery).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0, **gateway_kwargs) -> None:
        self.gateway = LightorGateway(service, host=host, port=port, **gateway_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        """Boot the loop, bind the gateway; returns the bound (host, port)."""
        self._thread = threading.Thread(
            target=self._run, name="lightor-gateway-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("gateway event loop did not come up within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self.gateway.host, self.gateway.port

    @property
    def host(self) -> str:
        """The gateway's bind host."""
        return self.gateway.host

    @property
    def port(self) -> int:
        """The gateway's port — the *bound* one once :meth:`start` returned."""
        return self.gateway.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.gateway.start())
            except BaseException as error:  # noqa: BLE001 - surfaced by start()
                self._startup_error = error
                return
            finally:
                self._ready.set()
            loop.run_forever()
        finally:
            loop.close()

    def stop(self, drain: bool = True) -> None:
        """Stop serving.  ``drain=True`` finishes in-flight work first;
        ``drain=False`` is the hard kill (:meth:`LightorGateway.abort`)."""
        if self._thread is None or self._loop is None or not self._thread.is_alive():
            return
        closer = self.gateway.drain() if drain else self.gateway.abort()
        asyncio.run_coroutine_threadsafe(closer, self._loop).result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)

    def __enter__(self) -> "GatewayThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
