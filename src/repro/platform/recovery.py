"""Durable checkpoint/recovery for live stream sessions.

Everything a :class:`~repro.streaming.session.StreamSession` knows — window
state, play accumulators, emitted provisional dots — lives in process
memory; before this subsystem a shard crash lost hours of live state.  The
moving parts:

* the streaming classes serialize themselves round-trip exactly
  (``snapshot()`` / ``restore()`` on
  :class:`~repro.streaming.state.IncrementalWindowState`,
  :class:`~repro.streaming.initializer.StreamingInitializer`,
  :class:`~repro.streaming.extractor.StreamingExtractor` and
  :class:`~repro.streaming.session.StreamSession`, over the codecs in
  :mod:`repro.platform.codecs`);
* every :class:`~repro.platform.backends.base.StorageBackend` stores one
  checkpoint per live session (``put_session_snapshot`` /
  ``get_session_snapshots`` / ``delete_session_snapshot``), written in one
  transaction and deleted on clean close — the stored snapshots **are** the
  open-session registry;
* :class:`~repro.platform.service.LightorWebService` checkpoints on a
  configurable event cadence (``checkpoint_every``), when a session is
  LRU-evicted, and — crucially — whenever the *kind* of persisted ingest
  flips between chat and plays (see below);
* :func:`recover_live_sessions` rebuilds every open session from its latest
  snapshot plus the chat and interactions persisted since it.

Why the kind-flip checkpoint matters
------------------------------------

A checkpoint records how many chat rows and interaction rows the store held
when it was taken.  Recovery replays the rows past those counts — but the
store orders rows only *within* each kind, not across kinds, so a suffix
mixing chat and play batches could be replayed in an order the original run
never executed (play attribution depends on the chat ingested before each
play, so order matters for the refined highlights).  Forcing a checkpoint
at every chat↔plays flip makes the suffix past any snapshot homogeneous in
kind; a homogeneous suffix has exactly one replay order, so a recovered
session is byte-identical to one that never crashed (the loadgen chaos mode
``repro load --kill-after N --recover`` and ``tests/test_recovery.py``
assert this end to end).

Crash-safety requires the chat to actually be in the store: live chat must
flow through ``ingest_chat_batch(..., persist=True)`` (interactions are
always persisted).  Chat ingested without ``persist`` is covered by
checkpoints taken after it but cannot be replayed past the last one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = [
    "SNAPSHOT_VERSION",
    "RecoveredSession",
    "build_checkpoint",
    "check_snapshot_version",
    "recover_live_sessions",
    "recover_session",
]

_LOGGER = get_logger("platform.recovery")

SNAPSHOT_VERSION = 1


def build_checkpoint(session, *, chat_persisted: int, interactions_persisted: int) -> dict:
    """The strict-JSON checkpoint envelope for one live session.

    ``chat_persisted`` / ``interactions_persisted`` are the store's row
    counts for the video at snapshot time; recovery replays everything past
    them.  They must be read *after* the rows they count are committed —
    the service snapshots after persisting, so a crash between the two
    leaves the snapshot behind the store (replayable), never ahead of it
    (unrecoverable).
    """
    return {
        "version": SNAPSHOT_VERSION,
        "video_id": session.video_id,
        "chat_persisted": chat_persisted,
        "interactions_persisted": interactions_persisted,
        "session": session.snapshot(),
    }


@dataclass(frozen=True)
class RecoveredSession:
    """What :func:`recover_live_sessions` rebuilt for one channel."""

    video_id: str
    messages_restored: int
    interactions_restored: int
    chat_replayed: int
    plays_replayed: int
    provisional_dots: int

    @property
    def messages_ingested(self) -> int:
        """Chat messages in the rebuilt session (snapshot + replay)."""
        return self.messages_restored + self.chat_replayed

    @property
    def interactions_ingested(self) -> int:
        """Interactions in the rebuilt session (snapshot + replay)."""
        return self.interactions_restored + self.plays_replayed

    def describe(self) -> str:
        """One human-readable line for the CLI."""
        return (
            f"{self.video_id}: {self.messages_ingested} messages "
            f"({self.chat_replayed} replayed), {self.interactions_ingested} "
            f"interactions ({self.plays_replayed} replayed), "
            f"{self.provisional_dots} provisional dot(s)"
        )


def check_snapshot_version(video_id: str, payload: dict) -> None:
    """Reject snapshots this build cannot parse, before touching their body."""
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValidationError(
            f"session snapshot for {video_id!r} has version {version!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )


def recover_session(service, video_id: str, payload: dict) -> RecoveredSession:
    """Rebuild one checkpointed session of ``service`` and replay its suffix.

    Restores the session around the service's trained model, then replays
    only the rows the store accumulated *after* the snapshot (an O(suffix)
    read — the full history stays on disk).  Under the service's kind-flip
    checkpoint policy the suffix is homogeneous in kind, so the rebuilt
    state is byte-identical to the uninterrupted run's at the same point.
    """
    check_snapshot_version(video_id, payload)
    store = service.store
    session_payload = payload["session"]
    session = service.streaming.restore_session(session_payload)
    chat_suffix = store.get_chat_since(video_id, payload["chat_persisted"])
    play_suffix = store.get_interactions_since(
        video_id, payload["interactions_persisted"]
    )
    # Replay order across kinds is chat-then-plays.  With the kind-flip
    # policy at most one suffix is non-empty, making the choice moot; a
    # mixed suffix (checkpointing was off) still recovers, just without
    # the byte-equivalence guarantee.
    if chat_suffix and play_suffix:
        _LOGGER.info(
            "session %s has a mixed recovery suffix (%d chat, %d plays); "
            "replaying chat first",
            video_id,
            len(chat_suffix),
            len(play_suffix),
        )
    if chat_suffix:
        session.ingest_messages(chat_suffix)
    if play_suffix:
        session.ingest_interactions(play_suffix)
    service._note_recovered(
        video_id,
        payload["chat_persisted"] + len(chat_suffix),
        payload["interactions_persisted"] + len(play_suffix),
    )
    report = RecoveredSession(
        video_id=video_id,
        messages_restored=session_payload["messages_ingested"],
        interactions_restored=session_payload["interactions_ingested"],
        chat_replayed=len(chat_suffix),
        plays_replayed=len(play_suffix),
        provisional_dots=len(session.current_dots()),
    )
    _LOGGER.info("recovered live session %s", report.describe())
    return report


def recover_live_sessions(service) -> list[RecoveredSession]:
    """Rebuild every open session of ``service`` from its stored checkpoints.

    Iterates the stored snapshots in video-id order (so recovery is
    deterministic) and :func:`recover_session`-s each.  Channels that
    already have a live session are left untouched (their in-memory state is
    newer than any snapshot).  Snapshots of sessions that were already
    closed are deleted rather than resurrected.  Returns one
    :class:`RecoveredSession` per rebuilt channel.

    The orchestrator's LRU budget is raised for the duration of the loop so
    an undersized ``max_live_sessions`` cannot finalize the earliest
    recovered sessions mid-recovery; the configured budget is restored
    afterwards and normal eviction (which checkpoints first) resumes at the
    next session open.
    """
    store = service.store
    orchestrator = service.streaming
    snapshots = sorted(store.get_session_snapshots().items())
    recovered: list[RecoveredSession] = []
    configured_budget = orchestrator.max_sessions
    orchestrator.max_sessions = max(
        configured_budget, len(orchestrator.open_video_ids()) + len(snapshots)
    )
    try:
        for video_id, payload in snapshots:
            if orchestrator.has_session(video_id):
                continue
            check_snapshot_version(video_id, payload)
            if payload["session"]["closed"]:
                store.delete_session_snapshot(video_id)
                continue
            recovered.append(recover_session(service, video_id, payload))
    finally:
        orchestrator.max_sessions = configured_budget
    return recovered
